//! The CI gate, tested as a gate: `experiments lint` must exit zero on
//! the shipped conflict tables and engine sources, and non-zero when an
//! unsound table is injected (`--demo-unsound`); `experiments lint
//! --synth` must additionally re-prove every synthesized table sound,
//! certify the hand tables' minimality gaps, and write the JSON gap
//! report.

use std::process::Command;

#[test]
fn lint_passes_on_shipped_tables() {
    let out = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .arg("lint")
        .output()
        .expect("run experiments lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "lint failed:\n{stdout}");
    assert!(stdout.contains("lint: clean"), "{stdout}");
    // The lock-order pass found the sources and derived an order.
    assert!(stdout.contains("derived order:"), "{stdout}");
    // The paper's showcase over-conservatism is reported as a warning.
    assert!(
        stdout.contains("(enq(1), enq(2)) rejected by the table"),
        "{stdout}"
    );
}

#[test]
fn lint_fails_on_a_corrupted_table() {
    let out = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(["lint", "--demo-unsound"])
        .output()
        .expect("run experiments lint --demo-unsound");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !out.status.success(),
        "corrupted table was not rejected:\n{stdout}"
    );
    assert!(stdout.contains("ERROR unsound entry"), "{stdout}");
    // The counterexample certificate names the diverging result pairs.
    assert!(stdout.contains("order p;q yields result pairs"), "{stdout}");
}

#[test]
fn synth_lint_proves_generated_tables_and_reports_gaps() {
    let json = std::env::temp_dir().join("lint_gate_synth_gap.json");
    let out = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(["lint", "--synth", &format!("--json={}", json.display())])
        .output()
        .expect("run experiments lint --synth");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "synth lint failed:\n{stdout}");
    assert!(stdout.contains("lint: clean"), "{stdout}");
    // Every generated table re-proves sound from scratch.
    for adt in ["bank", "queue", "set", "semiqueue", "map", "escrow"] {
        assert!(
            stdout.contains(&format!("synthesized `{adt}` table")),
            "{stdout}"
        );
    }
    // The minimality report certifies the bank hand table and exposes the
    // paper's lost-concurrency showcase on the borrowed semiqueue table.
    let bank_gap = stdout
        .lines()
        .find(|l| l.contains("vs synthesized `bank`"))
        .expect("bank gap line");
    assert!(
        bank_gap.ends_with("minimal") && !bank_gap.contains("NOT minimal"),
        "{bank_gap}"
    );
    assert!(
        stdout.contains("hand table rejects (enq(1), enq(2))"),
        "{stdout}"
    );
    // The gap-report artifact exists and round-trips as JSON.
    let text = std::fs::read_to_string(&json).expect("gap report written");
    assert!(text.contains("\"tables\""), "{text}");
    assert!(text.contains("\"over_conservative\""), "{text}");
    assert!(text.contains("escrow"), "{text}");
    std::fs::remove_file(&json).ok();
}

#[test]
fn synth_lint_fails_on_a_corrupted_generated_table() {
    let json = std::env::temp_dir().join("lint_gate_synth_demo.json");
    let out = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args([
            "lint",
            "--synth",
            "--demo-unsound",
            &format!("--json={}", json.display()),
        ])
        .output()
        .expect("run experiments lint --synth --demo-unsound");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !out.status.success(),
        "corrupted generated table was not rejected:\n{stdout}"
    );
    // The independent verifier catches the corruption in the generated
    // bank table, with a forward-commutativity counterexample.
    assert!(stdout.contains("CORRUPTED: withdraw/withdraw"), "{stdout}");
    assert!(
        stdout.contains("admitted pair does not forward-commute"),
        "{stdout}"
    );
    std::fs::remove_file(&json).ok();
}
