//! The CI gate, tested as a gate: `experiments lint` must exit zero on
//! the shipped conflict tables and engine sources, and non-zero when an
//! unsound table is injected (`--demo-unsound`).

use std::process::Command;

#[test]
fn lint_passes_on_shipped_tables() {
    let out = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .arg("lint")
        .output()
        .expect("run experiments lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "lint failed:\n{stdout}");
    assert!(stdout.contains("lint: clean"), "{stdout}");
    // The lock-order pass found the sources and derived an order.
    assert!(stdout.contains("derived order:"), "{stdout}");
    // The paper's showcase over-conservatism is reported as a warning.
    assert!(
        stdout.contains("(enq(1), enq(2)) rejected by the table"),
        "{stdout}"
    );
}

#[test]
fn lint_fails_on_a_corrupted_table() {
    let out = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(["lint", "--demo-unsound"])
        .output()
        .expect("run experiments lint --demo-unsound");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !out.status.success(),
        "corrupted table was not rejected:\n{stdout}"
    );
    assert!(stdout.contains("ERROR unsound entry"), "{stdout}");
    // The counterexample certificate names the diverging result pairs.
    assert!(stdout.contains("order p;q yields result pairs"), "{stdout}");
}
