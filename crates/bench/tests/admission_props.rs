//! Cross-cutting properties of the unified [`Admission`] API.
//!
//! Two guarantees the redesign leans on:
//!
//! 1. **Batch ≡ sequential** — [`Admission::admit_batch`] (one lock
//!    acquisition draining many requests, the flat-combining entry) must
//!    admit exactly what the same requests admitted one
//!    [`Admission::admit_one`] call at a time, outcome for outcome, on
//!    every engine and baseline, with and without the synthesized table
//!    fast path. Proptested over random scripts of deposits, withdrawals
//!    and balance reads spread across transactions.
//!
//! 2. **Seqlock reads are invisible** — under threaded contention the
//!    hybrid mutex-free read path may only serve committed,
//!    timestamp-consistent snapshots: per-reader balances are monotone
//!    (deposit-only workload), the final history is certified by the
//!    linear certifier, and the committed balance matches the oracle.

use atomicity_bench::Engine;
use atomicity_core::{AdmissionOutcome, AdmissionRequest};
use atomicity_lint::{certify, Property};
use atomicity_spec::specs::BankAccountSpec;
use atomicity_spec::{op, ObjectId, SystemSpec, Value};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;

/// One scripted request: (transaction slot, operation selector, amount).
type Step = (usize, u8, i64);

const TXN_SLOTS: usize = 4;

fn operation_of(selector: u8, amount: i64) -> atomicity_spec::Operation {
    match selector {
        0 => op("deposit", [amount]),
        1 => op("withdraw", [amount]),
        _ => op("balance", [] as [i64; 0]),
    }
}

/// Replays `script` against a fresh engine instance, admitting either
/// through one `admit_batch` call or request-by-request. Transaction
/// slots map to transactions begun in a fixed order, so mirrored runs
/// see identical activity ids and (Lamport) timestamps.
fn run_script(engine: Engine, fast: bool, batched: bool, script: &[Step]) -> Vec<AdmissionOutcome> {
    let handle = engine.builder().fast_path(fast).build();
    let obj = handle.account(ObjectId::new(1), 10);
    let mgr = handle.manager();
    let txns: Vec<_> = (0..TXN_SLOTS).map(|_| mgr.begin()).collect();

    let requests: Vec<AdmissionRequest> = script
        .iter()
        .map(|&(t, sel, n)| AdmissionRequest::from_txn(&txns[t], operation_of(sel, n)))
        .collect();
    let mut seen = BTreeSet::new();
    for &(t, _, _) in script {
        if seen.insert(t) {
            obj.register_txn(&txns[t]);
        }
    }
    if batched {
        obj.admit_batch(&requests)
    } else {
        requests.iter().map(|r| obj.admit_one(r)).collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `admit_batch` admits exactly the same set — same outcomes, same
    /// values, same blockers — as sequential `admit_one`, on every
    /// engine and baseline, with and without the table fast path.
    #[test]
    fn batch_admission_equals_sequential(
        script in prop::collection::vec((0..TXN_SLOTS, 0u8..3, 1i64..16), 1..24)
    ) {
        for engine in [
            Engine::Dynamic,
            Engine::Static,
            Engine::Hybrid,
            Engine::TwoPhaseLocking,
            Engine::CommutativityLocking,
        ] {
            for fast in [false, true] {
                let batch = run_script(engine, fast, true, &script);
                let sequential = run_script(engine, fast, false, &script);
                prop_assert!(
                    batch == sequential,
                    "engine {} (fast={}) diverged: batch {:?} vs sequential {:?}",
                    engine,
                    fast,
                    batch,
                    sequential
                );
            }
        }
    }
}

/// Threaded stress on the hybrid mutex-free read path: concurrent
/// deposit writers against seqlock readers. Readers must never observe a
/// torn or regressing snapshot, the history must certify, and the
/// committed balance must equal the committed deposits.
#[test]
fn seqlock_reads_stay_consistent_under_threaded_stress() {
    const WRITERS: usize = 4;
    const TXNS_PER_WRITER: usize = 40;
    const OPS_PER_TXN: usize = 2;
    const READERS: usize = 3;
    const READS_PER_READER: usize = 150;

    let handle = Engine::Hybrid.builder().fast_path(true).build();
    let obj = handle.account(ObjectId::new(1), 0);
    let mgr = handle.manager().clone();

    let mut threads = Vec::new();
    for _ in 0..WRITERS {
        let mgr = mgr.clone();
        let obj = Arc::clone(&obj);
        threads.push(std::thread::spawn(move || {
            let mut committed = 0u64;
            for _ in 0..TXNS_PER_WRITER {
                let txn = mgr.begin();
                let ok = (0..OPS_PER_TXN).all(|_| obj.invoke(&txn, op("deposit", [1])).is_ok());
                if ok && mgr.commit(txn).is_ok() {
                    committed += 1;
                }
            }
            committed
        }));
    }
    let max_balance = (WRITERS * TXNS_PER_WRITER * OPS_PER_TXN) as i64;
    let mut readers = Vec::new();
    for _ in 0..READERS {
        let mgr = mgr.clone();
        let obj = Arc::clone(&obj);
        readers.push(std::thread::spawn(move || {
            let mut last = 0i64;
            for _ in 0..READS_PER_READER {
                let txn = mgr.begin_read_only();
                let v = obj
                    .read_at(&txn, op("balance", [] as [i64; 0]))
                    .expect("read-only balance");
                mgr.commit(txn).expect("read-only commit");
                let balance = v.as_int().expect("balance is an integer");
                assert!(
                    (last..=max_balance).contains(&balance),
                    "seqlock read regressed or tore: {balance} after {last}"
                );
                last = balance;
            }
        }));
    }
    let committed: u64 = threads
        .into_iter()
        .map(|t| t.join().expect("writer panicked"))
        .sum();
    for r in readers {
        r.join().expect("reader panicked");
    }
    assert_eq!(committed, (WRITERS * TXNS_PER_WRITER) as u64);

    // The mutex-free path actually engaged, and stayed invisible: the
    // history certifies and the balance matches the oracle.
    assert!(obj.metrics().stats().fast_admissions > 0);
    let spec = SystemSpec::new().with_object(ObjectId::new(1), BankAccountSpec::new());
    let cert = certify(Property::Hybrid, &mgr.history(), &spec);
    assert!(cert.is_certified(), "{cert}");
    let probe = mgr.begin();
    let balance = obj
        .invoke(&probe, op("balance", [] as [i64; 0]))
        .expect("final balance");
    mgr.commit(probe).expect("probe commit");
    assert_eq!(balance, Value::from(committed as i64 * OPS_PER_TXN as i64));
}
