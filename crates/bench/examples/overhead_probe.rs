//! E10 overhead probe: best-of-N E8 throughput (dynamic engine, metrics
//! disabled) at fixed parameters. Run alternately against a pre-change
//! baseline build to measure the disabled-path cost of the metrics layer
//! (EXPERIMENTS.md, E10).

fn main() {
    use atomicity_bench::workloads::stress::{run_stress, StressParams};
    use atomicity_bench::Engine;
    let params = StressParams {
        threads: 4,
        txns_per_thread: 200,
        ops_per_txn: 4,
        ..StressParams::default()
    };
    run_stress(Engine::Dynamic, &params); // warmup
    let best = (0..5)
        .map(|_| run_stress(Engine::Dynamic, &params).throughput)
        .fold(0.0f64, f64::max);
    println!("{best:.1}");
}
