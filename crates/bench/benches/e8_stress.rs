//! Criterion bench for E8: recorder contention under threaded stress.
//!
//! Sweeps thread count for every engine, then pits the sharded recorder
//! against the single-mutex (`coarse`) baseline on the record-heaviest
//! configuration — the sharded log's win grows with core count.

use atomicity_bench::engines::Engine;
use atomicity_bench::workloads::stress::{run_stress, StressParams, STRESS_ENGINES};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_stress(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_stress");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for engine in STRESS_ENGINES {
        for threads in [1usize, 2, 4, 8] {
            let params = StressParams {
                threads,
                txns_per_thread: 50,
                ops_per_txn: 4,
                hold_micros: 0,
                coarse_log: false,
                verify: false,
                exhaustive: false,
                collect_metrics: false,
                shared_objects: 0,
            };
            group.bench_with_input(
                BenchmarkId::new(engine.label(), format!("threads-{threads}")),
                &params,
                |b, p| b.iter(|| run_stress(engine, p)),
            );
        }
    }
    group.finish();

    let mut group = c.benchmark_group("e8_recorder");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for coarse in [false, true] {
        let params = StressParams {
            threads: 8,
            txns_per_thread: 50,
            ops_per_txn: 8,
            hold_micros: 0,
            coarse_log: coarse,
            verify: false,
            exhaustive: false,
            collect_metrics: false,
            shared_objects: 0,
        };
        let label = if coarse { "coarse" } else { "sharded" };
        group.bench_with_input(BenchmarkId::new(label, "threads-8"), &params, |b, p| {
            b.iter(|| run_stress(Engine::Dynamic, p))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_stress);
criterion_main!(benches);
