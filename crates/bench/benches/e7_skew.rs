//! Criterion bench for E7 (§4.2.3): skewed-clock update workload per
//! protocol.

use atomicity_bench::engines::Engine;
use atomicity_bench::workloads::skew::{run_skew, SkewParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_skew(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_skew");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for engine in [Engine::Static, Engine::Hybrid] {
        for skew in [0u64, 100] {
            let params = SkewParams {
                workers: 4,
                txns_per_worker: 15,
                skew_ticks: skew,
                keys: 8,
                hold_micros: 50,
            };
            group.bench_with_input(
                BenchmarkId::new(engine.label(), format!("skew-{skew}")),
                &params,
                |b, p| b.iter(|| run_skew(engine, p)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_skew);
criterion_main!(benches);
