//! Criterion bench for E6: simulated crash/recovery cost and the
//! intentions-vs-undo comparison.

use atomicity_bench::workloads::recovery::{run_crash_sweep, run_recovery_cost};
use atomicity_sim::{Cluster, SimConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_recovery");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("cluster_20_transfers", |b| {
        b.iter(|| {
            let mut cluster = Cluster::new(SimConfig::default());
            for i in 0..20i64 {
                let n = cluster.account_count();
                cluster.submit_transfer(i % n, (i * 7 + 3) % n, 5);
            }
            cluster.run_to_quiescence();
            cluster.stats().committed
        })
    });
    group.bench_function("crash_sweep_small", |b| b.iter(|| run_crash_sweep(2, 6, 5)));
    for fraction in [0.95f64, 0.05] {
        group.bench_with_input(
            BenchmarkId::new(
                "recovery_cost",
                format!("{:.0}%-committed", fraction * 100.0),
            ),
            &fraction,
            |b, &f| b.iter(|| run_recovery_cost(100, f)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_recovery);
criterion_main!(benches);
