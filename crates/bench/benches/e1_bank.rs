//! Criterion bench for E1 (§5.1): bank-account throughput per engine.

use atomicity_bench::engines::Engine;
use atomicity_bench::workloads::bank::{run_bank, BankParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_bank(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_bank");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for engine in [
        Engine::Dynamic,
        Engine::Hybrid,
        Engine::Static,
        Engine::CommutativityLocking,
        Engine::TwoPhaseLocking,
    ] {
        for headroom in [2.0f64, 0.5] {
            let params = BankParams {
                threads: 4,
                txns_per_thread: 10,
                amount: 5,
                headroom,
                hold_micros: 100,
            };
            group.bench_with_input(
                BenchmarkId::new(engine.label(), format!("headroom-{headroom}")),
                &params,
                |b, p| b.iter(|| run_bank(engine, p)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_bank);
criterion_main!(benches);
