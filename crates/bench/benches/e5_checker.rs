//! Criterion bench for E5: cost of the formal checkers — the
//! serializability search and the three atomicity predicates — as history
//! size grows.

use atomicity_bench::enumerate::{enumerate_histories, standard_programs, Program};
use atomicity_spec::atomicity::{is_atomic, is_dynamic_atomic};
use atomicity_spec::specs::IntSetSpec;
use atomicity_spec::{op, paper, ObjectId, SystemSpec, Value};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_checkers(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_checker");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    let spec = paper::counter_system();
    for n in [3u32, 5, 7] {
        let h = paper::counter_serial(n);
        group.bench_with_input(BenchmarkId::new("is_atomic_counter", n), &h, |b, h| {
            b.iter(|| is_atomic(h, &spec))
        });
    }
    let qspec = paper::queue_system();
    let qh = paper::queue_interleaved_enqueues();
    group.bench_function("is_dynamic_atomic_queue_example", |b| {
        b.iter(|| is_dynamic_atomic(&qh, &qspec))
    });

    // Exhaustive enumeration of a two-activity scenario.
    let x = ObjectId::new(1);
    let sspec = SystemSpec::new().with_object(x, IntSetSpec::new());
    let programs = vec![
        Program::new(vec![(
            op("member", [3]),
            vec![Value::from(false), Value::from(true)],
        )]),
        Program::new(vec![(op("insert", [3]), vec![Value::ok()])]),
    ];
    group.bench_function("enumerate_two_activities", |b| {
        b.iter(|| enumerate_histories(x, &sspec, &programs))
    });
    let _ = standard_programs(); // three-activity version used by the harness
    group.finish();
}

criterion_group!(benches, bench_checkers);
criterion_main!(benches);
