//! Criterion bench for E2 (§5.1): FIFO-queue producer throughput and the
//! checker/scheduler-model verdicts on the paper's literal history.

use atomicity_bench::engines::Engine;
use atomicity_bench::workloads::queue::{paper_history_verdicts, run_queue, QueueParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_queue");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for engine in [
        Engine::Dynamic,
        Engine::Static,
        Engine::CommutativityLocking,
        Engine::TwoPhaseLocking,
    ] {
        let params = QueueParams {
            producers: 4,
            txns_per_producer: 5,
            batch: 4,
            hold_micros: 100,
        };
        group.bench_with_input(
            BenchmarkId::new("producers", engine.label()),
            &params,
            |b, p| b.iter(|| run_queue(engine, p)),
        );
    }
    group.bench_function("paper_history_verdicts", |b| b.iter(paper_history_verdicts));
    group.finish();
}

criterion_group!(benches, bench_queue);
criterion_main!(benches);
