//! Criterion bench for E3/E4 (§4.2.3, §4.3.3): audits vs updates per
//! property.

use atomicity_bench::engines::Engine;
use atomicity_bench::workloads::audit::{run_audit, AuditParams};
use atomicity_bench::workloads::lamport::{run_lamport, AuditMode, LamportParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_audit(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_audit");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    let params = AuditParams {
        shards: 3,
        keys_per_shard: 2,
        initial_balance: 100,
        updaters: 2,
        txns_per_updater: 8,
        auditors: 1,
        audits_per_auditor: 3,
        hold_micros: 50,
        audit_hold_micros: 300,
    };
    for engine in Engine::PROPERTIES {
        group.bench_with_input(
            BenchmarkId::new("audit_mix", engine.label()),
            &params,
            |b, p| b.iter(|| run_audit(engine, p)),
        );
    }
    let lp = LamportParams {
        shards: 3,
        keys_per_shard: 2,
        initial_balance: 100,
        transferrers: 2,
        txns_per_transferrer: 10,
        transfer_hold_micros: 200,
        audits: 10,
        audit_hold_micros: 200,
    };
    for mode in AuditMode::ALL {
        group.bench_with_input(BenchmarkId::new("lamport", mode.label()), &lp, |b, p| {
            b.iter(|| run_lamport(mode, p))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_audit);
criterion_main!(benches);
