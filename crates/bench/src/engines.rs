//! A uniform factory over the engines and baselines under comparison.
//!
//! The commutativity-locking baseline no longer locks against hand-written
//! tables: every typed constructor here pulls its relation from the
//! [`synthesized_suite`] — the conflict tables machine-derived from the
//! sequential specifications by `atomicity-lint`'s synthesis pass. The
//! hand tables survive only as the *baselines* the gap report (E13) diffs
//! the synthesized relations against.

use atomicity_baselines::{CommutativityLockedObject, TwoPhaseLockedObject};
use atomicity_certify::{OnlineCertifier, OnlineHandle};
use atomicity_core::{
    Admission, CommutesRel, DeadlockPolicy, HistoryLog, MetricsRegistry, Protocol, TxnManager,
};
use atomicity_lint::{standard_syntheses, Property, SynthConfig, SynthSuite};
use atomicity_spec::specs::{
    BankAccountSpec, EscrowCounterSpec, FifoQueueSpec, IntSetSpec, KvMapSpec, SemiqueueSpec,
};
use atomicity_spec::{ObjectId, Operation, SequentialSpec, SystemSpec};
use std::fmt;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// The machine-synthesized conflict tables every typed constructor locks
/// with, computed once per process from the sequential specifications.
pub fn synthesized_suite() -> &'static SynthSuite {
    static SUITE: OnceLock<SynthSuite> = OnceLock::new();
    SUITE.get_or_init(|| standard_syntheses(&SynthConfig::default()))
}

/// The generated table for `adt` as a shareable lock relation.
fn generated(adt: &str) -> Arc<dyn CommutesRel> {
    Arc::new(
        synthesized_suite()
            .table(adt)
            .unwrap_or_else(|| panic!("no synthesized table for `{adt}`"))
            .clone(),
    )
}

/// Which hot-path admission variant a run drives an engine through —
/// recorded in report headers so bench trajectories stay comparable
/// across PRs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPath {
    /// Classic per-operation admission under the object mutex.
    Locked,
    /// Synthesized-table fast path installed
    /// ([`EngineBuilder::fast_path`]): commuting operations skip
    /// permutation replay, hybrid reads skip the mutex.
    FastPath,
    /// Fast path plus flat-combined batch admission
    /// ([`atomicity_core::Combiner`]).
    Batched,
}

impl AdmissionPath {
    /// Stable label used in JSON report headers.
    pub fn label(self) -> &'static str {
        match self {
            AdmissionPath::Locked => "locked",
            AdmissionPath::FastPath => "fast-path",
            AdmissionPath::Batched => "batched",
        }
    }
}

impl fmt::Display for AdmissionPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The single construction point for every engine: one match instead of
/// one per object shape, returning the unified [`Admission`] surface.
/// `table` is the commutativity relation the
/// [`Engine::CommutativityLocking`] baseline locks against — and, with
/// `fast` set, the fast-path relation installed into the dynamic and
/// hybrid engines; the static engine and 2PL ignore it.
fn construct<S: SequentialSpec>(
    engine: Engine,
    id: ObjectId,
    spec: S,
    mgr: &TxnManager,
    table: Arc<dyn CommutesRel>,
    fast: bool,
) -> Arc<dyn Admission> {
    match engine {
        Engine::Dynamic if fast => {
            atomicity_core::DynamicObject::with_relation(id, spec, mgr, table) as _
        }
        Engine::Dynamic => atomicity_core::DynamicObject::new(id, spec, mgr) as _,
        Engine::Static => atomicity_core::StaticObject::new(id, spec, mgr) as _,
        Engine::Hybrid if fast => {
            atomicity_core::HybridObject::with_relation(id, spec, mgr, table) as _
        }
        Engine::Hybrid => atomicity_core::HybridObject::new(id, spec, mgr) as _,
        Engine::TwoPhaseLocking => TwoPhaseLockedObject::new(id, spec, mgr) as _,
        Engine::CommutativityLocking => {
            CommutativityLockedObject::with_relation(id, spec, mgr, table) as _
        }
    }
}

/// Whether (and how) a run attaches the online streaming certifier
/// ([`atomicity_certify::OnlineCertifier`]) to the engine's recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CertifyMode {
    /// No online certification (the default).
    #[default]
    Off,
    /// The watermark-retiring monitor: memory bounded by the
    /// open-transaction footprint; the production configuration.
    /// [`EngineHandle::start_online`] consumes the recorder's shard
    /// buffers as it certifies, keeping the log's memory bounded too.
    Online,
    /// The retain-all monitor: keeps a full event mirror, giving exact
    /// post-hoc equivalence even on malformed streams. The recorder's
    /// log is left intact for post-run snapshots.
    OnlineRetaining,
}

impl CertifyMode {
    /// Stable label used in JSON report headers.
    pub fn label(self) -> &'static str {
        match self {
            CertifyMode::Off => "off",
            CertifyMode::Online => "online",
            CertifyMode::OnlineRetaining => "online-retaining",
        }
    }

    /// Whether an online monitor runs at all.
    pub fn is_on(self) -> bool {
        self != CertifyMode::Off
    }
}

impl fmt::Display for CertifyMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Which concurrency-control implementation a workload runs against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Engine {
    /// The dynamic-atomicity engine (§4.1) — state-dependent admission.
    Dynamic,
    /// The static-atomicity engine (§4.2) — generalized Reed timestamps.
    Static,
    /// The hybrid-atomicity engine (§4.3) — dynamic updates + versioned
    /// read-only snapshots.
    Hybrid,
    /// Baseline: strict two-phase read/write locking.
    TwoPhaseLocking,
    /// Baseline: commutativity-table locking (Schwarz & Spector 82).
    CommutativityLocking,
}

impl Engine {
    /// All engines, in presentation order.
    pub const ALL: [Engine; 5] = [
        Engine::Dynamic,
        Engine::Static,
        Engine::Hybrid,
        Engine::TwoPhaseLocking,
        Engine::CommutativityLocking,
    ];

    /// The engines that implement the paper's three properties.
    pub const PROPERTIES: [Engine; 3] = [Engine::Dynamic, Engine::Static, Engine::Hybrid];

    /// Short label for table rows.
    pub fn label(self) -> &'static str {
        match self {
            Engine::Dynamic => "dynamic",
            Engine::Static => "static",
            Engine::Hybrid => "hybrid",
            Engine::TwoPhaseLocking => "2PL",
            Engine::CommutativityLocking => "commut-lock",
        }
    }

    /// The protocol this engine's manager runs.
    pub fn protocol(self) -> Protocol {
        match self {
            Engine::Static => Protocol::Static,
            Engine::Hybrid => Protocol::Hybrid,
            Engine::Dynamic | Engine::TwoPhaseLocking | Engine::CommutativityLocking => {
                Protocol::Dynamic
            }
        }
    }

    /// A manager running the protocol this engine needs.
    pub fn manager(self) -> TxnManager {
        TxnManager::new(self.protocol())
    }

    /// A manager recording into an explicit [`HistoryLog`] — the E8 hook
    /// for comparing the sharded recorder against the single-mutex
    /// baseline ([`HistoryLog::coarse`]).
    pub fn manager_with_log(self, log: HistoryLog) -> TxnManager {
        TxnManager::with_log(self.protocol(), DeadlockPolicy::default(), log)
    }

    /// Starts an [`EngineBuilder`] for this engine — the one-stop
    /// construction path for workloads and examples.
    pub fn builder(self) -> EngineBuilder {
        EngineBuilder::new(self)
    }

    /// A bank-account object (initial balance) under this engine. The
    /// locking baseline uses the synthesized bank table (provably equal to
    /// the §5.1 hand table — see the E13 gap report).
    pub fn account(self, id: ObjectId, mgr: &TxnManager, initial: i64) -> Arc<dyn Admission> {
        construct(
            self,
            id,
            BankAccountSpec::with_initial(initial),
            mgr,
            generated("bank"),
            false,
        )
    }

    /// A key/value map object (initial entries) under this engine, locking
    /// against the synthesized map table (same-key mutators conflict,
    /// distinct keys and same-key `adjust` pairs commute).
    pub fn map(
        self,
        id: ObjectId,
        mgr: &TxnManager,
        entries: impl IntoIterator<Item = (i64, i64)>,
    ) -> Arc<dyn Admission> {
        construct(
            self,
            id,
            KvMapSpec::with_initial(entries),
            mgr,
            generated("map"),
            false,
        )
    }

    /// A FIFO-queue object under this engine.
    pub fn queue(self, id: ObjectId, mgr: &TxnManager) -> Arc<dyn Admission> {
        construct(
            self,
            id,
            FifoQueueSpec::new(),
            mgr,
            generated("queue"),
            false,
        )
    }

    /// An integer-set object under this engine.
    pub fn set(self, id: ObjectId, mgr: &TxnManager) -> Arc<dyn Admission> {
        construct(self, id, IntSetSpec::new(), mgr, generated("set"), false)
    }

    /// A semiqueue object (§5.2's weak queue) under this engine.
    pub fn semiqueue(self, id: ObjectId, mgr: &TxnManager) -> Arc<dyn Admission> {
        construct(
            self,
            id,
            SemiqueueSpec::new(),
            mgr,
            generated("semiqueue"),
            false,
        )
    }

    /// An escrow counter (initial quantity) under this engine — the fully
    /// machine-derived table: credits and successful debits all commute,
    /// only debit/debit pairs conflict.
    pub fn escrow(self, id: ObjectId, mgr: &TxnManager, initial: i64) -> Arc<dyn Admission> {
        construct(
            self,
            id,
            EscrowCounterSpec::with_initial(initial),
            mgr,
            generated("escrow"),
            false,
        )
    }
}

/// One place to assemble an engine's runtime: protocol, deadlock policy,
/// history log, and metrics sink, replacing the per-workload construction
/// glue (`manager()` / `manager_with_log()` / hand-rolled pairs).
///
/// # Example
///
/// ```
/// use atomicity_bench::{Engine, EngineBuilder};
/// use atomicity_spec::{op, ObjectId};
///
/// let handle = Engine::Dynamic.builder().collect_metrics().build();
/// let acct = handle.account(ObjectId::new(1), 100);
/// let t = handle.manager().begin();
/// acct.invoke(&t, op("withdraw", [40]))?;
/// handle.manager().commit(t)?;
/// assert_eq!(handle.metrics().snapshot().txns_committed, 1);
/// # Ok::<(), atomicity_core::TxnError>(())
/// ```
#[derive(Debug)]
pub struct EngineBuilder {
    engine: Engine,
    policy: DeadlockPolicy,
    log: Option<HistoryLog>,
    metrics: MetricsRegistry,
    fast: bool,
    certify: CertifyMode,
}

impl EngineBuilder {
    /// Starts a builder for `engine` with the default deadlock policy, a
    /// fresh sharded history log, metrics disabled, and the classic
    /// locked admission path.
    pub fn new(engine: Engine) -> Self {
        EngineBuilder {
            engine,
            policy: DeadlockPolicy::default(),
            log: None,
            metrics: MetricsRegistry::disabled(),
            fast: false,
            certify: CertifyMode::Off,
        }
    }

    /// Selects the online-certification mode for handles built from this
    /// builder. `certify(CertifyMode::Online)` attaches the streaming
    /// vector-clock monitor to the engine's recorder when the workload
    /// calls [`EngineHandle::start_online`].
    pub fn certify(mut self, mode: CertifyMode) -> Self {
        self.certify = mode;
        self
    }

    /// Installs the synthesized-table fast path into the dynamic and
    /// hybrid engines built from this handle: commuting update pairs are
    /// admitted without permutation replay, and hybrid read-only
    /// activities admit off the seqlock snapshot without the object
    /// mutex. Other engines are unaffected.
    pub fn fast_path(mut self, fast: bool) -> Self {
        self.fast = fast;
        self
    }

    /// Overrides the deadlock policy.
    pub fn policy(mut self, policy: DeadlockPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Records into an explicit history log (e.g. [`HistoryLog::coarse`]
    /// for the E8 recorder comparison).
    pub fn log(mut self, log: HistoryLog) -> Self {
        self.log = Some(log);
        self
    }

    /// Attaches an explicit metrics registry (shared sinks, custom trace
    /// capacity).
    pub fn metrics(mut self, metrics: MetricsRegistry) -> Self {
        self.metrics = metrics;
        self
    }

    /// Enables metrics with a fresh default-capacity registry.
    pub fn collect_metrics(self) -> Self {
        let metrics = MetricsRegistry::new();
        self.metrics(metrics)
    }

    /// Builds the manager and wraps it in an [`EngineHandle`].
    pub fn build(self) -> EngineHandle {
        let mut b = TxnManager::builder(self.engine.protocol())
            .policy(self.policy)
            .metrics(self.metrics);
        if let Some(log) = self.log {
            b = b.log(log);
        }
        EngineHandle {
            engine: self.engine,
            mgr: b.build(),
            fast: self.fast,
            certify: self.certify,
        }
    }
}

/// A built engine: the manager plus typed object constructors that no
/// longer need the manager threaded through by hand. Every constructor
/// routes through one generic [`Admission`]-dispatch point
/// ([`EngineHandle::make`]) — no per-engine matching outside
/// `construct`.
#[derive(Debug, Clone)]
pub struct EngineHandle {
    engine: Engine,
    mgr: TxnManager,
    fast: bool,
    certify: CertifyMode,
}

impl EngineHandle {
    /// Which engine this handle runs.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Whether the fast admission path is installed (see
    /// [`EngineBuilder::fast_path`]).
    pub fn fast(&self) -> bool {
        self.fast
    }

    /// The online-certification mode selected at build time.
    pub fn certify_mode(&self) -> CertifyMode {
        self.certify
    }

    /// The local atomicity property this engine's histories are
    /// certified under (baselines produce dynamic-atomic histories).
    pub fn property(&self) -> Property {
        match self.engine {
            Engine::Static => Property::Static,
            Engine::Hybrid => Property::Hybrid,
            Engine::Dynamic | Engine::TwoPhaseLocking | Engine::CommutativityLocking => {
                Property::Dynamic
            }
        }
    }

    /// Starts the online streaming certifier over this engine's
    /// recorder, per the mode selected with [`EngineBuilder::certify`]:
    /// `Online` pumps a *retiring* tap (shard buffers are consumed as
    /// they certify — bounded recorder memory, but no post-run
    /// snapshot), `OnlineRetaining` a preserving one. Returns `None` in
    /// [`CertifyMode::Off`].
    ///
    /// `spec` is the sequential specification the monitor certifies
    /// against; `rel` an optional commutativity relation enabling the
    /// streaming table reduction on genuinely partial precedes orders.
    pub fn start_online(
        &self,
        spec: SystemSpec,
        rel: Option<Arc<dyn CommutesRel>>,
    ) -> Option<OnlineHandle> {
        self.spawn_online(spec, rel, self.certify == CertifyMode::Online)
    }

    /// Like [`EngineHandle::start_online`] but always pumps a
    /// *preserving* tap, leaving the recorder's log intact — the e16
    /// equality configuration, where the same run is certified both
    /// online and post-hoc from a final snapshot.
    pub fn start_online_preserving(
        &self,
        spec: SystemSpec,
        rel: Option<Arc<dyn CommutesRel>>,
    ) -> Option<OnlineHandle> {
        self.spawn_online(spec, rel, false)
    }

    fn spawn_online(
        &self,
        spec: SystemSpec,
        rel: Option<Arc<dyn CommutesRel>>,
        destructive_tap: bool,
    ) -> Option<OnlineHandle> {
        let cert = match self.certify {
            CertifyMode::Off => return None,
            CertifyMode::Online => OnlineCertifier::new(self.property(), spec, rel),
            CertifyMode::OnlineRetaining => {
                OnlineCertifier::new_retaining(self.property(), spec, rel)
            }
        };
        let log = self.mgr.log();
        let tap = if destructive_tap {
            log.tap_retiring()
        } else {
            log.tap()
        };
        Some(atomicity_certify::spawn(
            tap,
            cert,
            self.metrics().clone(),
            Duration::from_micros(200),
        ))
    }

    /// The transaction manager (begin/commit/abort live here).
    pub fn manager(&self) -> &TxnManager {
        &self.mgr
    }

    /// The manager's metrics registry (disabled unless the builder
    /// enabled it).
    pub fn metrics(&self) -> &MetricsRegistry {
        self.mgr.metrics()
    }

    /// The single construction path every typed constructor funnels
    /// through: spec + synthesized table in, [`Admission`] object out.
    pub fn make<S: SequentialSpec>(
        &self,
        id: ObjectId,
        spec: S,
        table: Arc<dyn CommutesRel>,
    ) -> Arc<dyn Admission> {
        construct(self.engine, id, spec, &self.mgr, table, self.fast)
    }

    /// A bank-account object with the given initial balance.
    pub fn account(&self, id: ObjectId, initial: i64) -> Arc<dyn Admission> {
        self.make(
            id,
            BankAccountSpec::with_initial(initial),
            generated("bank"),
        )
    }

    /// A key/value map object with the given initial entries.
    pub fn map(
        &self,
        id: ObjectId,
        entries: impl IntoIterator<Item = (i64, i64)>,
    ) -> Arc<dyn Admission> {
        self.make(id, KvMapSpec::with_initial(entries), generated("map"))
    }

    /// A FIFO-queue object.
    pub fn queue(&self, id: ObjectId) -> Arc<dyn Admission> {
        self.make(id, FifoQueueSpec::new(), generated("queue"))
    }

    /// An integer-set object.
    pub fn set(&self, id: ObjectId) -> Arc<dyn Admission> {
        self.make(id, IntSetSpec::new(), generated("set"))
    }

    /// A semiqueue object.
    pub fn semiqueue(&self, id: ObjectId) -> Arc<dyn Admission> {
        self.make(id, SemiqueueSpec::new(), generated("semiqueue"))
    }

    /// An escrow counter with the given initial quantity.
    pub fn escrow(&self, id: ObjectId, initial: i64) -> Arc<dyn Admission> {
        self.make(
            id,
            EscrowCounterSpec::with_initial(initial),
            generated("escrow"),
        )
    }

    /// An object for an arbitrary spec (see [`build_object`] for the
    /// baseline-table caveat).
    pub fn object<S: SequentialSpec>(&self, id: ObjectId, spec: S) -> Arc<dyn Admission> {
        let serial: Arc<dyn CommutesRel> = Arc::new(|_: &Operation, _: &Operation| false);
        self.make(id, spec, serial)
    }
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Builds an atomic object for an arbitrary specification under this
/// engine. For [`Engine::CommutativityLocking`] no type-specific table is
/// known for an arbitrary spec, so the most conservative table (nothing
/// commutes — fully serial locking) is used; prefer the spec-specific
/// constructors ([`Engine::account`] etc.) when a real table exists.
pub fn build_object<S: SequentialSpec>(
    engine: Engine,
    id: ObjectId,
    spec: S,
    mgr: &TxnManager,
) -> Arc<dyn Admission> {
    let serial: Arc<dyn CommutesRel> = Arc::new(|_: &Operation, _: &Operation| false);
    construct(engine, id, spec, mgr, serial, false)
}

/// The hand-written kv-map table: different keys always commute; same-key
/// `adjust`/`adjust` commutes; observers commute with observers.
/// Whole-map scans (`sum`, `size`) conflict with every mutator.
///
/// Kept as the **gap-report baseline** only — the engines lock against
/// the synthesized map table ([`synthesized_suite`]), and E13 diffs this
/// table against it.
pub fn map_commutativity(p: &atomicity_spec::Operation, q: &atomicity_spec::Operation) -> bool {
    let observer = |n: &str| matches!(n, "get" | "sum" | "size");
    let scan = |n: &str| matches!(n, "sum" | "size");
    if observer(p.name()) && observer(q.name()) {
        return true;
    }
    if scan(p.name()) || scan(q.name()) {
        return false;
    }
    match (p.int_arg(0), q.int_arg(0)) {
        (Some(i), Some(j)) if i != j => true,
        _ => matches!((p.name(), q.name()), ("adjust", "adjust")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomicity_spec::{op, Value};

    #[test]
    fn every_engine_runs_a_bank_transaction() {
        for engine in Engine::ALL {
            let mgr = engine.manager();
            let acct = engine.account(ObjectId::new(1), &mgr, 100);
            let t = mgr.begin();
            assert_eq!(
                acct.invoke(&t, op("withdraw", [40])).unwrap(),
                Value::ok(),
                "{engine}"
            );
            mgr.commit(t).unwrap();
        }
    }

    #[test]
    fn every_engine_runs_map_and_queue_and_set() {
        for engine in Engine::ALL {
            let mgr = engine.manager();
            let m = engine.map(ObjectId::new(1), &mgr, [(1, 5)]);
            let q = engine.queue(ObjectId::new(2), &mgr);
            let s = engine.set(ObjectId::new(3), &mgr);
            let t = mgr.begin();
            m.invoke(&t, op("adjust", [1, 5])).unwrap();
            q.invoke(&t, op("enqueue", [7])).unwrap();
            s.invoke(&t, op("insert", [3])).unwrap();
            mgr.commit(t).unwrap();
        }
    }

    #[test]
    fn every_engine_runs_semiqueue_and_escrow() {
        for engine in Engine::ALL {
            let mgr = engine.manager();
            let sq = engine.semiqueue(ObjectId::new(1), &mgr);
            let esc = engine.escrow(ObjectId::new(2), &mgr, 10);
            let t = mgr.begin();
            sq.invoke(&t, op("enq", [7])).unwrap();
            esc.invoke(&t, op("credit", [5])).unwrap();
            esc.invoke(&t, op("debit", [3])).unwrap();
            mgr.commit(t).unwrap();
        }
    }

    #[test]
    fn synthesized_tables_drive_the_locking_baseline() {
        // Concurrent deposits share the lock under the generated bank
        // table, exactly as under the old §5.1 hand table...
        let mgr = Engine::CommutativityLocking.manager();
        let acct = Engine::CommutativityLocking.account(ObjectId::new(1), &mgr, 100);
        let a = mgr.begin();
        let b = mgr.begin();
        acct.invoke(&a, op("deposit", [3])).unwrap();
        acct.invoke(&b, op("deposit", [5])).unwrap();
        mgr.commit(a).unwrap();
        mgr.commit(b).unwrap();
        // ...and the escrow table admits concurrent credit and debit — the
        // concurrency no hand table in this workspace ever granted.
        let esc = Engine::CommutativityLocking.escrow(ObjectId::new(2), &mgr, 10);
        let c = mgr.begin();
        let d = mgr.begin();
        esc.invoke(&c, op("credit", [5])).unwrap();
        esc.invoke(&d, op("debit", [3])).unwrap();
        mgr.commit(c).unwrap();
        mgr.commit(d).unwrap();
    }

    #[test]
    fn map_table_shape() {
        assert!(map_commutativity(
            &op("adjust", [1, 5]),
            &op("adjust", [1, 9])
        ));
        assert!(map_commutativity(&op("put", [1, 5]), &op("put", [2, 9])));
        assert!(!map_commutativity(&op("put", [1, 5]), &op("put", [1, 9])));
        assert!(!map_commutativity(
            &op("adjust", [1, 5]),
            &op("sum", [] as [i64; 0])
        ));
        assert!(map_commutativity(
            &op("get", [1]),
            &op("sum", [] as [i64; 0])
        ));
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::BTreeSet<_> = Engine::ALL.iter().map(|e| e.label()).collect();
        assert_eq!(labels.len(), Engine::ALL.len());
    }
}
