//! A uniform factory over the engines and baselines under comparison.

use atomicity_baselines::{
    bank_commutativity, queue_commutativity, set_commutativity, CommutativityLockedObject,
    TwoPhaseLockedObject,
};
use atomicity_core::{AtomicObject, DeadlockPolicy, HistoryLog, Protocol, TxnManager};
use atomicity_spec::specs::{BankAccountSpec, FifoQueueSpec, IntSetSpec, KvMapSpec};
use atomicity_spec::ObjectId;
use std::fmt;
use std::sync::Arc;

/// Which concurrency-control implementation a workload runs against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Engine {
    /// The dynamic-atomicity engine (§4.1) — state-dependent admission.
    Dynamic,
    /// The static-atomicity engine (§4.2) — generalized Reed timestamps.
    Static,
    /// The hybrid-atomicity engine (§4.3) — dynamic updates + versioned
    /// read-only snapshots.
    Hybrid,
    /// Baseline: strict two-phase read/write locking.
    TwoPhaseLocking,
    /// Baseline: commutativity-table locking (Schwarz & Spector 82).
    CommutativityLocking,
}

impl Engine {
    /// All engines, in presentation order.
    pub const ALL: [Engine; 5] = [
        Engine::Dynamic,
        Engine::Static,
        Engine::Hybrid,
        Engine::TwoPhaseLocking,
        Engine::CommutativityLocking,
    ];

    /// The engines that implement the paper's three properties.
    pub const PROPERTIES: [Engine; 3] = [Engine::Dynamic, Engine::Static, Engine::Hybrid];

    /// Short label for table rows.
    pub fn label(self) -> &'static str {
        match self {
            Engine::Dynamic => "dynamic",
            Engine::Static => "static",
            Engine::Hybrid => "hybrid",
            Engine::TwoPhaseLocking => "2PL",
            Engine::CommutativityLocking => "commut-lock",
        }
    }

    /// The protocol this engine's manager runs.
    pub fn protocol(self) -> Protocol {
        match self {
            Engine::Static => Protocol::Static,
            Engine::Hybrid => Protocol::Hybrid,
            Engine::Dynamic | Engine::TwoPhaseLocking | Engine::CommutativityLocking => {
                Protocol::Dynamic
            }
        }
    }

    /// A manager running the protocol this engine needs.
    pub fn manager(self) -> TxnManager {
        TxnManager::new(self.protocol())
    }

    /// A manager recording into an explicit [`HistoryLog`] — the E8 hook
    /// for comparing the sharded recorder against the single-mutex
    /// baseline ([`HistoryLog::coarse`]).
    pub fn manager_with_log(self, log: HistoryLog) -> TxnManager {
        TxnManager::with_log(self.protocol(), DeadlockPolicy::default(), log)
    }

    /// A bank-account object (initial balance) under this engine.
    pub fn account(self, id: ObjectId, mgr: &TxnManager, initial: i64) -> Arc<dyn AtomicObject> {
        let spec = BankAccountSpec::with_initial(initial);
        match self {
            Engine::Dynamic => atomicity_core::DynamicObject::new(id, spec, mgr) as _,
            Engine::Static => atomicity_core::StaticObject::new(id, spec, mgr) as _,
            Engine::Hybrid => atomicity_core::HybridObject::new(id, spec, mgr) as _,
            Engine::TwoPhaseLocking => TwoPhaseLockedObject::new(id, spec, mgr) as _,
            Engine::CommutativityLocking => {
                CommutativityLockedObject::new(id, spec, mgr, bank_commutativity) as _
            }
        }
    }

    /// A key/value map object (initial entries) under this engine.
    pub fn map(
        self,
        id: ObjectId,
        mgr: &TxnManager,
        entries: impl IntoIterator<Item = (i64, i64)>,
    ) -> Arc<dyn AtomicObject> {
        let spec = KvMapSpec::with_initial(entries);
        match self {
            Engine::Dynamic => atomicity_core::DynamicObject::new(id, spec, mgr) as _,
            Engine::Static => atomicity_core::StaticObject::new(id, spec, mgr) as _,
            Engine::Hybrid => atomicity_core::HybridObject::new(id, spec, mgr) as _,
            Engine::TwoPhaseLocking => TwoPhaseLockedObject::new(id, spec, mgr) as _,
            Engine::CommutativityLocking => {
                // The natural static table for maps: same-key operations
                // conflict, different keys commute — reuse the set table's
                // shape via a map-specific function below.
                CommutativityLockedObject::new(id, spec, mgr, map_commutativity) as _
            }
        }
    }

    /// A FIFO-queue object under this engine.
    pub fn queue(self, id: ObjectId, mgr: &TxnManager) -> Arc<dyn AtomicObject> {
        let spec = FifoQueueSpec::new();
        match self {
            Engine::Dynamic => atomicity_core::DynamicObject::new(id, spec, mgr) as _,
            Engine::Static => atomicity_core::StaticObject::new(id, spec, mgr) as _,
            Engine::Hybrid => atomicity_core::HybridObject::new(id, spec, mgr) as _,
            Engine::TwoPhaseLocking => TwoPhaseLockedObject::new(id, spec, mgr) as _,
            Engine::CommutativityLocking => {
                CommutativityLockedObject::new(id, spec, mgr, queue_commutativity) as _
            }
        }
    }

    /// An integer-set object under this engine.
    pub fn set(self, id: ObjectId, mgr: &TxnManager) -> Arc<dyn AtomicObject> {
        let spec = IntSetSpec::new();
        match self {
            Engine::Dynamic => atomicity_core::DynamicObject::new(id, spec, mgr) as _,
            Engine::Static => atomicity_core::StaticObject::new(id, spec, mgr) as _,
            Engine::Hybrid => atomicity_core::HybridObject::new(id, spec, mgr) as _,
            Engine::TwoPhaseLocking => TwoPhaseLockedObject::new(id, spec, mgr) as _,
            Engine::CommutativityLocking => {
                CommutativityLockedObject::new(id, spec, mgr, set_commutativity) as _
            }
        }
    }
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Builds an atomic object for an arbitrary specification under this
/// engine. For [`Engine::CommutativityLocking`] no type-specific table is
/// known for an arbitrary spec, so the most conservative table (nothing
/// commutes — fully serial locking) is used; prefer the spec-specific
/// constructors ([`Engine::account`] etc.) when a real table exists.
pub fn build_object<S: atomicity_spec::SequentialSpec>(
    engine: Engine,
    id: ObjectId,
    spec: S,
    mgr: &TxnManager,
) -> Arc<dyn AtomicObject> {
    match engine {
        Engine::Dynamic => atomicity_core::DynamicObject::new(id, spec, mgr) as _,
        Engine::Static => atomicity_core::StaticObject::new(id, spec, mgr) as _,
        Engine::Hybrid => atomicity_core::HybridObject::new(id, spec, mgr) as _,
        Engine::TwoPhaseLocking => TwoPhaseLockedObject::new(id, spec, mgr) as _,
        Engine::CommutativityLocking => {
            CommutativityLockedObject::new(id, spec, mgr, |_, _| false) as _
        }
    }
}

/// Static commutativity for the kv-map: different keys always commute;
/// same-key `adjust`/`adjust` commutes; observers commute with observers.
/// Whole-map scans (`sum`, `size`) conflict with every mutator.
pub fn map_commutativity(p: &atomicity_spec::Operation, q: &atomicity_spec::Operation) -> bool {
    let observer = |n: &str| matches!(n, "get" | "sum" | "size");
    let scan = |n: &str| matches!(n, "sum" | "size");
    if observer(p.name()) && observer(q.name()) {
        return true;
    }
    if scan(p.name()) || scan(q.name()) {
        return false;
    }
    match (p.int_arg(0), q.int_arg(0)) {
        (Some(i), Some(j)) if i != j => true,
        _ => matches!((p.name(), q.name()), ("adjust", "adjust")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomicity_spec::{op, Value};

    #[test]
    fn every_engine_runs_a_bank_transaction() {
        for engine in Engine::ALL {
            let mgr = engine.manager();
            let acct = engine.account(ObjectId::new(1), &mgr, 100);
            let t = mgr.begin();
            assert_eq!(
                acct.invoke(&t, op("withdraw", [40])).unwrap(),
                Value::ok(),
                "{engine}"
            );
            mgr.commit(t).unwrap();
        }
    }

    #[test]
    fn every_engine_runs_map_and_queue_and_set() {
        for engine in Engine::ALL {
            let mgr = engine.manager();
            let m = engine.map(ObjectId::new(1), &mgr, [(1, 5)]);
            let q = engine.queue(ObjectId::new(2), &mgr);
            let s = engine.set(ObjectId::new(3), &mgr);
            let t = mgr.begin();
            m.invoke(&t, op("adjust", [1, 5])).unwrap();
            q.invoke(&t, op("enqueue", [7])).unwrap();
            s.invoke(&t, op("insert", [3])).unwrap();
            mgr.commit(t).unwrap();
        }
    }

    #[test]
    fn map_table_shape() {
        assert!(map_commutativity(
            &op("adjust", [1, 5]),
            &op("adjust", [1, 9])
        ));
        assert!(map_commutativity(&op("put", [1, 5]), &op("put", [2, 9])));
        assert!(!map_commutativity(&op("put", [1, 5]), &op("put", [1, 9])));
        assert!(!map_commutativity(
            &op("adjust", [1, 5]),
            &op("sum", [] as [i64; 0])
        ));
        assert!(map_commutativity(
            &op("get", [1]),
            &op("sum", [] as [i64; 0])
        ));
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::BTreeSet<_> = Engine::ALL.iter().map(|e| e.label()).collect();
        assert_eq!(labels.len(), Engine::ALL.len());
    }
}
