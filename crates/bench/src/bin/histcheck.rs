//! `histcheck` — judge a JSON history file with the formal checkers.
//!
//! ```text
//! histcheck <history.json>               # print verdicts for the file
//! histcheck --timeline <history.json>    # also render a timeline
//! histcheck --dot <history.json>         # emit Graphviz of precedes(h)
//! histcheck --example                    # print a ready-made example file
//! ```
//!
//! Verdicts: well-formedness under each event-model discipline, atomicity,
//! and (where the events carry the needed timestamps) dynamic / static /
//! hybrid atomicity.

use atomicity_bench::histfile::{canonical_examples, example_file, HistoryFile};
use atomicity_spec::atomicity::{
    is_atomic, is_dynamic_atomic, is_hybrid_atomic, is_static_atomic, timestamp_order,
};
use atomicity_spec::well_formed::WellFormedness;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags: Vec<&str> = args
        .iter()
        .filter(|a| a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let path = args.iter().find(|a| !a.starts_with("--"));
    if flags.contains(&"--example") {
        println!("{}", example_file().to_json());
        return ExitCode::SUCCESS;
    }
    if flags.contains(&"--write-examples") {
        let dir = path.map(String::as_str).unwrap_or("examples/histories");
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("histcheck: {dir}: {e}");
            return ExitCode::FAILURE;
        }
        for (name, file) in canonical_examples() {
            let target = format!("{dir}/{name}");
            if let Err(e) = std::fs::write(&target, file.to_json()) {
                eprintln!("histcheck: {target}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {target}");
        }
        return ExitCode::SUCCESS;
    }
    match path {
        Some(path) => match check(
            path,
            flags.contains(&"--timeline"),
            flags.contains(&"--dot"),
        ) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("histcheck: {e}");
                ExitCode::FAILURE
            }
        },
        None => {
            eprintln!("usage: histcheck [--timeline] [--dot] <history.json> | histcheck --example");
            ExitCode::FAILURE
        }
    }
}

fn check(path: &str, timeline: bool, dot: bool) -> Result<(), String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let file = HistoryFile::from_json(&json).map_err(|e| format!("{path}: {e}"))?;
    let h = file.history();
    let system = file.system()?;

    println!(
        "history: {} events, {} activities, {} objects",
        h.len(),
        h.activities().len(),
        h.objects().len()
    );
    if timeline {
        println!();
        print!("{}", atomicity_spec::viz::timeline(&h));
    } else {
        for e in h.iter() {
            println!("  {e}");
        }
    }
    if dot {
        println!();
        print!("{}", atomicity_spec::viz::precedes_dot(&h));
    }
    println!();

    let verdict = |name: &str, v: bool| println!("{name:<28} {}", if v { "yes" } else { "no" });

    verdict(
        "well-formed (basic)",
        WellFormedness::Basic.is_well_formed(&h),
    );
    let static_wf = WellFormedness::Static.is_well_formed(&h);
    verdict("well-formed (static model)", static_wf);
    let hybrid_wf = WellFormedness::Hybrid.is_well_formed(&h);
    verdict("well-formed (hybrid model)", hybrid_wf);
    println!();

    verdict("atomic", is_atomic(&h, &system));
    verdict("dynamic atomic", is_dynamic_atomic(&h, &system));
    let has_timestamps = timestamp_order(&h).is_some();
    if static_wf && has_timestamps {
        verdict("static atomic", is_static_atomic(&h, &system));
    } else {
        println!(
            "{:<28} n/a (no complete initiation timestamps)",
            "static atomic"
        );
    }
    if hybrid_wf && has_timestamps {
        verdict("hybrid atomic", is_hybrid_atomic(&h, &system));
    } else {
        println!(
            "{:<28} n/a (no complete commit/initiation timestamps)",
            "hybrid atomic"
        );
    }
    Ok(())
}
