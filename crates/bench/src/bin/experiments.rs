//! The experiment harness: regenerates every comparison in the paper.
//!
//! ```text
//! experiments [--quick] [e1 e2 e3 e4 e5 e6 e7 e8 e9 e10 e11 e12 e13 e14 e15 e16 | all]
//! experiments e6 [--disk]
//! experiments e10 [--smoke] [--json=PATH]
//! experiments e11 [--smoke] [--json=PATH]
//! experiments e12 [--smoke] [--seeds=N] [--json=PATH] [--demo-lost-ack] [--replay=SEED]
//! experiments e14 [--smoke] [--json=PATH] [--baseline=PATH]
//! experiments e15 [--smoke] [--json=PATH] [--replay=SEED]
//! experiments e16 [--smoke] [--json=PATH] [--demo-violation]
//! experiments lint [--synth] [--json=PATH] [--demo-unsound]
//! ```
//!
//! Each experiment prints one or more tables; `EXPERIMENTS.md` records the
//! paper's qualitative claim next to a captured run of this binary.
//!
//! `lint` is the CI gate: it audits every hand-written conflict table
//! against the relation derived from its sequential specification, scans
//! the engine sources for lock-ordering cycles, and scans the workspace
//! for nondeterminism escape hatches (wall clocks in the deterministic
//! simulator, unseeded RNG anywhere), exiting non-zero on any unsound
//! table entry, asymmetric entry, lock cycle, or nondeterminism finding.
//! `--synth` additionally runs the conflict-table **synthesis** pass:
//! every generated table is re-proved sound from scratch, every hand table
//! is diffed against the synthesized relation, and the full gap report is
//! written as JSON (default `BENCH_synth_gap.json`, override with
//! `--json=PATH`). `--demo-unsound` corrupts a bank table (the hand one,
//! or the generated one under `--synth`) to demonstrate (and test) the
//! failure path.
//!
//! `e6 --disk` replays the crash sweep with every node's stable log
//! backed by the real on-disk WAL (`atomicity-durable`, sync-each policy)
//! instead of the in-memory simulated one.
//!
//! `e10` and `e11` additionally write their reports as JSON (defaults
//! `BENCH_e10.json` / `BENCH_e11.json`, override with `--json=PATH`);
//! `--smoke` shrinks the workloads to CI wiring checks. `e10` exits
//! non-zero if any engine reports zero admissions — a mute metrics
//! pipeline — and a full (non-smoke) `e11` exits non-zero if group commit
//! fails to beat sync-each by at least 2× at the highest thread count.
//!
//! `e14` is the contended hot-path admission sweep: every admission-path
//! variant (locked, fast-path, batched) of the unified `Admission` API is
//! measured on ONE shared account across thread counts, with hybrid
//! read-only auditors driving the seqlock read path and every run
//! re-certified by the linear certifier. It writes `BENCH_e14.json` and
//! gates against the committed E10 trajectory (`--baseline=PATH`,
//! default `BENCH_e10.json`): any run fails if the contended
//! highest-thread throughput of a fast-path engine drops below the
//! recorded E10 baseline for that engine, and a full run additionally
//! requires a ≥4x speedup over the baseline for at least one engine.
//!
//! `e12` is the deterministic-simulation seed sweep: every seed runs the
//! cluster under the full fault matrix with checkpointed invariant
//! checkers, shrinking any violation to a minimal reproducer. It writes
//! `BENCH_e12.json` and exits non-zero on any violation.
//! `--demo-lost-ack` injects a known atomicity bug and instead exits
//! non-zero unless the sweep catches *and shrinks* it; `--replay=SEED`
//! runs one seed twice and exits non-zero unless the replay is
//! bit-identical (trace hash and state digest).
//!
//! `e15` drives the partitioned transaction service (`atomicity-dist`):
//! an open-loop bank workload is swept over shard counts in simulated
//! time, and per-shard intentions logs of growing sizes are recovered
//! both by serial value replay and by dependency-graph parallel replay
//! (footprints pruned with the synthesized commutativity relation, final
//! states certified equal). It writes `BENCH_e15.json`; a full run exits
//! non-zero unless the top shard count commits at least 2x the
//! single-shard rate and parallel dependency recovery beats serial
//! replay on the largest dependency-logged log. `--replay=SEED` instead
//! runs one scaling point twice and exits non-zero unless the runs are
//! bit-identical.
//!
//! `e16` is the online streaming certifier (`atomicity-certify`): every
//! property engine runs a contended bank workload with an online monitor
//! consuming the live stamp stream, and the final online certificate
//! must agree with the post-hoc linear certifier over the same run's
//! snapshot; a long-horizon dynamic run (≥10x the E10 history) gates the
//! monitor's retained-set high-water mark against the open-transaction
//! footprint; and an A/B/C timing sweep gates the certifier's throughput
//! cost against twice the metrics budget (full runs only). It writes
//! `BENCH_e16.json`. `--demo-violation` forges a non-atomic pair into
//! the live log mid-run and exits non-zero unless the monitor flags it
//! at the offending commit.

use atomicity_bench::engines::map_commutativity;
use atomicity_bench::engines::Engine;
use atomicity_bench::enumerate::{enumerate_histories, standard_programs};
use atomicity_bench::explore::{engine_factory, explore, property_verifier, Script};
use atomicity_bench::table::{f1, pct, Table};
use atomicity_bench::workloads::audit::{run_audit, AuditParams};
use atomicity_bench::workloads::bank::run_bank_ablation;
use atomicity_bench::workloads::bank::{run_bank, BankParams};
use atomicity_bench::workloads::lamport::{run_lamport, AuditMode, LamportParams};
use atomicity_bench::workloads::queue::{paper_history_verdicts, run_queue, QueueParams};
use atomicity_bench::workloads::recovery::{
    run_crash_sweep, run_crash_sweep_with, run_distributed_audits, run_lossy, run_recovery_cost,
};
use atomicity_bench::workloads::skew::{run_skew, SkewParams};
use atomicity_lint::lockorder::read_sources;
use atomicity_lint::{
    audit_lock_order, audit_table, certify, standard_audits, AuditConfig, LockOrderReport,
    PairClass, Property, TableAudit,
};
use atomicity_spec::atomicity::{is_atomic, is_dynamic_atomic, is_hybrid_atomic, is_static_atomic};
use atomicity_spec::well_formed::WellFormedness;
use atomicity_spec::{op, paper, ObjectId, SystemSpec};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let smoke = args.iter().any(|a| a == "--smoke");
    let disk = args.iter().any(|a| a == "--disk");
    let json_path = args
        .iter()
        .find_map(|a| a.strip_prefix("--json="))
        .map(str::to_string);
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    if wanted.contains(&"lint") {
        std::process::exit(run_lint(
            args.iter().any(|a| a == "--demo-unsound"),
            args.iter().any(|a| a == "--synth"),
            json_path.as_deref(),
        ));
    }
    let run_all = wanted.is_empty() || wanted.contains(&"all");
    let want = |name: &str| run_all || wanted.contains(&name);

    if want("e1") {
        e1_bank(quick);
    }
    if want("e2") {
        e2_queue(quick);
    }
    if want("e3") {
        e3_audit(quick);
    }
    if want("e4") {
        e4_lamport(quick);
    }
    if want("e5") {
        e5_enumeration();
    }
    if want("e6") {
        e6_recovery(quick, disk);
    }
    if want("e7") {
        e7_skew(quick);
    }
    if want("e8") {
        e8_stress(quick);
    }
    if want("e9") {
        e9_static_analysis(quick);
    }
    if want("e10") {
        e10_observability(
            quick,
            smoke,
            json_path.as_deref().unwrap_or("BENCH_e10.json"),
        );
    }
    if want("e11") {
        e11_wal(
            quick,
            smoke,
            json_path.as_deref().unwrap_or("BENCH_e11.json"),
        );
    }
    if want("e12") {
        let seeds = args
            .iter()
            .find_map(|a| a.strip_prefix("--seeds="))
            .and_then(|s| s.parse::<u64>().ok());
        let replay = args
            .iter()
            .find_map(|a| a.strip_prefix("--replay="))
            .and_then(|s| s.parse::<u64>().ok());
        e12_simulation(
            smoke,
            seeds,
            args.iter().any(|a| a == "--demo-lost-ack"),
            replay,
            json_path.as_deref().unwrap_or("BENCH_e12.json"),
        );
    }
    if want("e13") {
        e13_synthesis();
    }
    if want("e14") {
        let baseline = args
            .iter()
            .find_map(|a| a.strip_prefix("--baseline="))
            .unwrap_or("BENCH_e10.json");
        e14_contention(
            quick,
            smoke,
            json_path.as_deref().unwrap_or("BENCH_e14.json"),
            baseline,
        );
    }
    if want("e15") {
        let replay = args
            .iter()
            .find_map(|a| a.strip_prefix("--replay="))
            .and_then(|s| s.parse::<u64>().ok());
        // --quick runs the smoke shape: the full sweep's wall-clock
        // recovery gates belong to dedicated full runs, not the
        // all-experiments quick lane.
        e15_scaleout(
            smoke || quick,
            replay,
            json_path.as_deref().unwrap_or("BENCH_e15.json"),
        );
    }
    if want("a1") {
        a1_ablation(quick);
    }
    if want("v1") {
        v1_model_check();
    }
    if want("e16") {
        // --quick runs the smoke shape: sub-percent timing gates belong
        // to dedicated full runs, not the all-experiments quick lane.
        e16_online(
            smoke || quick,
            args.iter().any(|a| a == "--demo-violation"),
            json_path.as_deref().unwrap_or("BENCH_e16.json"),
        );
    }
}

/// E16: the online streaming certifier — verdict equality against the
/// post-hoc certifier per property engine, the long-horizon retained-set
/// memory gate, the throughput-overhead gate, and (with
/// `--demo-violation`) the forged mid-stream violation demonstration.
fn e16_online(smoke: bool, demo: bool, json_path: &str) {
    use atomicity_bench::workloads::e16::{run_e16, E16Params};

    println!("== E16: online streaming atomicity certifier\n");
    let mut params = if smoke {
        E16Params::smoke()
    } else {
        E16Params::full()
    };
    if demo {
        params.demo_violation = true;
    }

    let report = run_e16(&params);

    let mut table = Table::new(vec![
        "seed",
        "engine",
        "mode",
        "committed",
        "online",
        "post-hoc",
        "peak",
    ])
    .with_title(format!(
        "equality: online vs post-hoc verdicts, {} threads x {} txns on {} accounts",
        params.threads, params.equality_txns, params.accounts
    ));
    for row in &report.equality {
        table.row(vec![
            row.seed.to_string(),
            row.engine.clone(),
            row.mode.clone(),
            row.committed.to_string(),
            row.online_verdict.clone(),
            row.post_hoc_verdict.clone(),
            row.peak_retained.to_string(),
        ]);
    }
    println!("{table}");

    let h = &report.horizon;
    let mut table = Table::new(vec![
        "committed",
        "observed",
        "peak retained",
        "bound",
        "verdict",
        "gauge peak",
    ])
    .with_title(format!(
        "long horizon: retiring monitor over {} threads x {} txns (destructive tap)",
        params.threads, params.horizon_txns
    ));
    table.row(vec![
        h.committed.to_string(),
        h.observed.to_string(),
        h.peak_retained.to_string(),
        h.retained_bound.to_string(),
        h.verdict.clone(),
        h.metrics_retained_peak.to_string(),
    ]);
    println!("{table}");

    let o = &report.overhead;
    let mut table = Table::new(vec![
        "bare tx/s",
        "metrics tx/s",
        "online tx/s",
        "metrics cost",
        "online cost",
        "budget",
        "gated",
    ])
    .with_title(format!(
        "overhead: median of {} trials x {} txns/thread",
        params.overhead_trials, params.overhead_txns
    ));
    table.row(vec![
        f1(o.bare_tps),
        f1(o.metrics_tps),
        f1(o.online_tps),
        format!("{:.2}%", o.metrics_overhead * 100.0),
        format!("{:.2}%", o.online_overhead * 100.0),
        format!("{:.2}%", o.budget * 100.0),
        o.gated.to_string(),
    ]);
    println!("{table}");
    if !o.headroom {
        println!(
            "note: no spare core for the certifier pump (available_parallelism <= {} \
             worker threads); overhead reported ungated\n",
            params.threads
        );
    }

    if let Some(d) = &report.demo {
        println!(
            "demo: forged non-atomic pair flagged at stamp {} of {} observed events ({})\n",
            d.flagged_at_stamp, d.observed, d.verdict
        );
    }

    std::fs::write(json_path, report.to_json())
        .unwrap_or_else(|e| panic!("cannot write {json_path}: {e}"));
    println!("report written to {json_path}\n");
}

/// E15: the partitioned service — shard-count scaling of the open-loop
/// workload, and dependency-logged parallel recovery vs serial value-log
/// replay. Full runs gate on both claims; `--replay=SEED` instead checks
/// that one seed replays bit-identically.
fn e15_scaleout(smoke: bool, replay: Option<u64>, json_path: &str) {
    use atomicity_bench::workloads::e15::{run_e15, run_scaling_point, E15Params};

    println!("== E15: partitioned scale-out & dependency-logged parallel recovery\n");
    let mut params = if smoke {
        E15Params::smoke()
    } else {
        E15Params::full()
    };

    if let Some(seed) = replay {
        // Replay gate: the same seed, twice, at the largest shard count,
        // must be bit-identical.
        params.seed = seed;
        let shards = params.shard_counts.iter().copied().max().unwrap_or(1);
        let a = run_scaling_point(&params, shards);
        let b = run_scaling_point(&params, shards);
        println!(
            "replay seed {seed} at {shards} shards: trace {:#018x} / {:#018x}, state {:#018x} / {:#018x}",
            a.trace_hash, b.trace_hash, a.state_digest, b.state_digest
        );
        if (a.trace_hash, a.state_digest) != (b.trace_hash, b.state_digest) {
            eprintln!("E15 FAILED: seed {seed} did not replay identically");
            std::process::exit(1);
        }
        println!("replay is bit-identical\n");
        return;
    }

    let report = run_e15(&params);

    let mut table = Table::new(vec![
        "shards",
        "submitted",
        "committed",
        "aborted",
        "decided by (ms)",
        "commits/sec",
    ])
    .with_title(format!(
        "open-loop bank transfers over {} accounts: {} clients x {} txns/tick x {} ticks",
        params.accounts, params.clients, params.requests_per_tick, params.ticks
    ));
    for row in &report.scaling {
        table.row(vec![
            row.shards.to_string(),
            row.submitted.to_string(),
            row.committed.to_string(),
            row.aborted.to_string(),
            format!("{:.1}", row.decided_by_us as f64 / 1000.0),
            f1(row.commits_per_sec),
        ]);
    }
    println!("{table}");

    let mut table = Table::new(vec![
        "commits",
        "log",
        "bytes",
        "serial (ms)",
        "parallel (ms)",
        "speedup",
        "edges",
        "pruned",
    ])
    .with_title(format!(
        "recovery: serial value replay vs {}-thread dependency-graph replay (states certified equal)",
        params.threads
    ));
    for row in &report.recovery {
        table.row(vec![
            row.commits.to_string(),
            if row.dep_logged { "dep" } else { "value" }.into(),
            row.log_bytes.to_string(),
            format!("{:.2}", row.serial_ns as f64 / 1e6),
            format!("{:.2}", row.parallel_ns as f64 / 1e6),
            format!("{:.1}x", row.speedup),
            row.edges.to_string(),
            row.pruned_commuting.to_string(),
        ]);
    }
    println!("{table}");

    std::fs::write(json_path, report.to_json())
        .unwrap_or_else(|e| panic!("cannot write {json_path}: {e}"));
    println!("report written to {json_path}\n");

    if smoke {
        return;
    }

    // Gate 1: the distinct-key workload must actually scale — the top
    // shard count beats one shard by at least 2x commits/sec.
    let single = report
        .scaling
        .iter()
        .min_by_key(|r| r.shards)
        .expect("scaling rows");
    let top = report
        .scaling
        .iter()
        .max_by_key(|r| r.shards)
        .expect("scaling rows");
    if top.commits_per_sec < 2.0 * single.commits_per_sec {
        eprintln!(
            "E15 FAILED: {} shards reached {:.0} commits/sec, less than 2x the single-shard {:.0}",
            top.shards, top.commits_per_sec, single.commits_per_sec
        );
        std::process::exit(1);
    }
    // Gate 2: at the largest log, dependency-logged parallel recovery
    // must beat the serial value replay it is certified against.
    let largest = report
        .recovery
        .iter()
        .filter(|r| r.dep_logged)
        .max_by_key(|r| r.commits)
        .expect("recovery rows");
    if largest.parallel_ns >= largest.serial_ns {
        eprintln!(
            "E15 FAILED: parallel dependency recovery ({:.2} ms) did not beat serial value replay ({:.2} ms) at {} commits",
            largest.parallel_ns as f64 / 1e6,
            largest.serial_ns as f64 / 1e6,
            largest.commits
        );
        std::process::exit(1);
    }
    println!(
        "gates: {}x scale-out at {} shards; {:.1}x recovery speedup at {} commits\n",
        f1(top.commits_per_sec / single.commits_per_sec),
        top.shards,
        largest.speedup,
        largest.commits
    );
}

/// E1 (§5.1): bank-account concurrency vs. locking, swept over headroom.
fn e1_bank(quick: bool) {
    println!("== E1: bank account — data-dependent admission vs locking (paper §5.1)\n");
    let headrooms = [2.0, 1.0, 0.5, 0.1];
    let engines = [
        Engine::Dynamic,
        Engine::Hybrid,
        Engine::Static,
        Engine::CommutativityLocking,
        Engine::TwoPhaseLocking,
    ];
    let mut table = Table::new(vec![
        "engine",
        "headroom",
        "txn/s",
        "withdrawn",
        "insufficient",
        "aborted",
    ])
    .with_title("withdraw-only clients on one shared account");
    for &headroom in &headrooms {
        let params = BankParams {
            threads: 4,
            txns_per_thread: if quick { 10 } else { 40 },
            amount: 5,
            headroom,
            hold_micros: if quick { 200 } else { 500 },
        };
        for engine in engines {
            let out = run_bank(engine, &params);
            table.row(vec![
                engine.label().into(),
                format!("{headroom:.1}"),
                f1(out.throughput),
                out.withdrawn.to_string(),
                out.insufficient.to_string(),
                out.aborted.to_string(),
            ]);
        }
    }
    println!("{table}");
}

/// E2 (§5.1, Fig 5-1): FIFO queue producers + the scheduler-model claim.
fn e2_queue(quick: bool) {
    println!("== E2: FIFO queue — interleaved enqueues & the scheduler model (paper §5.1)\n");
    let params = QueueParams {
        producers: 4,
        txns_per_producer: if quick { 5 } else { 20 },
        batch: 4,
        hold_micros: if quick { 200 } else { 500 },
    };
    let mut table = Table::new(vec!["engine", "txn/s", "committed", "aborted", "drained"])
        .with_title("concurrent enqueue batches");
    for engine in [
        Engine::Dynamic,
        Engine::Hybrid,
        Engine::Static,
        Engine::CommutativityLocking,
        Engine::TwoPhaseLocking,
    ] {
        let out = run_queue(engine, &params);
        table.row(vec![
            engine.label().into(),
            f1(out.throughput),
            out.committed.to_string(),
            out.aborted.to_string(),
            out.drained.to_string(),
        ]);
    }
    println!("{table}");

    let (dynamic_ok, scheduler_ok) = paper_history_verdicts();
    let mut verdicts = Table::new(vec!["model", "admits paper's 1,2,1,2 history?"])
        .with_title("the paper's literal queue history (enqueues interleaved, dequeues 1,2,1,2)");
    verdicts.row(vec![
        "dynamic atomicity (checker)".into(),
        yesno(dynamic_ok),
    ]);
    verdicts.row(vec![
        "scheduler model (Figure 5-1)".into(),
        yesno(scheduler_ok),
    ]);
    println!("{verdicts}");
}

/// E3 (§4.2.3): long read-only audits against short updates.
fn e3_audit(quick: bool) {
    println!("== E3: long read-only audits (paper §4.2.3)\n");
    let params = AuditParams {
        shards: 4,
        keys_per_shard: 4,
        initial_balance: 1_000,
        updaters: 3,
        txns_per_updater: if quick { 10 } else { 40 },
        auditors: 2,
        audits_per_auditor: if quick { 4 } else { 16 },
        hold_micros: 100,
        audit_hold_micros: if quick { 1_000 } else { 2_000 },
    };
    let mut table = Table::new(vec![
        "engine",
        "updates/s",
        "upd aborts",
        "audits ok",
        "audit aborts",
        "audit ms",
        "inconsistent",
    ])
    .with_title("transfers + full-scan audits");
    for engine in Engine::PROPERTIES {
        let out = run_audit(engine, &params);
        table.row(vec![
            engine.label().into(),
            f1(out.update_throughput),
            out.updates_aborted.to_string(),
            out.audits_committed.to_string(),
            out.audits_aborted.to_string(),
            f1(out.audit_latency.as_secs_f64() * 1_000.0),
            out.audits_inconsistent.to_string(),
        ]);
    }
    println!("{table}");
}

/// E4 (§4.3.3): Lamport's banking problem.
fn e4_lamport(quick: bool) {
    println!("== E4: Lamport's banking problem (paper §4.3.3)\n");
    let params = LamportParams {
        shards: 4,
        keys_per_shard: 4,
        initial_balance: 1_000,
        transferrers: 3,
        txns_per_transferrer: if quick { 15 } else { 60 },
        transfer_hold_micros: 500,
        audits: if quick { 20 } else { 60 },
        audit_hold_micros: 500,
    };
    let mut table = Table::new(vec![
        "audit discipline",
        "audits",
        "torn audits",
        "torn %",
        "transfers/s",
        "transfer aborts",
    ])
    .with_title("transfers + audits under three audit disciplines");
    for mode in AuditMode::ALL {
        let out = run_lamport(mode, &params);
        table.row(vec![
            mode.label().into(),
            out.audits.to_string(),
            out.torn_audits.to_string(),
            pct(out.torn_audits, out.audits),
            f1(out.transfer_throughput),
            out.transfers_aborted.to_string(),
        ]);
    }
    println!("{table}");
}

/// E5 (§4.2.3, §4.3.3): witnesses + exhaustive classification counts.
fn e5_enumeration() {
    println!("== E5: relating the three properties (paper §4.2.3, §4.3.3)\n");

    // Part A: the paper's witness histories, classified by the checkers.
    let set = paper::set_system();
    let mut witnesses = Table::new(vec![
        "history (paper §)",
        "atomic",
        "dynamic",
        "static",
        "hybrid",
    ])
    .with_title("the paper's example histories, as classified by the checkers");
    let na = || "n/a".to_string();
    {
        let h = paper::perm_example();
        witnesses.row(vec![
            "§3 perm example".into(),
            yesno(is_atomic(&h, &set)),
            yesno(is_dynamic_atomic(&h, &set)),
            na(),
            na(),
        ]);
        let h = paper::atomic_not_dynamic();
        witnesses.row(vec![
            "§4.1 atomic-not-dynamic".into(),
            yesno(is_atomic(&h, &set)),
            yesno(is_dynamic_atomic(&h, &set)),
            na(),
            na(),
        ]);
        let h = paper::dynamic_example();
        witnesses.row(vec![
            "§4.1 dynamic".into(),
            yesno(is_atomic(&h, &set)),
            yesno(is_dynamic_atomic(&h, &set)),
            na(),
            na(),
        ]);
        let h = paper::atomic_not_static();
        witnesses.row(vec![
            "§4.2 atomic-not-static".into(),
            yesno(is_atomic(&h, &set)),
            na(),
            yesno(is_static_atomic(&h, &set)),
            na(),
        ]);
        let h = paper::static_example();
        witnesses.row(vec![
            "§4.2 static".into(),
            yesno(is_atomic(&h, &set)),
            na(),
            yesno(is_static_atomic(&h, &set)),
            na(),
        ]);
        let h = paper::atomic_not_hybrid();
        witnesses.row(vec![
            "§4.3 atomic-not-hybrid".into(),
            yesno(is_atomic(&h, &set)),
            na(),
            na(),
            yesno(is_hybrid_atomic(&h, &set)),
        ]);
        let h = paper::hybrid_example();
        witnesses.row(vec![
            "§4.3 hybrid".into(),
            yesno(is_atomic(&h, &set)),
            na(),
            na(),
            yesno(is_hybrid_atomic(&h, &set)),
        ]);
        let bank = paper::bank_system();
        let h = paper::bank_concurrent_withdraws();
        witnesses.row(vec![
            "§5.1 concurrent withdraws".into(),
            yesno(is_atomic(&h, &bank)),
            yesno(is_dynamic_atomic(&h, &bank)),
            na(),
            na(),
        ]);
        let q = paper::queue_system();
        let h = paper::queue_interleaved_enqueues();
        witnesses.row(vec![
            "§5.1 queue 1,2,1,2".into(),
            yesno(is_atomic(&h, &q)),
            yesno(is_dynamic_atomic(&h, &q)),
            na(),
            na(),
        ]);
        // Well-formedness witnesses (asserted, not tabulated).
        assert!(WellFormedness::Static.is_well_formed(&paper::static_wf_example()));
        assert!(!WellFormedness::Static.is_well_formed(&paper::static_wf_counterexample()));
        assert!(WellFormedness::Hybrid.is_well_formed(&paper::hybrid_wf_example()));
        assert!(!WellFormedness::Hybrid.is_well_formed(&paper::hybrid_wf_counterexample()));
    }
    println!("{witnesses}");

    // Part B: exhaustive counts.
    let x = ObjectId::new(1);
    let spec = SystemSpec::new().with_object(x, atomicity_spec::specs::IntSetSpec::new());
    let summary = enumerate_histories(x, &spec, &standard_programs());
    let mut counts = Table::new(vec!["class", "histories"]).with_title(format!(
        "exhaustive classification of {} interleavings (a: member(3), b: insert(3), c: member(3))",
        summary.total
    ));
    counts.row(vec!["well-formed".into(), summary.total.to_string()]);
    counts.row(vec!["atomic".into(), summary.atomic.to_string()]);
    counts.row(vec!["dynamic atomic".into(), summary.dynamic.to_string()]);
    counts.row(vec![
        "static atomic (start-order ts)".into(),
        summary.static_start.to_string(),
    ]);
    counts.row(vec![
        "hybrid atomic (commit-order ts)".into(),
        summary.hybrid_commit.to_string(),
    ]);
    counts.row(vec![
        "dynamic, not static".into(),
        summary.dynamic_not_static.to_string(),
    ]);
    counts.row(vec![
        "static, not dynamic".into(),
        summary.static_not_dynamic.to_string(),
    ]);
    counts.row(vec![
        "hybrid, not dynamic".into(),
        summary.hybrid_not_dynamic.to_string(),
    ]);
    counts.row(vec![
        "dynamic, not hybrid (must be 0)".into(),
        summary.dynamic_not_hybrid.to_string(),
    ]);
    counts.row(vec![
        "producible by commut-locking".into(),
        summary.commut_lock_producible.to_string(),
    ]);
    counts.row(vec![
        "producible by 2PL".into(),
        summary.rw_lock_producible.to_string(),
    ]);
    println!("{counts}");
}

/// E6 (§1, §3): recoverability — crash sweep + recovery-cost comparison.
/// With `disk`, the sweep's stable logs are the real on-disk WAL.
fn e6_recovery(quick: bool, disk: bool) {
    println!("== E6: recovery — crash sweep over two-phase commit (paper §1, §3)\n");
    let transfers = if quick { 3 } else { 6 };
    let stride = if quick { 4 } else { 2 };
    let (out, backend) = if disk {
        use atomicity_core::recovery::DurableLog;
        use atomicity_durable::{SyncPolicy, Wal, WalOptions};
        use std::sync::Arc;

        let base = std::env::temp_dir().join(format!("atomicity-e6-disk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let factory = |run: u64, node: atomicity_sim::NodeId| {
            let dir = base.join(format!("run{run}-n{}", node.raw()));
            let (wal, _) = Wal::open(
                &dir,
                WalOptions {
                    sync: SyncPolicy::SyncEach,
                    ..WalOptions::default()
                },
            )
            .expect("open per-node WAL");
            Arc::new(wal) as Arc<dyn DurableLog>
        };
        let out = run_crash_sweep_with(transfers, stride, 17, &factory);
        let _ = std::fs::remove_dir_all(&base);
        (out, "on-disk WAL (sync-each)")
    } else {
        (
            run_crash_sweep(transfers, stride, 17),
            "in-memory StableLog",
        )
    };
    let mut table = Table::new(vec!["metric", "value"]).with_title(format!(
        "crash of every node at every {stride}-th event of a {transfers}-transfer run \
         [logs: {backend}]"
    ));
    table.row(vec!["crash points tested".into(), out.points.to_string()]);
    table.row(vec![
        "atomic + conserved at".into(),
        format!("{}/{}", out.atomic_points, out.points),
    ]);
    table.row(vec!["txns committed".into(), out.committed.to_string()]);
    table.row(vec!["txns aborted".into(), out.aborted.to_string()]);
    table.row(vec!["recoveries".into(), out.recoveries.to_string()]);
    table.row(vec![
        "intentions redone".into(),
        out.redo_records.to_string(),
    ]);
    table.row(vec!["in-doubt resolved".into(), out.in_doubt.to_string()]);
    println!("{table}");

    let mut costs = Table::new(vec![
        "txns",
        "committed %",
        "redo µs",
        "undo µs",
        "redone",
        "undone",
    ])
    .with_title("recovery cost: intentions-list redo vs undo-log rollback");
    for &fraction in &[0.95, 0.5, 0.05] {
        let row = run_recovery_cost(if quick { 100 } else { 400 }, fraction);
        costs.row(vec![
            row.total_ops.to_string(),
            format!("{:.0}%", fraction * 100.0),
            row.redo_time.as_micros().to_string(),
            row.undo_time.as_micros().to_string(),
            row.redone_ops.to_string(),
            row.undone_txns.to_string(),
        ]);
    }
    println!("{costs}");

    let mut lossy = Table::new(vec![
        "loss %",
        "dup %",
        "committed",
        "aborted",
        "lost",
        "duplicated",
        "resends",
        "atomic",
    ])
    .with_title("unreliable network: vote retransmission keeps two-phase commit atomic");
    for (drop_p, dup_p) in [(0.0, 0.0), (0.1, 0.0), (0.3, 0.0), (0.0, 0.3), (0.3, 0.3)] {
        let row = run_lossy(if quick { 8 } else { 20 }, drop_p, dup_p, 17);
        lossy.row(vec![
            format!("{:.0}%", drop_p * 100.0),
            format!("{:.0}%", dup_p * 100.0),
            row.committed.to_string(),
            row.aborted.to_string(),
            row.lost.to_string(),
            row.duplicated.to_string(),
            row.resends.to_string(),
            if row.atomic { "yes" } else { "NO" }.into(),
        ]);
    }
    println!("{lossy}");

    let mut audits = Table::new(vec![
        "loss %",
        "dup %",
        "audits",
        "torn",
        "committed",
        "aborted",
        "crashes",
    ])
    .with_title("distributed timestamped audits under failures (§4.3, cluster scale)");
    for (drop_p, dup_p) in [(0.0, 0.0), (0.15, 0.1)] {
        let out = run_distributed_audits(if quick { 10 } else { 24 }, drop_p, dup_p, 31);
        audits.row(vec![
            format!("{:.0}%", drop_p * 100.0),
            format!("{:.0}%", dup_p * 100.0),
            out.audits.to_string(),
            out.torn.to_string(),
            out.committed.to_string(),
            out.aborted.to_string(),
            out.crashes.to_string(),
        ]);
    }
    println!("{audits}");
}

/// E8 (DESIGN.md §2): recorder contention under threaded stress —
/// throughput vs. thread count per engine, then the sharded recorder
/// against the single-mutex baseline.
fn e8_stress(quick: bool) {
    use atomicity_bench::workloads::stress::{run_stress, StressParams, STRESS_ENGINES};

    println!("== E8: threaded stress — sharded history recording (DESIGN.md §2)\n");
    let txns = if quick { 50 } else { 200 };
    let mut table = Table::new(vec![
        "engine",
        "threads",
        "txn/s",
        "committed",
        "aborted",
        "events",
        "blocks",
    ])
    .with_title("per-thread accounts; the shared recorder is the serialization point");
    for engine in STRESS_ENGINES {
        for threads in [1usize, 2, 4, 8] {
            let params = StressParams {
                threads,
                txns_per_thread: txns,
                ops_per_txn: 4,
                hold_micros: 0,
                coarse_log: false,
                verify: false,
                exhaustive: false,
                collect_metrics: false,
                shared_objects: 0,
            };
            let out = run_stress(engine, &params);
            table.row(vec![
                engine.label().into(),
                threads.to_string(),
                f1(out.throughput),
                out.committed.to_string(),
                out.aborted.to_string(),
                out.events.to_string(),
                out.stats.blocks.to_string(),
            ]);
        }
    }
    println!("{table}");

    let mut recorder = Table::new(vec!["recorder", "shards", "threads", "txn/s", "events"])
        .with_title("sharded recorder vs the single-mutex baseline (dynamic engine)");
    for coarse in [false, true] {
        for threads in [1usize, 4, 8] {
            let params = StressParams {
                threads,
                txns_per_thread: txns,
                ops_per_txn: 8,
                hold_micros: 0,
                coarse_log: coarse,
                verify: false,
                exhaustive: false,
                collect_metrics: false,
                shared_objects: 0,
            };
            let out = run_stress(Engine::Dynamic, &params);
            recorder.row(vec![
                if coarse { "coarse" } else { "sharded" }.into(),
                out.log_shards.to_string(),
                threads.to_string(),
                f1(out.throughput),
                out.events.to_string(),
            ]);
        }
    }
    println!("{recorder}");
}

/// A1 (ablation, DESIGN.md §4): the dynamic engine's permutation-check
/// bound is the concurrency knob — `max_check = 1` serializes like a
/// lock, larger bounds approach full data-dependent admission.
fn a1_ablation(quick: bool) {
    println!("== A1: ablation — dynamic admission bound (DESIGN.md §4)\n");
    let params = BankParams {
        threads: 4,
        txns_per_thread: if quick { 10 } else { 40 },
        amount: 5,
        headroom: 2.0,
        hold_micros: if quick { 200 } else { 500 },
    };
    let mut table = Table::new(vec!["max_check", "txn/s", "withdrawn", "aborted"])
        .with_title("E1 workload, dynamic engine, varying permutation-check bound");
    for max_check in [1usize, 2, 3, 4, 6] {
        let out = run_bank_ablation(max_check, &params);
        table.row(vec![
            max_check.to_string(),
            f1(out.throughput),
            out.withdrawn.to_string(),
            out.aborted.to_string(),
        ]);
    }
    println!("{table}");
}

/// E7 (§4.2.3): timestamp skew sensitivity.
fn e7_skew(quick: bool) {
    println!("== E7: clock-skew sensitivity of static atomicity (paper §4.2.3)\n");
    let mut table = Table::new(vec!["engine", "skew", "committed", "ts aborts", "abort %"])
        .with_title("read-modify-write updates with per-worker clock skew");
    for &skew in &[0u64, 10, 100, 1_000] {
        for engine in [Engine::Static, Engine::Hybrid] {
            let params = SkewParams {
                workers: 4,
                txns_per_worker: if quick { 15 } else { 50 },
                skew_ticks: skew,
                keys: 8,
                hold_micros: 50,
            };
            let out = run_skew(engine, &params);
            let total = out.committed + out.ts_aborts + out.other_aborts;
            table.row(vec![
                engine.label().into(),
                skew.to_string(),
                out.committed.to_string(),
                out.ts_aborts.to_string(),
                pct(out.ts_aborts, total),
            ]);
        }
    }
    println!("{table}");
}

/// V1: exhaustive schedule exploration — every interleaving of the §5.1
/// scenarios, verified against the checkers.
fn v1_model_check() {
    use atomicity_bench::engines::Engine;
    use atomicity_core::Protocol;
    use atomicity_spec::specs::{BankAccountSpec, FifoQueueSpec};

    println!("== V1: exhaustive schedule exploration (model checking the engines)\n");
    let mut table = Table::new(vec![
        "scenario",
        "engine",
        "schedules",
        "blocked edges",
        "wedged",
        "forced aborts",
    ])
    .with_title("every interleaving verified against the protocol's property");

    // §5.1 bank, headroom vs tight, per property engine.
    for (balance, label) in [(100i64, "bank headroom"), (5, "bank tight")] {
        for (engine, protocol) in [
            (Engine::Dynamic, Protocol::Dynamic),
            (Engine::Static, Protocol::Static),
            (Engine::Hybrid, Protocol::Hybrid),
        ] {
            let factory = engine_factory(engine, vec![BankAccountSpec::with_initial(balance)]);
            let scripts = vec![
                Script::update(vec![(0, atomicity_spec::op("withdraw", [4]))]),
                Script::update(vec![(0, atomicity_spec::op("withdraw", [3]))]),
                Script::update(vec![(0, atomicity_spec::op("deposit", [2]))]),
            ];
            let spec = atomicity_spec::SystemSpec::new()
                .with_object(ObjectId::new(1), BankAccountSpec::with_initial(balance));
            let stats = explore(&factory, &scripts, &property_verifier(protocol, spec));
            table.row(vec![
                label.into(),
                engine.label().into(),
                stats.leaves.to_string(),
                stats.blocked_edges.to_string(),
                stats.stuck.to_string(),
                stats.forced_aborts.to_string(),
            ]);
        }
    }
    // §5.1 queue, dynamic vs serial locking.
    for engine in [Engine::Dynamic, Engine::CommutativityLocking] {
        let factory = engine_factory(engine, vec![FifoQueueSpec::new()]);
        let scripts = vec![
            Script::update(vec![
                (0, atomicity_spec::op("enqueue", [1])),
                (0, atomicity_spec::op("enqueue", [2])),
            ]),
            Script::update(vec![
                (0, atomicity_spec::op("enqueue", [1])),
                (0, atomicity_spec::op("enqueue", [2])),
            ]),
        ];
        let spec =
            atomicity_spec::SystemSpec::new().with_object(ObjectId::new(1), FifoQueueSpec::new());
        let stats = explore(
            &factory,
            &scripts,
            &property_verifier(Protocol::Dynamic, spec),
        );
        table.row(vec![
            "queue interleave".into(),
            engine.label().into(),
            stats.leaves.to_string(),
            stats.blocked_edges.to_string(),
            stats.stuck.to_string(),
            stats.forced_aborts.to_string(),
        ]);
    }
    println!("{table}");
}

/// E9 (DESIGN.md §5): the static-analysis passes as an experiment — the
/// audit verdict for every hand-written conflict table, the derived lock
/// ordering, and the linear-time certifier against the exhaustive
/// checkers on a real E8 history.
/// E10: the observability layer itself — per-engine latency percentiles
/// and the abort-reason taxonomy over a contended variant of the E8
/// stress workload (all workers share one account), exported as JSON.
fn e10_observability(quick: bool, smoke: bool, json_path: &str) {
    use atomicity_bench::report::ObservabilityReport;
    use atomicity_bench::workloads::stress::{run_stress, StressParams};

    println!("== E10: observability — txn tracing, latency histograms, abort taxonomy (DESIGN.md \u{a7}6)\n");
    let (threads, txns) = if smoke {
        (2, 20)
    } else if quick {
        (4, 60)
    } else {
        (4, 250)
    };
    // A modest in-transaction hold keeps the shared lock occupied long
    // enough for the block/abort instrumentation to observe real waits.
    let params = StressParams {
        threads,
        txns_per_thread: txns,
        ops_per_txn: 4,
        hold_micros: if smoke { 20 } else { 50 },
        collect_metrics: true,
        shared_objects: 1,
        ..StressParams::default()
    };
    let outcomes: Vec<_> = Engine::ALL
        .iter()
        .map(|&e| run_stress(e, &params))
        .collect();
    let report = ObservabilityReport::new(&params, &outcomes);

    let fmt_ns = |v: Option<u64>| v.map_or_else(|| "-".into(), |n| n.to_string());
    let mut table = Table::new(vec![
        "engine",
        "txn/s",
        "invoke p50",
        "invoke p95",
        "invoke p99",
        "block p95",
        "commit p95",
        "aborted",
        "trace ev",
    ])
    .with_title(format!(
        "{threads} workers x {txns} txns on ONE shared account; latencies in ns"
    ));
    for row in &report.engines {
        table.row(vec![
            row.engine.clone(),
            f1(row.throughput),
            fmt_ns(row.invoke_ns.p50),
            fmt_ns(row.invoke_ns.p95),
            fmt_ns(row.invoke_ns.p99),
            fmt_ns(row.block_ns.p95),
            fmt_ns(row.commit_ns.p95),
            row.aborted.to_string(),
            row.trace_events.to_string(),
        ]);
    }
    println!("{table}");

    let mut reasons = Table::new(vec!["engine", "reason", "count"])
        .with_title("abort causes recorded at the error sites (may exceed txn aborts)");
    let mut any = false;
    for row in &report.engines {
        for (reason, count) in &row.abort_reasons {
            any = true;
            reasons.row(vec![row.engine.clone(), reason.clone(), count.to_string()]);
        }
    }
    if any {
        println!("{reasons}");
    } else {
        println!("(no aborts recorded on this run)\n");
    }

    std::fs::write(json_path, report.to_json())
        .unwrap_or_else(|e| panic!("cannot write {json_path}: {e}"));
    println!("report written to {json_path}\n");

    let silent = report.silent_engines();
    if !silent.is_empty() {
        eprintln!("E10 FAILED: engines with zero admissions: {silent:?}");
        std::process::exit(1);
    }
}

/// E14: contended hot-path admission — the unified `Admission` API's
/// three variants (locked / fast-path / batched) on ONE shared account,
/// gated against the committed E10 trajectory.
fn e14_contention(quick: bool, smoke: bool, json_path: &str, baseline_path: &str) {
    use atomicity_bench::report::{ContentionReport, ObservabilityReport};
    use atomicity_bench::workloads::e14::{e14_matrix, run_e14, E14Params};
    use atomicity_bench::AdmissionPath;

    println!("== E14: contended admission — locked vs table fast path vs flat combining\n");
    let params = if smoke {
        E14Params::smoke()
    } else if quick {
        E14Params::quick()
    } else {
        E14Params::full()
    };

    let mut outcomes = Vec::new();
    for &threads in &params.threads {
        for (engine, path) in e14_matrix() {
            outcomes.push(run_e14(engine, path, threads, &params));
        }
    }
    let report = ContentionReport::new(&params, &outcomes);

    let mut table = Table::new(vec![
        "engine",
        "path",
        "threads",
        "txn/s",
        "committed",
        "aborted",
        "fast adm",
        "blocks",
        "reads",
    ])
    .with_title(format!(
        "{} txns/worker x {} deposits on ONE shared account; every run certified",
        params.txns_per_thread, params.ops_per_txn
    ));
    for row in &report.rows {
        table.row(vec![
            row.engine.clone(),
            row.admission_path.clone(),
            row.threads.to_string(),
            f1(row.throughput),
            row.committed.to_string(),
            row.aborted.to_string(),
            row.fast_admissions.to_string(),
            row.blocks.to_string(),
            row.reads_committed.to_string(),
        ]);
    }
    println!("{table}");

    std::fs::write(json_path, report.to_json())
        .unwrap_or_else(|e| panic!("cannot write {json_path}: {e}"));
    println!("report written to {json_path}\n");

    // The trajectory gates: compare against the committed E10 report.
    let top = params.threads.iter().copied().max().unwrap_or(0);
    let baseline = match std::fs::read_to_string(baseline_path) {
        Ok(json) => match ObservabilityReport::from_json(&json) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("E14 FAILED: baseline {baseline_path} unparseable: {e}");
                std::process::exit(1);
            }
        },
        Err(e) => {
            eprintln!("E14 FAILED: baseline {baseline_path} unreadable: {e}");
            std::process::exit(1);
        }
    };

    let fast_engines = [Engine::Dynamic, Engine::Hybrid];
    let mut best_speedup: Option<(Engine, f64)> = None;
    for engine in fast_engines {
        let Some(base) = baseline
            .engines
            .iter()
            .find(|r| r.engine == engine.label())
            .map(|r| r.throughput)
        else {
            continue;
        };
        let Some(measured) = report.best_throughput_at(engine.label(), top) else {
            continue;
        };
        let speedup = measured / base;
        println!(
            "{engine}: {measured:.1} txn/s at {top} threads vs E10 baseline {base:.1} — {speedup:.1}x"
        );
        // Regression floor (all runs, smoke included): the redesigned hot
        // path must never fall below the recorded pre-change trajectory.
        if measured < base {
            eprintln!(
                "E14 FAILED: {engine} contended throughput at {top} threads ({measured:.1}) \
                 dropped below the E10 baseline ({base:.1})"
            );
            std::process::exit(1);
        }
        if best_speedup.is_none_or(|(_, s)| speedup > s) {
            best_speedup = Some((engine, speedup));
        }
        // The fast path must actually engage under contention.
        let fast_hits = report
            .rows
            .iter()
            .filter(|r| {
                r.engine == engine.label()
                    && r.threads == top
                    && r.admission_path != AdmissionPath::Locked.label()
            })
            .map(|r| r.fast_admissions)
            .sum::<u64>();
        if fast_hits == 0 {
            eprintln!("E14 FAILED: {engine} recorded zero fast-path admissions at {top} threads");
            std::process::exit(1);
        }
    }

    // The acceptance gate: a full run must show the redesign paying off
    // ≥4x for at least one engine. Smoke/quick runs are too small to
    // measure and only check wiring plus the floor above.
    if !smoke && !quick {
        match best_speedup {
            Some((engine, s)) if s >= 4.0 => {
                println!("\nbest contended speedup vs E10: {engine} at {s:.1}x (gate: >= 4x)\n");
            }
            other => {
                eprintln!(
                    "E14 FAILED: best contended speedup vs the E10 baseline was {other:?}, need >= 4x"
                );
                std::process::exit(1);
            }
        }
    }
}

/// E11 (DESIGN.md §7): WAL commit throughput — group commit vs.
/// sync-each across writer-thread counts and batching windows, exported
/// as JSON. A full run gates on group commit beating sync-each ≥2× at
/// the highest thread count.
fn e11_wal(quick: bool, smoke: bool, json_path: &str) {
    use atomicity_bench::workloads::wal::{run_wal_bench, WalBenchParams};

    println!("== E11: durability — WAL group commit vs sync-each (DESIGN.md \u{a7}7)\n");
    let params = if smoke {
        WalBenchParams::smoke()
    } else if quick {
        WalBenchParams::quick()
    } else {
        WalBenchParams::full()
    };
    let report = run_wal_bench(&params);

    let fmt_ns = |v: Option<u64>| v.map_or_else(|| "-".into(), |n| n.to_string());
    let mut table = Table::new(vec![
        "mode",
        "window µs",
        "threads",
        "commit/s",
        "fsyncs",
        "mean batch",
        "flush p50 ns",
        "flush p95 ns",
    ])
    .with_title(format!(
        "{} txns/thread, 2 records + 1 durable sync per txn",
        params.txns_per_thread
    ));
    for row in &report.rows {
        table.row(vec![
            row.mode.clone(),
            row.window_us.map_or_else(|| "-".into(), |w| w.to_string()),
            row.threads.to_string(),
            f1(row.commits_per_sec),
            row.fsyncs.to_string(),
            f1(row.mean_batch),
            fmt_ns(row.flush_ns.p50),
            fmt_ns(row.flush_ns.p95),
        ]);
    }
    println!("{table}");

    let top_threads = params.threads.iter().copied().max().unwrap_or(0);
    let speedup = report.group_commit_speedup(top_threads);
    if let Some(s) = speedup {
        println!("group-commit speedup over sync-each at {top_threads} threads: {s:.1}x\n");
    }

    std::fs::write(json_path, report.to_json())
        .unwrap_or_else(|e| panic!("cannot write {json_path}: {e}"));
    println!("report written to {json_path}\n");

    // The CI/acceptance gate: batching fsyncs must actually pay. Smoke
    // runs are too small to measure and only check wiring.
    if !smoke && !quick {
        match speedup {
            Some(s) if s >= 2.0 => {}
            other => {
                eprintln!("E11 FAILED: group-commit speedup at {top_threads} threads was {other:?}, need >= 2x");
                std::process::exit(1);
            }
        }
    }
}

/// E12: the deterministic-simulation seed sweep — full fault matrix per
/// seed, checkpointed invariants, failure shrinking, replayable seeds.
fn e12_simulation(
    smoke: bool,
    seeds: Option<u64>,
    demo_lost_ack: bool,
    replay: Option<u64>,
    json_path: &str,
) {
    use atomicity_bench::workloads::e12::{run_seed, run_sweep, E12Params, FaultPlan};

    println!("== E12: deterministic simulation — seed sweep with failure shrinking (DESIGN.md \u{a7}8)\n");
    let mut params = if smoke {
        E12Params::smoke()
    } else {
        E12Params::full()
    };
    if let Some(n) = seeds {
        params.seeds = n;
    }
    params.demo_lost_ack = demo_lost_ack;

    if let Some(seed) = replay {
        // Replay gate: the same seed, twice, must be bit-identical.
        let plan = FaultPlan::full(params.transfers);
        let a = run_seed(seed, &plan, &params, true);
        let b = run_seed(seed, &plan, &params, true);
        println!(
            "replay seed {seed}: trace {:#018x} / {:#018x}, state {:#018x} / {:#018x}",
            a.trace_hash, b.trace_hash, a.state_digest, b.state_digest
        );
        if (a.trace_hash, a.state_digest) != (b.trace_hash, b.state_digest) {
            eprintln!("E12 FAILED: seed {seed} did not replay identically");
            std::process::exit(1);
        }
        println!("replay is bit-identical\n");
        return;
    }

    let report = run_sweep(&params);

    let mut table = Table::new(vec!["metric", "value"]).with_title(format!(
        "{} seeds x {} transfers, all fault classes enabled",
        report.seeds, params.transfers
    ));
    table.row(vec!["seeds/sec".into(), f1(report.seeds_per_sec)]);
    table.row(vec![
        "txns committed".into(),
        report.faults.committed.to_string(),
    ]);
    table.row(vec![
        "txns aborted".into(),
        report.faults.aborted.to_string(),
    ]);
    table.row(vec!["crashes".into(), report.faults.crashes.to_string()]);
    table.row(vec![
        "  of which MTTF".into(),
        report.faults.mttf_crashes.to_string(),
    ]);
    table.row(vec![
        "recoveries".into(),
        report.faults.recoveries.to_string(),
    ]);
    table.row(vec!["messages lost".into(), report.faults.lost.to_string()]);
    table.row(vec![
        "messages duplicated".into(),
        report.faults.duplicated.to_string(),
    ]);
    table.row(vec![
        "messages reordered".into(),
        report.faults.reordered.to_string(),
    ]);
    table.row(vec![
        "messages cut by partitions".into(),
        report.faults.cut.to_string(),
    ]);
    table.row(vec!["resends".into(), report.faults.resends.to_string()]);
    table.row(vec![
        "invariant checks".into(),
        report.invariant_checks.to_string(),
    ]);
    table.row(vec![
        "checker overhead".into(),
        format!("{:.1}%", report.checker_overhead_pct),
    ]);
    table.row(vec![
        "violations".into(),
        report.violations.len().to_string(),
    ]);
    println!("{table}");

    for case in &report.violations {
        println!(
            "VIOLATION seed {}: {}\n  shrunk to [{}]: {}\n  replay: experiments e12 --replay={} (trace {})",
            case.seed, case.detail, case.minimal_schedule, case.minimal_detail, case.seed, case.trace_hash
        );
    }

    std::fs::write(json_path, report.to_json())
        .unwrap_or_else(|e| panic!("cannot write {json_path}: {e}"));
    println!("report written to {json_path}\n");

    if demo_lost_ack {
        // The gate inverts: the sweep must catch and fully shrink the bug.
        let caught = report
            .violations
            .iter()
            .any(|c| !c.minimal_plan.drop && !c.minimal_plan.mttf && c.minimal_plan.transfers <= 2);
        if !caught {
            eprintln!("E12 FAILED: injected lost-ack bug was not caught and shrunk");
            std::process::exit(1);
        }
        println!(
            "demo: injected bug caught on {} seed(s) and shrunk to a minimal reproducer\n",
            report.violations.len()
        );
    } else if !report.violations.is_empty() {
        eprintln!(
            "E12 FAILED: {} violating seed(s); replay with --replay=<seed>",
            report.violations.len()
        );
        std::process::exit(1);
    }
}

fn e9_static_analysis(quick: bool) {
    use atomicity_bench::workloads::stress::{stress_history, StressParams};
    use atomicity_spec::specs::BankAccountSpec;
    use std::time::Instant;

    println!("== E9: static analysis — table audits & linear-time certification (DESIGN.md §5)\n");
    let mut table = Table::new(vec![
        "table",
        "spec",
        "pairs",
        "commute",
        "conflict",
        "conservative",
        "unsound",
        "states",
    ])
    .with_title("hand-written conflict tables vs the relation derived from each spec");
    for audit in all_table_audits() {
        let (mut commute, mut conflict, mut conservative, mut unsound) = (0, 0, 0, 0);
        for f in &audit.findings {
            match f.class {
                PairClass::AgreeCommute => commute += 1,
                PairClass::AgreeConflict => conflict += 1,
                PairClass::Conservative { .. } => conservative += 1,
                PairClass::Unsound(_) | PairClass::Asymmetric => unsound += 1,
                PairClass::Unsupported => {}
            }
        }
        table.row(vec![
            audit.table.clone(),
            audit.spec_name.clone(),
            audit.findings.len().to_string(),
            commute.to_string(),
            conflict.to_string(),
            conservative.to_string(),
            unsound.to_string(),
            audit.states_explored.to_string(),
        ]);
    }
    println!("{table}");

    match lock_order_report() {
        Ok(report) if report.is_clean() => {
            println!(
                "derived lock order ({} locks, {} edges): {}\n",
                report.locks.len(),
                report.edges.len(),
                report.order.join(" < ")
            );
        }
        Ok(report) => println!("lock-order audit found cycles: {:?}\n", report.cycles),
        Err(e) => println!("lock-order audit skipped (sources unavailable: {e})\n"),
    }

    let threads = 4;
    let txns = if quick { 50 } else { 200 };
    let params = StressParams {
        threads,
        txns_per_thread: txns,
        ops_per_txn: 4,
        hold_micros: 0,
        coarse_log: false,
        verify: false,
        exhaustive: false,
        collect_metrics: false,
        shared_objects: 0,
    };
    let (h, spec) = stress_history(Engine::Dynamic, &params);
    let t0 = Instant::now();
    let cert = certify(Property::Dynamic, &h, &spec);
    let linear = t0.elapsed();
    assert!(
        cert.is_certified(),
        "E9: certifier rejected a recorded history: {cert}"
    );
    let t0 = Instant::now();
    let mut exhaustive_ok = true;
    for t in 0..threads {
        let oid = ObjectId::new(t as u32 + 1);
        let ph = h.project_object(oid);
        let os = SystemSpec::new().with_object(oid, BankAccountSpec::new());
        exhaustive_ok &= is_dynamic_atomic(&ph, &os);
    }
    let exhaustive = t0.elapsed();
    assert!(exhaustive_ok, "E9: exhaustive checker rejected the history");

    let mut cmp = Table::new(vec!["checker", "wall µs", "verdict"]).with_title(format!(
        "post-hoc verification of one E8 history ({threads} threads × {txns} txns, dynamic)"
    ));
    cmp.row(vec![
        format!("linear-time certifier ({})", cert.method.label()),
        linear.as_micros().to_string(),
        "certified".into(),
    ]);
    cmp.row(vec![
        "exhaustive per-object checker".into(),
        exhaustive.as_micros().to_string(),
        "atomic".into(),
    ]);
    println!("{cmp}");
    println!(
        "certifier speedup: {:.1}×\n",
        exhaustive.as_secs_f64() / linear.as_secs_f64().max(1e-9)
    );
}

/// E13 (DESIGN.md §5): conflict-table synthesis — the generated tables
/// the engines lock with, the hand-table minimality gap report, the
/// recoverability asymmetries, and the dependency-footprint extraction.
fn e13_synthesis() {
    println!(
        "== E13: conflict-table synthesis — generated tables & minimality gaps (DESIGN.md §5)\n"
    );
    let suite = full_synth_suite();

    let mut table = Table::new(vec![
        "adt",
        "spec",
        "universe",
        "states",
        "rules",
        "commute",
        "asymmetries",
    ])
    .with_title("machine-synthesized conflict tables (pairwise forward commutativity)");
    for s in &suite.syntheses {
        table.row(vec![
            s.table.adt.clone(),
            s.table.spec.clone(),
            s.table.universe.len().to_string(),
            s.table.states_explored.to_string(),
            s.table.rules.len().to_string(),
            s.table.commuting_rules().to_string(),
            s.asymmetries.len().to_string(),
        ]);
    }
    println!("{table}");

    let mut gaps = Table::new(vec![
        "hand table",
        "adt",
        "justified",
        "data-dep",
        "over-conservative",
        "unsound",
        "verdict",
    ])
    .with_title("hand-written tables vs the synthesized relation (minimality report)");
    for g in &suite.gaps {
        gaps.row(vec![
            g.hand_table.clone(),
            g.adt.clone(),
            g.justified.len().to_string(),
            g.data_dependent.len().to_string(),
            g.over_conservative.len().to_string(),
            g.unsound.len().to_string(),
            if g.minimal { "minimal" } else { "gap" }.to_string(),
        ]);
    }
    println!("{gaps}");

    for g in &suite.gaps {
        for e in &g.over_conservative {
            println!(
                "lost concurrency in `{}`: ({}, {}) [{}] — {}",
                g.hand_table, e.p, e.q, e.relation, e.witness
            );
        }
    }
    println!();
    for s in &suite.syntheses {
        let shown = s.asymmetries.len().min(3);
        for a in &s.asymmetries[..shown] {
            println!("recoverability asymmetry in `{}`: {}", s.table.adt, a);
        }
        if s.asymmetries.len() > shown {
            println!(
                "  (+{} more asymmetries in `{}`)",
                s.asymmetries.len() - shown,
                s.table.adt
            );
        }
    }
    println!();

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("src/workloads");
    match atomicity_lint::nondet::read_sources_recursive(&root, "bench/workloads/") {
        Ok(files) => {
            let report = atomicity_lint::extract_footprints(&files);
            let mut fp = Table::new(vec!["file", "function", "reads", "writes", "unknown"])
                .with_title("static dependency footprints of the workload transaction programs");
            for f in &report.functions {
                fp.row(vec![
                    f.file.clone(),
                    f.function.clone(),
                    f.reads.join(" "),
                    f.writes.join(" "),
                    f.unknown.join(" "),
                ]);
            }
            println!("{fp}");
            println!(
                "{} writer function(s), {} read-only — the dependency-logging seed for parallel recovery\n",
                report.writers(),
                report.read_only()
            );
        }
        Err(e) => println!("footprint extraction skipped (sources unavailable: {e})\n"),
    }
}

/// The full synthesis suite: the workspace-standard one plus the bench
/// kv-map hand table's gap report (the map hand table lives in this crate,
/// so `atomicity-lint` cannot diff it itself).
fn full_synth_suite() -> atomicity_lint::SynthSuite {
    let mut suite = atomicity_bench::synthesized_suite().clone();
    let map = suite
        .synthesis("map")
        .expect("map table synthesized")
        .clone();
    suite.gaps.push(atomicity_lint::gap_against(
        &map,
        "map_commutativity",
        &map_commutativity,
    ));
    suite
}

/// Every hand-written conflict table in the workspace, audited against
/// its specification: the four baseline tables plus the bench kv-map
/// table.
fn all_table_audits() -> Vec<TableAudit> {
    let config = AuditConfig::default();
    let mut audits = standard_audits(&config);
    audits.push(audit_table(
        "map_commutativity",
        "KvMapSpec",
        &atomicity_spec::specs::KvMapSpec::new(),
        &atomicity_lint::synth::map_universe(),
        map_commutativity,
        &config,
    ));
    audits
}

/// Scans the lock-holding sources (core, engines, baselines, the
/// simulator, and the partitioned service) for the lock-order audit.
/// Paths resolve relative to this crate's manifest, so the scan works
/// from any working directory as long as the source tree is present.
fn lock_order_report() -> std::io::Result<LockOrderReport> {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("..");
    let files = read_sources(&[
        &root.join("core/src"),
        &root.join("core/src/engine"),
        &root.join("baselines/src"),
        &root.join("sim/src"),
        &root.join("dist/src"),
    ])?;
    Ok(audit_lock_order(&files))
}

/// Scans the workspace sources for nondeterminism escape hatches: the
/// strict deterministic-simulation rules over `crates/sim`, the
/// reproduce-by-seed rules (unseeded RNG) over every crate.
fn nondet_findings() -> std::io::Result<Vec<atomicity_lint::NondetFinding>> {
    use atomicity_lint::nondet::read_sources_recursive;
    use atomicity_lint::{scan_nondeterminism, NondetConfig};
    let crates_root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("..");
    let mut findings = Vec::new();
    let sim = read_sources_recursive(&crates_root.join("sim/src"), "sim/")?;
    findings.extend(scan_nondeterminism(
        &sim,
        &NondetConfig::deterministic_sim(),
    ));
    // The partitioned service must be as deterministic as the simulator
    // it is built on: same strict rules (no wall clocks, no ambient
    // randomness). Its recovery *timings* live in the bench crate.
    let dist = read_sources_recursive(&crates_root.join("dist/src"), "dist/")?;
    findings.extend(scan_nondeterminism(
        &dist,
        &NondetConfig::deterministic_sim(),
    ));
    for krate in [
        "adts",
        "analysis",
        "baselines",
        "bench",
        "certify",
        "core",
        "dist",
        "durability",
        "sim",
        "spec",
    ] {
        let files =
            read_sources_recursive(&crates_root.join(krate).join("src"), &format!("{krate}/"))?;
        findings.extend(scan_nondeterminism(&files, &NondetConfig::workspace()));
    }
    Ok(findings)
}

/// Re-proves a generated table from scratch against its own spec and
/// universe — the independent soundness check `lint --synth` gates on.
fn verify_generated(
    table: &atomicity_core::ConflictTable,
    config: &atomicity_lint::SynthConfig,
) -> Vec<atomicity_lint::SoundnessViolation> {
    use atomicity_lint::audit::{bank_universe, queue_universe, semiqueue_universe, set_universe};
    use atomicity_lint::synth::{escrow_universe, map_universe};
    use atomicity_lint::verify_table;
    use atomicity_spec::specs::{
        BankAccountSpec, EscrowCounterSpec, FifoQueueSpec, IntSetSpec, KvMapSpec, SemiqueueSpec,
    };
    match table.adt.as_str() {
        "bank" => verify_table(&BankAccountSpec::new(), &bank_universe(), config, table),
        "queue" => verify_table(&FifoQueueSpec::new(), &queue_universe(), config, table),
        "set" => verify_table(&IntSetSpec::new(), &set_universe(), config, table),
        "semiqueue" => verify_table(&SemiqueueSpec::new(), &semiqueue_universe(), config, table),
        "map" => verify_table(&KvMapSpec::new(), &map_universe(), config, table),
        "escrow" => verify_table(&EscrowCounterSpec::new(), &escrow_universe(), config, table),
        other => vec![atomicity_lint::SoundnessViolation {
            p: op("?", [] as [i64; 0]),
            q: op("?", [] as [i64; 0]),
            detail: format!("no verification universe for adt `{other}`"),
        }],
    }
}

/// The synthesis section of the lint gate: re-prove every generated table,
/// diff every hand table, write the gap-report JSON. Returns the error
/// count. With `demo_unsound` the generated bank table is corrupted
/// (withdraw/withdraw forced to commute) before verification to
/// demonstrate the failure path.
fn run_synth_lint(demo_unsound: bool, json_path: Option<&str>) -> usize {
    let config = atomicity_lint::SynthConfig::default();
    let suite = full_synth_suite();
    let mut errors = 0usize;

    for s in &suite.syntheses {
        let mut table = s.table.clone();
        if demo_unsound && table.adt == "bank" {
            for rule in &mut table.rules {
                if rule.p_name == "withdraw" && rule.q_name == "withdraw" {
                    rule.commutes = true;
                }
            }
        }
        let violations = verify_generated(&table, &config);
        println!(
            "synthesized `{}` table{}: {} rules ({} commuting) over {} states — {} soundness violation(s)",
            table.adt,
            if demo_unsound && table.adt == "bank" {
                " (CORRUPTED: withdraw/withdraw forced to commute)"
            } else {
                ""
            },
            table.rules.len(),
            table.commuting_rules(),
            table.states_explored,
            violations.len(),
        );
        for v in &violations {
            println!("  ERROR unsound entry ({}, {}): {}", v.p, v.q, v.detail);
        }
        errors += violations.len();
    }

    println!();
    for g in &suite.gaps {
        println!(
            "gap report `{}` vs synthesized `{}`: {} justified, {} data-dependent, {} over-conservative, {} unsound — {}",
            g.hand_table,
            g.adt,
            g.justified.len(),
            g.data_dependent.len(),
            g.over_conservative.len(),
            g.unsound.len(),
            if g.minimal { "minimal" } else { "NOT minimal" },
        );
        for e in &g.unsound {
            println!(
                "  ERROR hand table admits non-commuting ({}, {}): {}",
                e.p, e.q, e.witness
            );
        }
        for e in &g.over_conservative {
            println!(
                "  warning: hand table rejects ({}, {}) but it {}",
                e.p, e.q, e.witness
            );
        }
        errors += g.unsound.len();
    }

    #[derive(serde::Serialize)]
    struct SynthGapReport {
        tables: Vec<atomicity_core::ConflictTable>,
        gaps: Vec<atomicity_lint::HandTableGap>,
        asymmetries: Vec<String>,
    }
    let report = SynthGapReport {
        tables: suite.syntheses.iter().map(|s| s.table.clone()).collect(),
        gaps: suite.gaps.clone(),
        asymmetries: suite
            .syntheses
            .iter()
            .flat_map(|s| {
                s.asymmetries
                    .iter()
                    .map(move |a| format!("{}: {}", s.table.adt, a))
            })
            .collect(),
    };
    let path = json_path.unwrap_or("BENCH_synth_gap.json");
    match std::fs::write(path, serde_json::to_string_pretty(&report).unwrap()) {
        Ok(()) => println!("\ngap report written to {path}"),
        Err(e) => {
            println!("\nERROR writing gap report to {path}: {e}");
            errors += 1;
        }
    }
    errors
}

/// The `lint` subcommand: conflict-table audits, the lock-order scan, and
/// the nondeterminism scan — plus, with `--synth`, the synthesis gate —
/// exiting non-zero on any unsound entry, asymmetric entry, lock cycle,
/// or nondeterminism finding. Conservative entries are warnings —
/// reported, never fatal.
fn run_lint(demo_unsound: bool, synth: bool, json_path: Option<&str>) -> i32 {
    println!("== atomicity-lint: conflict-table audit + lock-order audit + nondeterminism scan\n");
    let mut audits = all_table_audits();
    if demo_unsound {
        audits.push(audit_table(
            "bank_commutativity (CORRUPTED: withdraw/withdraw forced to commute)",
            "BankAccountSpec",
            &atomicity_spec::specs::BankAccountSpec::new(),
            &atomicity_lint::audit::bank_universe(),
            |p, q| {
                (p.name() == "withdraw" && q.name() == "withdraw")
                    || atomicity_baselines::bank_commutativity(p, q)
            },
            &AuditConfig::default(),
        ));
    }
    let mut errors = 0usize;
    for audit in &audits {
        let unsound: Vec<_> = audit.errors().collect();
        let warnings: Vec<_> = audit.warnings().collect();
        println!(
            "table `{}` vs {}: {} pairs over {} states{} — {} unsound, {} conservative",
            audit.table,
            audit.spec_name,
            audit.findings.len(),
            audit.states_explored,
            if audit.truncated > 0 {
                " (state sample TRUNCATED)"
            } else {
                ""
            },
            unsound.len(),
            warnings.len(),
        );
        for f in &unsound {
            match &f.class {
                PairClass::Unsound(cx) => {
                    println!("  ERROR unsound entry ({}, {}): {}", f.p, f.q, cx)
                }
                _ => println!("  ERROR {} entry ({}, {})", f.class.label(), f.p, f.q),
            }
        }
        for f in &warnings {
            if let PairClass::Conservative {
                commuting_states,
                total_states,
            } = &f.class
            {
                println!(
                    "  warning: ({}, {}) rejected by the table but commutes in {}/{} states",
                    f.p, f.q, commuting_states, total_states
                );
            }
        }
        errors += unsound.len();
    }
    println!();
    match lock_order_report() {
        Ok(report) => {
            println!(
                "lock-order audit: {} locks, {} acquisition edges",
                report.locks.len(),
                report.edges.len()
            );
            if report.is_clean() {
                println!("  derived order: {}", report.order.join(" < "));
            } else {
                for cycle in &report.cycles {
                    println!("  ERROR lock-order cycle: {}", cycle.join(" -> "));
                    errors += 1;
                }
            }
        }
        // Not an error: the lint still gates the tables when the binary
        // runs from an installed artifact without the source tree.
        Err(e) => println!("lock-order audit: skipped (sources unavailable: {e})"),
    }
    match nondet_findings() {
        Ok(findings) => {
            println!("nondeterminism scan: {} finding(s)", findings.len());
            for f in &findings {
                println!("  ERROR {f}");
            }
            errors += findings.len();
        }
        Err(e) => println!("nondeterminism scan: skipped (sources unavailable: {e})"),
    }
    if synth {
        println!();
        errors += run_synth_lint(demo_unsound, json_path);
    }
    if errors > 0 {
        println!("\nlint: {errors} error(s)");
        1
    } else {
        println!("\nlint: clean");
        0
    }
}

fn yesno(b: bool) -> String {
    if b { "yes" } else { "no" }.into()
}
