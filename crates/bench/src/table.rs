//! Minimal fixed-width table rendering for experiment output.

use std::fmt;

/// An ASCII table: a header row plus data rows, auto-sized columns.
///
/// # Example
///
/// ```
/// use atomicity_bench::Table;
/// let mut t = Table::new(vec!["engine", "txn/s"]);
/// t.row(vec!["dynamic".into(), "1234".into()]);
/// let s = t.to_string();
/// assert!(s.contains("dynamic"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: Vec<&str>) -> Self {
        Table {
            header: header.into_iter().map(str::to_owned).collect(),
            rows: Vec::new(),
            title: None,
        }
    }

    /// Sets a title line printed above the table.
    pub fn with_title(mut self, title: impl Into<String>) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Appends a data row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics if the row arity differs from the header's.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        if let Some(title) = &self.title {
            writeln!(f, "{title}")?;
        }
        let print_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for i in 0..cols {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{:<width$}", cells[i], width = widths[i])?;
            }
            writeln!(f)
        };
        print_row(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a ratio as a percentage with 1 decimal.
pub fn pct(num: u64, den: u64) -> String {
    if den == 0 {
        "-".into()
    } else {
        format!("{:.1}%", 100.0 * num as f64 / den as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "longer"]).with_title("T");
        t.row(vec!["xxxxxx".into(), "1".into()]);
        t.row(vec!["y".into(), "22".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "T");
        assert!(lines[1].starts_with("a     "));
        assert!(lines[2].starts_with("---"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn format_helpers() {
        assert_eq!(f1(1.25), "1.2");
        assert_eq!(pct(1, 4), "25.0%");
        assert_eq!(pct(0, 0), "-");
    }
}
