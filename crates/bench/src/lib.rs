//! Workload generators and the experiment harness.
//!
//! Each experiment module reproduces one comparison from the paper (see
//! `DESIGN.md` §3 for the index):
//!
//! | Exp | Paper source | Module |
//! |-----|--------------|--------|
//! | E1  | §5.1 bank account vs. locking | [`workloads::bank`] |
//! | E2  | §5.1 FIFO queue / Figure 5-1 scheduler model | [`workloads::queue`] |
//! | E3  | §4.2.3 long read-only audits | [`workloads::audit`] |
//! | E4  | §4.3.3 Lamport's banking problem | [`workloads::lamport`] |
//! | E5  | §4.2.3 incomparability of the three properties | [`enumerate`] |
//! | E6  | §1/§3 online recoverability under crashes | [`workloads::recovery`] |
//! | E7  | §4.2.3 timestamp (clock-skew) sensitivity | [`workloads::skew`] |
//! | E8  | recorder contention under threaded stress | [`workloads::stress`] |
//! | E10 | observability: latency percentiles + abort taxonomy | [`report`] |
//! | E12 | deterministic simulation: seed sweep + failure shrinking | [`workloads::e12`] |
//! | E14 | contended hot-path admission: locked vs fast-path vs batched | [`workloads::e14`] |
//! | E15 | partitioned scale-out + dependency-logged parallel recovery | [`workloads::e15`] |
//! | E16 | online streaming certifier: equality, memory bound, overhead | [`workloads::e16`] |
//!
//! The `experiments` binary prints every table:
//!
//! ```text
//! cargo run -p atomicity-bench --bin experiments --release -- all
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engines;
pub mod enumerate;
pub mod explore;
pub mod histfile;
pub mod report;
pub mod table;
pub mod workloads;

pub use engines::{
    map_commutativity, synthesized_suite, AdmissionPath, CertifyMode, Engine, EngineBuilder,
    EngineHandle,
};
pub use table::Table;
