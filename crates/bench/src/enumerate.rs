//! E5 — exhaustive enumeration: how the three properties relate (§4.2.3,
//! §4.3.3).
//!
//! The paper proves each property optimal yet notes they are pairwise
//! *incomparable* ("optimal does not mean best"), and that hybrid, given
//! its extra information, admits every dynamic-atomic behavior and more.
//! This module makes those claims countable: it enumerates **every**
//! well-formed interleaving (with every possible recorded result) of a
//! small set of transaction programs against one object, and classifies
//! each history under
//!
//! - plain atomicity,
//! - dynamic atomicity,
//! - static atomicity with the natural online timestamps (start order),
//! - hybrid atomicity with the natural online timestamps (commit order).
//!
//! The counts exhibit: `dynamic ⊂ hybrid ⊆ atomic`, and the mutual
//! non-containment of dynamic and static.

use atomicity_spec::atomicity::{is_atomic, is_dynamic_atomic, is_hybrid_atomic, is_static_atomic};
use atomicity_spec::{
    ActivityId, Event, EventKind, History, ObjectId, Operation, SystemSpec, Value,
};
use std::collections::BTreeMap;

/// A transaction program for the enumerator: operations plus, per
/// operation, the candidate recorded results to enumerate.
#[derive(Debug, Clone)]
pub struct Program {
    /// Operations in program order, each with its candidate results.
    pub steps: Vec<(Operation, Vec<Value>)>,
}

impl Program {
    /// Creates a program.
    pub fn new(steps: Vec<(Operation, Vec<Value>)>) -> Self {
        Program { steps }
    }
}

/// Aggregate classification counts over the enumerated histories.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EnumerationSummary {
    /// Well-formed histories enumerated.
    pub total: u64,
    /// Atomic (perm serializable in some order).
    pub atomic: u64,
    /// Dynamic atomic.
    pub dynamic: u64,
    /// Static atomic under start-order timestamps.
    pub static_start: u64,
    /// Hybrid atomic under commit-order timestamps.
    pub hybrid_commit: u64,
    /// Dynamic but not static — dynamic admits it, start-order timestamps
    /// reject it.
    pub dynamic_not_static: u64,
    /// Static but not dynamic — the other direction of incomparability.
    pub static_not_dynamic: u64,
    /// Hybrid but not dynamic — hybrid's strict advantage.
    pub hybrid_not_dynamic: u64,
    /// Dynamic but not hybrid — must be 0 (commit order is always
    /// consistent with `precedes`).
    pub dynamic_not_hybrid: u64,
    /// Producible by commutativity-table locking (Schwarz & Spector):
    /// every operation invoked while a conflicting operation's holder is
    /// still incomplete is refused, so only table-compatible overlaps
    /// appear. Always ⊆ dynamic.
    pub commut_lock_producible: u64,
    /// Producible by strict two-phase read/write locking (read-only
    /// operations share, everything else excludes). Always ⊆ the
    /// commutativity-locking count for tables refining r/w.
    pub rw_lock_producible: u64,
}

/// Whether `h` could be produced by a strict operation-locking protocol
/// with the given commutativity table: every operation must commute (per
/// the table) with every operation invoked earlier by a still-incomplete
/// other transaction.
pub fn lock_producible(h: &History, commutes: impl Fn(&Operation, &Operation) -> bool) -> bool {
    let mut held: BTreeMap<ActivityId, Vec<Operation>> = BTreeMap::new();
    for e in h.iter() {
        match &e.kind {
            EventKind::Invoke(q) => {
                for (owner, ops) in &held {
                    if *owner != e.activity && ops.iter().any(|p| !commutes(p, q)) {
                        return false;
                    }
                }
                held.entry(e.activity).or_default().push(q.clone());
            }
            EventKind::Commit | EventKind::CommitTs(_) | EventKind::Abort => {
                held.remove(&e.activity);
            }
            _ => {}
        }
    }
    true
}

/// Whether `h` could be produced under strict two-phase read/write
/// locking: operations classified only by
/// [`atomicity_spec::ObjectSpec::op_is_read_only`];
/// readers share, writers exclude.
pub fn rw_lock_producible(h: &History, spec: &SystemSpec, x: ObjectId) -> bool {
    let Some(object_spec) = spec.get(x) else {
        return false;
    };
    lock_producible(h, |p, q| {
        object_spec.op_is_read_only(p) && object_spec.op_is_read_only(q)
    })
}

/// Enumerates every interleaving and result assignment of `programs`
/// against the single object `x` specified in `spec`, and classifies each.
pub fn enumerate_histories(
    x: ObjectId,
    spec: &SystemSpec,
    programs: &[Program],
) -> EnumerationSummary {
    let mut summary = EnumerationSummary::default();
    // Each activity contributes a stream: Invoke, Respond, …, Commit.
    // `positions[i]` walks activity i's stream.
    let streams: Vec<usize> = programs.iter().map(|p| p.steps.len() * 2 + 1).collect();
    let mut order: Vec<usize> = Vec::new();
    interleave(
        &streams,
        &mut vec![0; programs.len()],
        &mut order,
        &mut |ord| {
            enumerate_values(x, spec, programs, ord, &mut summary);
        },
    );
    summary
}

/// Recursively enumerates interleavings of per-activity streams.
fn interleave(
    streams: &[usize],
    taken: &mut Vec<usize>,
    order: &mut Vec<usize>,
    visit: &mut impl FnMut(&[usize]),
) {
    if order.len() == streams.iter().sum::<usize>() {
        visit(order);
        return;
    }
    for (i, &len) in streams.iter().enumerate() {
        if taken[i] < len {
            taken[i] += 1;
            order.push(i);
            interleave(streams, taken, order, visit);
            order.pop();
            taken[i] -= 1;
        }
    }
}

/// For one interleaving, enumerates every assignment of candidate results
/// and classifies the resulting histories.
fn enumerate_values(
    x: ObjectId,
    spec: &SystemSpec,
    programs: &[Program],
    order: &[usize],
    summary: &mut EnumerationSummary,
) {
    // Choice indices per (activity, step).
    let mut choices: Vec<Vec<usize>> = programs.iter().map(|p| vec![0; p.steps.len()]).collect();
    loop {
        classify(x, spec, programs, order, &choices, summary);
        // Odometer increment over all choice positions.
        let mut done = true;
        'outer: for (a, p) in programs.iter().enumerate() {
            for (s, (_, candidates)) in p.steps.iter().enumerate() {
                if choices[a][s] + 1 < candidates.len() {
                    choices[a][s] += 1;
                    done = false;
                    break 'outer;
                }
                choices[a][s] = 0;
            }
        }
        if done {
            break;
        }
    }
}

fn classify(
    x: ObjectId,
    spec: &SystemSpec,
    programs: &[Program],
    order: &[usize],
    choices: &[Vec<usize>],
    summary: &mut EnumerationSummary,
) {
    // Materialize the basic-model history.
    let mut step_of = vec![0usize; programs.len()];
    let mut events = Vec::with_capacity(order.len());
    for &a in order {
        let activity = ActivityId::new(a as u32 + 1);
        let program = &programs[a];
        let pos = step_of[a];
        step_of[a] += 1;
        let kind = if pos == program.steps.len() * 2 {
            EventKind::Commit
        } else if pos.is_multiple_of(2) {
            EventKind::Invoke(program.steps[pos / 2].0.clone())
        } else {
            let (_, candidates) = &program.steps[pos / 2];
            EventKind::Respond(candidates[choices[a][pos / 2]].clone())
        };
        events.push(Event {
            activity,
            object: x,
            kind,
        });
    }
    let h = History::from_events(events);

    summary.total += 1;
    let atomic = is_atomic(&h, spec);
    let dynamic = atomic && is_dynamic_atomic(&h, spec);
    let static_start = {
        let hs = with_start_order_timestamps(&h, x);
        is_static_atomic(&hs, spec)
    };
    let hybrid_commit = {
        let hh = with_commit_order_timestamps(&h);
        is_hybrid_atomic(&hh, spec)
    };
    if atomic {
        summary.atomic += 1;
    }
    if dynamic {
        summary.dynamic += 1;
    }
    if static_start {
        summary.static_start += 1;
    }
    if hybrid_commit {
        summary.hybrid_commit += 1;
    }
    if dynamic && !static_start {
        summary.dynamic_not_static += 1;
    }
    if static_start && !dynamic {
        summary.static_not_dynamic += 1;
    }
    if hybrid_commit && !dynamic {
        summary.hybrid_not_dynamic += 1;
    }
    if dynamic && !hybrid_commit {
        summary.dynamic_not_hybrid += 1;
    }
    if lock_producible(&h, atomicity_baselines::set_commutativity) && dynamic {
        summary.commut_lock_producible += 1;
    }
    if rw_lock_producible(&h, spec, x) && dynamic {
        summary.rw_lock_producible += 1;
    }
}

/// Adds `initiate(t)` events (timestamps in start order — the natural
/// online assignment) before each activity's first invocation.
pub fn with_start_order_timestamps(h: &History, x: ObjectId) -> History {
    let mut seen: Vec<ActivityId> = Vec::new();
    for e in h.iter() {
        if e.is_invoke() && !seen.contains(&e.activity) {
            seen.push(e.activity);
        }
    }
    let ts_of = |a: ActivityId| -> u64 {
        (seen.iter().position(|&s| s == a).unwrap_or(usize::MAX - 1) + 1) as u64
    };
    let mut out = History::new();
    let mut initiated: Vec<ActivityId> = Vec::new();
    for e in h.iter() {
        if e.is_invoke() && !initiated.contains(&e.activity) {
            initiated.push(e.activity);
            out.push(Event::initiate(e.activity, x, ts_of(e.activity)));
        }
        out.push(e.clone());
    }
    out
}

/// Replaces each plain commit with a timestamped commit, timestamps in
/// commit order (the natural online assignment for hybrid updates).
pub fn with_commit_order_timestamps(h: &History) -> History {
    let mut next_ts = 1u64;
    let mut assigned: std::collections::BTreeMap<ActivityId, u64> = Default::default();
    History::from_events(h.iter().map(|e| match e.kind {
        EventKind::Commit => {
            let ts = *assigned.entry(e.activity).or_insert_with(|| {
                let t = next_ts;
                next_ts += 1;
                t
            });
            Event::commit_ts(e.activity, e.object, ts)
        }
        _ => e.clone(),
    }))
}

/// The standard E5 scenario: over one integer set, `a` runs
/// `member(3)` (both results enumerated), `b` runs `insert(3)`, and `c`
/// runs `member(3)` — a three-party version of the paper's §4.1/§4.2
/// examples.
pub fn standard_programs() -> Vec<Program> {
    let member = atomicity_spec::op("member", [3]);
    let insert = atomicity_spec::op("insert", [3]);
    vec![
        Program::new(vec![(
            member.clone(),
            vec![Value::from(false), Value::from(true)],
        )]),
        Program::new(vec![(insert, vec![Value::ok()])]),
        Program::new(vec![(member, vec![Value::from(false), Value::from(true)])]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomicity_spec::specs::IntSetSpec;
    use atomicity_spec::{op, paper};

    fn run_standard() -> EnumerationSummary {
        let x = ObjectId::new(1);
        let spec = SystemSpec::new().with_object(x, IntSetSpec::new());
        enumerate_histories(x, &spec, &standard_programs())
    }

    #[test]
    fn containments_hold() {
        let s = run_standard();
        assert!(s.total > 0);
        // dynamic ⊆ atomic, and strictly here.
        assert!(s.dynamic < s.atomic);
        // dynamic ⊆ hybrid(commit order): never dynamic-but-not-hybrid.
        assert_eq!(s.dynamic_not_hybrid, 0);
        assert!(s.hybrid_not_dynamic > 0, "hybrid strictly beats dynamic");
        // static and dynamic are incomparable: witnesses both ways.
        assert!(s.dynamic_not_static > 0);
        assert!(s.static_not_dynamic > 0);
        // The §5.1 suboptimality chain, quantified exhaustively:
        // 2PL ⊆ commutativity locking ⊆ dynamic, each strictly.
        assert!(s.rw_lock_producible <= s.commut_lock_producible);
        assert!(s.commut_lock_producible <= s.dynamic);
        assert!(s.rw_lock_producible < s.dynamic, "dynamic strictly wins");
    }

    #[test]
    fn lock_producibility_on_paper_examples() {
        use atomicity_baselines::{bank_commutativity, queue_commutativity};
        // §5.1: the concurrent-withdraw history is dynamic atomic but NOT
        // producible by the commutativity-locking protocol.
        let h = paper::bank_concurrent_withdraws();
        assert!(is_dynamic_atomic(&h, &paper::bank_system()));
        assert!(!lock_producible(&h, bank_commutativity));
        // §5.1: the interleaved-enqueue queue history likewise.
        let h = paper::queue_interleaved_enqueues();
        assert!(!lock_producible(&h, queue_commutativity));
        // A serial history is always lock-producible.
        let h = paper::precedes_pair_example();
        assert!(lock_producible(&h, |_, _| false));
    }

    #[test]
    fn two_activity_counts_are_exact() {
        // a: member(3) (2 candidate results); b: insert(3). Streams of
        // length 3 each → C(6,3) = 20 interleavings × 2 results = 40.
        let x = ObjectId::new(1);
        let spec = SystemSpec::new().with_object(x, IntSetSpec::new());
        let programs = vec![
            Program::new(vec![(
                op("member", [3]),
                vec![Value::from(false), Value::from(true)],
            )]),
            Program::new(vec![(op("insert", [3]), vec![Value::ok()])]),
        ];
        let s = enumerate_histories(x, &spec, &programs);
        assert_eq!(s.total, 40);
        // Every history here is serializable in some order: member→false
        // serializes before the insert, member→true after... EXCEPT where
        // member(3)→true completes before insert even begins? Ordering of
        // activities is free (no precedes constraint) as long as results
        // match one serial order, so all 40 are atomic iff each result
        // matches some order — true for both candidate results.
        assert_eq!(s.atomic, 40);
        assert!(s.dynamic < s.atomic, "commit timing must constrain some");
    }

    #[test]
    fn paper_witnesses_match_enumeration_semantics() {
        // The paper's atomic-but-not-dynamic example must classify the
        // same way via the enumeration helpers.
        let h = paper::atomic_not_dynamic();
        let spec = paper::set_system();
        assert!(is_atomic(&h, &spec));
        assert!(!is_dynamic_atomic(&h, &spec));
        // With commit-order hybrid timestamps, it becomes hybrid atomic?
        // commit order is b, a, c; serializable in b-a-c? member(3)→false
        // by a after b's insert commit — not acceptable in that order, so
        // still rejected.
        let hh = with_commit_order_timestamps(&h);
        assert!(!is_hybrid_atomic(&hh, &spec));
    }

    #[test]
    fn timestamp_decorators_preserve_basic_events() {
        let h = paper::precedes_pair_example();
        let hs = with_start_order_timestamps(&h, paper::X);
        assert_eq!(hs.len(), h.len() + 2); // one initiate per activity
        let hc = with_commit_order_timestamps(&h);
        assert_eq!(hc.len(), h.len());
        let ts = hc.timestamps();
        assert!(ts[&paper::A] < ts[&paper::B]);
    }
}
