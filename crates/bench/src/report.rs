//! E10 — the observability report: per-engine latency percentiles and
//! abort-reason breakdowns, serialized to JSON for CI artifacts.
//!
//! The report is derived from [`StressOutcome`]s collected with
//! [`StressParams::collect_metrics`] set, i.e. the E8 workload run with an
//! enabled [`atomicity_core::MetricsRegistry`]. Each engine contributes
//! invoke-latency, block-wait, and commit-path histograms plus the abort
//! taxonomy keyed by [`atomicity_core::AbortReason`] labels.

use crate::workloads::stress::{StressOutcome, StressParams};
use atomicity_core::HistogramSnapshot;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Version of the benchmark-report JSON layout. Bump when a committed
/// `BENCH_*.json` file changes shape incompatibly, so CI artifact
/// consumers can tell stale reports from current ones.
///
/// v3: [`ReportHeader::admission_path`] records which admission-path
/// variant(s) produced the report's rows.
///
/// v4: [`ReportHeader::topology`] records the execution topology the
/// rows were measured on — `"single-node"` for the in-process engines,
/// `"coordinator+Nsh"` for the partitioned service sweeps (E15).
pub const REPORT_SCHEMA_VERSION: u32 = 4;

/// The header every benchmark report (`BENCH_e10.json`, `BENCH_e14.json`)
/// carries, so an artifact is self-identifying: which experiment produced
/// it, under which schema, from which commit, through which admission
/// path.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReportHeader {
    /// Report layout version ([`REPORT_SCHEMA_VERSION`] at write time).
    pub schema_version: u32,
    /// Experiment tag (`"e10"`, `"e11"`, `"e14"`).
    pub experiment: String,
    /// Short git commit the binary was run from, or `"unknown"` outside a
    /// git checkout.
    pub git_commit: String,
    /// The admission-path variant the rows were driven through
    /// ([`crate::AdmissionPath::label`]), `"+"`-joined when the report
    /// sweeps several variants (E14). Empty in pre-v3 artifacts.
    #[serde(default)]
    pub admission_path: String,
    /// The execution topology: `"single-node"`, or
    /// `"coordinator+<N>sh"` with the shard count for the partitioned
    /// service (`"+"`-joined when a report sweeps shard counts). Empty
    /// in pre-v4 artifacts.
    #[serde(default)]
    pub topology: String,
}

impl ReportHeader {
    /// Builds a header for `experiment` on the classic locked admission
    /// path, stamping the current git commit.
    pub fn new(experiment: &str) -> Self {
        ReportHeader {
            schema_version: REPORT_SCHEMA_VERSION,
            experiment: experiment.to_string(),
            git_commit: current_git_commit(),
            admission_path: crate::AdmissionPath::Locked.label().to_string(),
            topology: "single-node".to_string(),
        }
    }

    /// Overrides the recorded admission path (e.g. the `"+"`-joined
    /// variant list of a sweep).
    pub fn with_admission_path(mut self, path: impl Into<String>) -> Self {
        self.admission_path = path.into();
        self
    }

    /// Overrides the recorded topology (e.g. the `"+"`-joined shard
    /// counts of an E15 scale-out sweep).
    pub fn with_topology(mut self, topology: impl Into<String>) -> Self {
        self.topology = topology.into();
        self
    }
}

/// The short hash of `HEAD`, or `"unknown"` when git is unavailable (CI
/// tarballs, vendored builds).
fn current_git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The percentile summary of one latency histogram. Values are
/// nanoseconds from log₂-bucketed samples: exact counts, bucket-midpoint
/// percentiles (see `DESIGN.md` §6).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Samples recorded.
    pub count: u64,
    /// Median latency (ns), if any samples were recorded.
    pub p50: Option<u64>,
    /// 95th-percentile latency (ns).
    pub p95: Option<u64>,
    /// 99th-percentile latency (ns).
    pub p99: Option<u64>,
    /// Mean latency (ns), exact (from the true sum, not the buckets).
    pub mean: Option<u64>,
}

impl LatencySummary {
    /// Summarizes a histogram snapshot.
    pub fn from_histogram(h: &HistogramSnapshot) -> Self {
        LatencySummary {
            count: h.count,
            p50: h.percentile(0.50),
            p95: h.percentile(0.95),
            p99: h.percentile(0.99),
            mean: h.mean(),
        }
    }
}

/// One engine's measured observability row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineReport {
    /// Engine label (table row key; see `Engine::label`).
    pub engine: String,
    /// Transactions committed by the workers.
    pub committed: u64,
    /// Transactions aborted by the workers.
    pub aborted: u64,
    /// Committed transactions per second.
    pub throughput: f64,
    /// Operations admitted across all objects.
    pub admissions: u64,
    /// Blocking rounds across all objects.
    pub blocks: u64,
    /// Invoke latency (operation entry to admission).
    pub invoke_ns: LatencySummary,
    /// Block-wait latency (first blocked round to admission).
    pub block_ns: LatencySummary,
    /// Commit-path latency (two-phase commit entry to completion).
    pub commit_ns: LatencySummary,
    /// Abort causes recorded at the error sites, keyed by
    /// [`atomicity_core::AbortReason`] label. Causes count error
    /// *occurrences*, so totals can exceed `aborted` (a transaction can
    /// hit several admission errors before its abort).
    pub abort_reasons: BTreeMap<String, u64>,
    /// Events captured by the trace ring.
    pub trace_events: u64,
}

impl EngineReport {
    /// Builds a row from a metrics-enabled stress outcome.
    ///
    /// # Panics
    ///
    /// Panics if the outcome was collected without
    /// [`StressParams::collect_metrics`].
    pub fn from_outcome(out: &StressOutcome) -> Self {
        let m = out
            .metrics
            .as_ref()
            .expect("E10 outcomes must be collected with collect_metrics");
        EngineReport {
            engine: out.engine.label().to_string(),
            committed: out.committed,
            aborted: out.aborted,
            throughput: out.throughput,
            admissions: out.stats.admissions,
            blocks: out.stats.blocks,
            invoke_ns: LatencySummary::from_histogram(&m.invoke_ns),
            block_ns: LatencySummary::from_histogram(&m.block_ns),
            commit_ns: LatencySummary::from_histogram(&m.commit_ns),
            abort_reasons: m.abort_reasons.clone(),
            trace_events: m.trace_written,
        }
    }
}

/// Workload shape recorded alongside the rows so a report is
/// self-describing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReportParams {
    /// Worker threads.
    pub threads: usize,
    /// Transactions per thread.
    pub txns_per_thread: usize,
    /// Operations per transaction.
    pub ops_per_txn: usize,
}

impl From<&StressParams> for ReportParams {
    fn from(p: &StressParams) -> Self {
        ReportParams {
            threads: p.threads,
            txns_per_thread: p.txns_per_thread,
            ops_per_txn: p.ops_per_txn,
        }
    }
}

/// The complete E10 report: one row per engine over the same workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObservabilityReport {
    /// Shared report header (`experiment: "e10"`).
    pub header: ReportHeader,
    /// The workload every row ran.
    pub params: ReportParams,
    /// Per-engine rows, in presentation order.
    pub engines: Vec<EngineReport>,
}

impl ObservabilityReport {
    /// Assembles the report from per-engine outcomes.
    pub fn new(params: &StressParams, outcomes: &[StressOutcome]) -> Self {
        ObservabilityReport {
            header: ReportHeader::new("e10"),
            params: params.into(),
            engines: outcomes.iter().map(EngineReport::from_outcome).collect(),
        }
    }

    /// Rows that admitted no operations — a wiring failure (the CI gate).
    pub fn silent_engines(&self) -> Vec<&str> {
        self.engines
            .iter()
            .filter(|e| e.admissions == 0)
            .map(|e| e.engine.as_str())
            .collect()
    }

    /// Pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("reports always serialize")
    }

    /// Parses a report back (CI artifact checks, tests).
    ///
    /// # Errors
    ///
    /// Propagates the parse error for malformed JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

/// One measured cell of the E14 contention sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ContentionRow {
    /// Engine label (see `Engine::label`).
    pub engine: String,
    /// Admission-path variant driven ([`crate::AdmissionPath::label`]).
    pub admission_path: String,
    /// Update workers.
    pub threads: usize,
    /// Update transactions committed.
    pub committed: u64,
    /// Update transactions aborted.
    pub aborted: u64,
    /// Read-only transactions committed (hybrid auditors).
    pub reads_committed: u64,
    /// Committed update transactions per second.
    pub throughput: f64,
    /// Operations admitted at the shared object.
    pub admissions: u64,
    /// Of those, admissions granted on a fast path (table hit or seqlock
    /// read).
    pub fast_admissions: u64,
    /// Blocking rounds at the shared object.
    pub blocks: u64,
}

impl ContentionRow {
    /// Builds a row from one E14 outcome.
    pub fn from_outcome(out: &crate::workloads::e14::E14Outcome) -> Self {
        ContentionRow {
            engine: out.engine.label().to_string(),
            admission_path: out.path.label().to_string(),
            threads: out.threads,
            committed: out.committed,
            aborted: out.aborted,
            reads_committed: out.reads_committed,
            throughput: out.throughput,
            admissions: out.stats.admissions,
            fast_admissions: out.stats.fast_admissions,
            blocks: out.stats.blocks,
        }
    }
}

/// Workload shape of an E14 run, recorded alongside the rows.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ContentionParams {
    /// Update transactions per worker.
    pub txns_per_thread: usize,
    /// Deposits per transaction.
    pub ops_per_txn: usize,
    /// Read-only auditor threads (hybrid cells).
    pub readers: usize,
}

impl From<&crate::workloads::e14::E14Params> for ContentionParams {
    fn from(p: &crate::workloads::e14::E14Params) -> Self {
        ContentionParams {
            txns_per_thread: p.txns_per_thread,
            ops_per_txn: p.ops_per_txn,
            readers: p.readers,
        }
    }
}

/// The complete E14 report: the admission-path sweep on one contended
/// object (`BENCH_e14.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ContentionReport {
    /// Shared report header (`experiment: "e14"`, the `"+"`-joined
    /// variant list in `admission_path`).
    pub header: ReportHeader,
    /// The workload every cell ran.
    pub params: ContentionParams,
    /// Per-cell rows (engine × path × thread count).
    pub rows: Vec<ContentionRow>,
}

impl ContentionReport {
    /// Assembles the report from the sweep's outcomes.
    pub fn new(
        params: &crate::workloads::e14::E14Params,
        outcomes: &[crate::workloads::e14::E14Outcome],
    ) -> Self {
        let mut paths: Vec<&str> = Vec::new();
        for o in outcomes {
            if !paths.contains(&o.path.label()) {
                paths.push(o.path.label());
            }
        }
        ContentionReport {
            header: ReportHeader::new("e14").with_admission_path(paths.join("+")),
            params: params.into(),
            rows: outcomes.iter().map(ContentionRow::from_outcome).collect(),
        }
    }

    /// The measured throughput of one cell, if it was run.
    pub fn throughput_at(&self, engine: &str, path: &str, threads: usize) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.engine == engine && r.admission_path == path && r.threads == threads)
            .map(|r| r.throughput)
    }

    /// The best throughput any admission path reached for `engine` at
    /// `threads` workers.
    pub fn best_throughput_at(&self, engine: &str, threads: usize) -> Option<f64> {
        self.rows
            .iter()
            .filter(|r| r.engine == engine && r.threads == threads)
            .map(|r| r.throughput)
            .fold(None, |acc, t| Some(acc.map_or(t, |a: f64| a.max(t))))
    }

    /// Pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("reports always serialize")
    }

    /// Parses a report back (CI artifact checks, tests).
    ///
    /// # Errors
    ///
    /// Propagates the parse error for malformed JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::stress::{run_stress, STRESS_ENGINES};

    fn params() -> StressParams {
        StressParams {
            threads: 2,
            txns_per_thread: 5,
            ops_per_txn: 2,
            collect_metrics: true,
            ..StressParams::default()
        }
    }

    #[test]
    fn report_covers_every_engine_and_roundtrips() {
        let p = params();
        let outcomes: Vec<StressOutcome> =
            STRESS_ENGINES.iter().map(|&e| run_stress(e, &p)).collect();
        let report = ObservabilityReport::new(&p, &outcomes);
        assert_eq!(report.engines.len(), STRESS_ENGINES.len());
        assert!(report.silent_engines().is_empty(), "no engine may be mute");
        for row in &report.engines {
            assert_eq!(row.admissions, 20, "{}", row.engine);
            assert_eq!(row.invoke_ns.count, 20, "{}", row.engine);
            assert!(row.invoke_ns.p50.is_some(), "{}", row.engine);
            assert!(row.commit_ns.count >= row.committed, "{}", row.engine);
            assert!(row.trace_events > 0, "{}", row.engine);
        }
        let back = ObservabilityReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back.engines.len(), report.engines.len());
        assert_eq!(back.engines[0].invoke_ns, report.engines[0].invoke_ns);
        assert_eq!(back.header, report.header);
        assert_eq!(back.header.experiment, "e10");
        assert_eq!(back.header.schema_version, REPORT_SCHEMA_VERSION);
        assert!(!back.header.git_commit.is_empty());
    }

    #[test]
    fn silent_engines_are_reported() {
        let p = params();
        let mut out = run_stress(STRESS_ENGINES[0], &p);
        out.stats.admissions = 0;
        let report = ObservabilityReport::new(&p, std::slice::from_ref(&out));
        assert_eq!(report.silent_engines(), vec!["dynamic"]);
    }
}
