//! JSON serialization of histories + system specifications, for the
//! `histcheck` tool.
//!
//! A history file pairs the event sequence with the specifications of the
//! participating objects, so the checkers can judge it:
//!
//! ```json
//! {
//!   "objects": { "1": "int_set", "2": { "bank_account": { "initial": 10 } } },
//!   "events": [
//!     { "activity": 1, "object": 1,
//!       "kind": { "Invoke": { "name": "insert", "args": [ { "Int": 3 } ] } } },
//!     { "activity": 1, "object": 1, "kind": { "Respond": "Unit" } },
//!     { "activity": 1, "object": 1, "kind": "Commit" }
//!   ]
//! }
//! ```

use atomicity_spec::specs::{
    BankAccountSpec, BoundedBufferSpec, CounterSpec, FifoQueueSpec, IntSetSpec, KvMapSpec,
    RegisterSpec, SemiqueueSpec,
};
use atomicity_spec::{Event, History, ObjectId, SystemSpec};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A named object specification, as written in history files.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum SpecKind {
    /// [`CounterSpec`].
    Counter,
    /// [`IntSetSpec`], empty initial state.
    IntSet,
    /// [`FifoQueueSpec`].
    FifoQueue,
    /// [`BankAccountSpec`] with an initial balance.
    BankAccount {
        /// Initial balance (defaults to 0).
        #[serde(default)]
        initial: i64,
    },
    /// [`KvMapSpec`] with initial entries.
    KvMap {
        /// Initial key → value entries.
        #[serde(default)]
        initial: BTreeMap<i64, i64>,
    },
    /// [`RegisterSpec`] with an initial value.
    Register {
        /// Initial value (defaults to 0).
        #[serde(default)]
        initial: i64,
    },
    /// [`SemiqueueSpec`].
    Semiqueue,
    /// [`BoundedBufferSpec`] with a capacity.
    BoundedBuffer {
        /// Capacity.
        capacity: u32,
    },
}

impl SpecKind {
    /// Installs this specification for `object` in `system`.
    pub fn install(&self, system: SystemSpec, object: ObjectId) -> SystemSpec {
        match self {
            SpecKind::Counter => system.with_object(object, CounterSpec::new()),
            SpecKind::IntSet => system.with_object(object, IntSetSpec::new()),
            SpecKind::FifoQueue => system.with_object(object, FifoQueueSpec::new()),
            SpecKind::BankAccount { initial } => {
                system.with_object(object, BankAccountSpec::with_initial(*initial))
            }
            SpecKind::KvMap { initial } => system.with_object(
                object,
                KvMapSpec::with_initial(initial.iter().map(|(&k, &v)| (k, v))),
            ),
            SpecKind::Register { initial } => {
                system.with_object(object, RegisterSpec::with_initial(*initial))
            }
            SpecKind::Semiqueue => system.with_object(object, SemiqueueSpec::new()),
            SpecKind::BoundedBuffer { capacity } => {
                system.with_object(object, BoundedBufferSpec::with_capacity(*capacity))
            }
        }
    }
}

/// A history file: object specifications + the event sequence.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HistoryFile {
    /// Object id (as a decimal string key) → specification.
    pub objects: BTreeMap<String, SpecKind>,
    /// The events, in computation order.
    pub events: Vec<Event>,
}

impl HistoryFile {
    /// Builds the file from in-memory pieces.
    pub fn new(objects: impl IntoIterator<Item = (ObjectId, SpecKind)>, h: &History) -> Self {
        HistoryFile {
            objects: objects
                .into_iter()
                .map(|(id, k)| (id.raw().to_string(), k))
                .collect(),
            events: h.iter().cloned().collect(),
        }
    }

    /// The history contained in the file.
    pub fn history(&self) -> History {
        History::from_events(self.events.iter().cloned())
    }

    /// The system specification contained in the file.
    ///
    /// # Errors
    ///
    /// Returns the offending key if an object key is not a decimal id.
    pub fn system(&self) -> Result<SystemSpec, String> {
        let mut system = SystemSpec::new();
        for (key, kind) in &self.objects {
            let raw: u32 = key
                .parse()
                .map_err(|_| format!("object key {key:?} is not a number"))?;
            system = kind.install(system, ObjectId::new(raw));
        }
        Ok(system)
    }

    /// Parses a history file from JSON.
    ///
    /// # Errors
    ///
    /// Propagates JSON syntax/shape errors.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Serializes to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("history files always serialize")
    }
}

/// A ready-made example file: the paper's §3 perm example over an
/// integer set.
pub fn example_file() -> HistoryFile {
    HistoryFile::new(
        [(atomicity_spec::paper::X, SpecKind::IntSet)],
        &atomicity_spec::paper::perm_example(),
    )
}

/// The canonical example files shipped under `examples/histories/`, as
/// (file name, contents) pairs.
pub fn canonical_examples() -> Vec<(&'static str, HistoryFile)> {
    use atomicity_spec::paper;
    vec![
        ("perm_example.json", example_file()),
        (
            "bank_concurrent_withdraws.json",
            HistoryFile::new(
                [(paper::Y, SpecKind::BankAccount { initial: 0 })],
                &paper::bank_concurrent_withdraws(),
            ),
        ),
        (
            "queue_interleaved.json",
            HistoryFile::new(
                [(paper::X, SpecKind::FifoQueue)],
                &paper::queue_interleaved_enqueues(),
            ),
        ),
        (
            "atomic_not_dynamic.json",
            HistoryFile::new([(paper::X, SpecKind::IntSet)], &paper::atomic_not_dynamic()),
        ),
        (
            "hybrid_example.json",
            HistoryFile::new([(paper::X, SpecKind::IntSet)], &paper::hybrid_example()),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomicity_spec::atomicity::is_atomic;
    use atomicity_spec::paper;

    #[test]
    fn round_trip_preserves_history_and_verdict() {
        let file = example_file();
        let json = file.to_json();
        let back = HistoryFile::from_json(&json).unwrap();
        let h = back.history();
        assert_eq!(h, paper::perm_example());
        let system = back.system().unwrap();
        assert!(is_atomic(&h, &system));
    }

    #[test]
    fn all_spec_kinds_install() {
        let kinds = vec![
            SpecKind::Counter,
            SpecKind::IntSet,
            SpecKind::FifoQueue,
            SpecKind::BankAccount { initial: 5 },
            SpecKind::KvMap {
                initial: [(1, 2)].into_iter().collect(),
            },
            SpecKind::Register { initial: 7 },
            SpecKind::Semiqueue,
            SpecKind::BoundedBuffer { capacity: 3 },
        ];
        let mut system = SystemSpec::new();
        for (i, k) in kinds.iter().enumerate() {
            system = k.install(system, ObjectId::new(i as u32 + 1));
        }
        assert_eq!(system.object_ids().count(), kinds.len());
        // Serde round-trip of the kinds themselves.
        for k in kinds {
            let s = serde_json::to_string(&k).unwrap();
            let back: SpecKind = serde_json::from_str(&s).unwrap();
            assert_eq!(k, back);
        }
    }

    #[test]
    fn defaults_apply() {
        let k: SpecKind = serde_json::from_str(r#"{"bank_account": {}}"#).unwrap();
        assert_eq!(k, SpecKind::BankAccount { initial: 0 });
        let k: SpecKind = serde_json::from_str(r#""int_set""#).unwrap();
        assert_eq!(k, SpecKind::IntSet);
    }

    #[test]
    fn bad_object_keys_are_reported() {
        let mut file = example_file();
        let kind = file.objects.values().next().unwrap().clone();
        file.objects.insert("not-a-number".into(), kind);
        assert!(file.system().is_err());
    }
}
