//! Exhaustive schedule exploration of the engines ("model checking").
//!
//! Using the engines' non-blocking
//! [`atomicity_core::AtomicObject::try_invoke`],
//! every interleaving (at operation granularity) of a set of scripted
//! transactions is enumerated deterministically; at every completed
//! schedule the recorded history is checked against the protocol's local
//! atomicity property. Schedules where every live transaction is blocked
//! ("wedged") are resolved by aborting the stragglers — the property must
//! survive that too.
//!
//! This complements the randomized property tests: not a sample of
//! schedules, but *all* of them for the given scripts.

use crate::engines::Engine;
use atomicity_core::{Admission, Protocol, Txn, TxnError, TxnManager};
use atomicity_spec::atomicity::{is_dynamic_atomic, is_hybrid_atomic, is_static_atomic};
use atomicity_spec::well_formed::WellFormedness;
use atomicity_spec::{ObjectId, Operation, SequentialSpec, SystemSpec};
use std::sync::Arc;

/// One scripted transaction: operations tagged by object index, plus
/// whether the transaction is read-only (an audit).
#[derive(Debug, Clone)]
pub struct Script {
    steps: Vec<(usize, Operation)>,
    read_only: bool,
}

impl Script {
    /// An update transaction.
    pub fn update(steps: Vec<(usize, Operation)>) -> Self {
        Script {
            steps,
            read_only: false,
        }
    }

    /// A read-only (audit) transaction.
    pub fn audit(steps: Vec<(usize, Operation)>) -> Self {
        Script {
            steps,
            read_only: true,
        }
    }

    /// Number of schedule actions this script contributes (ops + commit).
    pub fn actions(&self) -> usize {
        self.steps.len() + 1
    }
}

/// A factory building a fresh system under test (manager + objects).
pub type Factory = dyn Fn() -> (TxnManager, Vec<Arc<dyn Admission>>);

/// Aggregate outcomes of one exploration.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ExploreStats {
    /// Completed schedules verified.
    pub leaves: u64,
    /// Schedule edges where a transaction's next step would block.
    pub blocked_edges: u64,
    /// Schedules that wedged (every live transaction blocked) and were
    /// resolved by aborting the stragglers.
    pub stuck: u64,
    /// Steps that aborted with a must-abort error along some path.
    pub forced_aborts: u64,
}

#[allow(clippy::type_complexity)]
fn replay(
    factory: &Factory,
    scripts: &[Script],
    prefix: &[usize],
    stats: &mut ExploreStats,
) -> Option<(
    TxnManager,
    Vec<Arc<dyn Admission>>,
    Vec<Option<Txn>>,
    Vec<usize>,
)> {
    let (mgr, objects) = factory();
    let mut txns: Vec<Option<Txn>> = scripts
        .iter()
        .map(|s| {
            Some(if s.read_only {
                mgr.begin_read_only()
            } else {
                mgr.begin()
            })
        })
        .collect();
    let mut next: Vec<usize> = vec![0; scripts.len()];
    for &c in prefix {
        let script = &scripts[c];
        if next[c] < script.steps.len() {
            let (obj, operation) = &script.steps[next[c]];
            let txn = txns[c].as_ref().expect("step on finished txn");
            match objects[*obj].try_invoke(txn, operation.clone()) {
                Ok(_) => next[c] += 1,
                Err(TxnError::WouldBlock { .. }) => return None,
                Err(e) if e.must_abort() => {
                    stats.forced_aborts += 1;
                    mgr.abort(txns[c].take().expect("live txn"));
                    next[c] = script.steps.len() + 1; // finished (aborted)
                }
                Err(e) => panic!("unexpected engine error: {e}"),
            }
        } else if next[c] == script.steps.len() {
            mgr.commit(txns[c].take().expect("live txn"))
                .expect("commit");
            next[c] += 1;
        } else {
            panic!("schedule step on completed transaction");
        }
    }
    Some((mgr, objects, txns, next))
}

fn unfinished(scripts: &[Script], next: &[usize], c: usize) -> bool {
    next[c] <= scripts[c].steps.len()
}

fn explore_rec(
    factory: &Factory,
    scripts: &[Script],
    verify: &dyn Fn(&TxnManager),
    prefix: &mut Vec<usize>,
    stats: &mut ExploreStats,
) {
    let Some((mgr, _objects, mut txns, next)) = replay(factory, scripts, prefix, stats) else {
        unreachable!("explore only recurses into feasible prefixes");
    };
    let candidates: Vec<usize> = (0..scripts.len())
        .filter(|&c| unfinished(scripts, &next, c))
        .collect();
    if candidates.is_empty() {
        verify(&mgr);
        stats.leaves += 1;
        return;
    }
    let mut progressed = false;
    for &c in &candidates {
        prefix.push(c);
        let feasible = replay(factory, scripts, prefix, &mut ExploreStats::default()).is_some();
        if feasible {
            progressed = true;
            explore_rec(factory, scripts, verify, prefix, stats);
        } else {
            stats.blocked_edges += 1;
        }
        prefix.pop();
    }
    if !progressed {
        // Every live transaction is blocked: resolve by aborting them; the
        // history must still satisfy the property (online recoverability).
        for c in candidates {
            if let Some(txn) = txns[c].take() {
                mgr.abort(txn);
            }
        }
        verify(&mgr);
        stats.stuck += 1;
    }
}

/// Explores every schedule of `scripts` against systems built by
/// `factory`, calling `verify` at every completed or wedged schedule.
pub fn explore(
    factory: &Factory,
    scripts: &[Script],
    verify: &dyn Fn(&TxnManager),
) -> ExploreStats {
    let mut stats = ExploreStats::default();
    explore_rec(factory, scripts, verify, &mut Vec::new(), &mut stats);
    stats
}

/// A factory building one engine-appropriate object per spec, under the
/// engine's protocol.
pub fn engine_factory<S: SequentialSpec + Clone>(engine: Engine, specs: Vec<S>) -> Box<Factory> {
    Box::new(move || {
        let mgr = engine.manager();
        let objects = specs
            .iter()
            .enumerate()
            .map(|(i, s)| {
                crate::engines::build_object(engine, ObjectId::new(i as u32 + 1), s.clone(), &mgr)
            })
            .collect();
        (mgr, objects)
    })
}

/// A verifier asserting the protocol's well-formedness + local atomicity
/// property on the manager's recorded history.
pub fn property_verifier(protocol: Protocol, spec: SystemSpec) -> Box<dyn Fn(&TxnManager)> {
    Box::new(move |mgr| {
        let h = mgr.history();
        let ok = match protocol {
            Protocol::Dynamic => {
                WellFormedness::Basic.is_well_formed(&h) && is_dynamic_atomic(&h, &spec)
            }
            Protocol::Static => {
                WellFormedness::Static.is_well_formed(&h) && is_static_atomic(&h, &spec)
            }
            Protocol::Hybrid => {
                WellFormedness::Hybrid.is_well_formed(&h) && is_hybrid_atomic(&h, &spec)
            }
        };
        assert!(ok, "{protocol:?} property violated by history:\n{h}");
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomicity_spec::op;
    use atomicity_spec::specs::BankAccountSpec;

    #[test]
    fn exhaustive_counts_are_exact() {
        // 2 scripts × 2 actions: 4!/(2!2!) = 6 schedules, no blocking for
        // commuting deposits.
        let factory = engine_factory(Engine::Dynamic, vec![BankAccountSpec::new()]);
        let scripts = vec![
            Script::update(vec![(0, op("deposit", [1]))]),
            Script::update(vec![(0, op("deposit", [2]))]),
        ];
        let spec = SystemSpec::new().with_object(ObjectId::new(1), BankAccountSpec::new());
        let stats = explore(
            &factory,
            &scripts,
            &property_verifier(Protocol::Dynamic, spec),
        );
        assert_eq!(stats.leaves, 6);
        assert_eq!(stats.blocked_edges, 0);
        assert_eq!(stats.stuck, 0);
    }

    #[test]
    fn script_action_counts() {
        let s = Script::update(vec![(0, op("deposit", [1])), (0, op("deposit", [2]))]);
        assert_eq!(s.actions(), 3);
        let a = Script::audit(vec![(0, op("balance", [] as [i64; 0]))]);
        assert_eq!(a.actions(), 2);
    }
}
