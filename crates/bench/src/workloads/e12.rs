//! E12 — the deterministic-simulation seed sweep.
//!
//! Thousands of seeds, each a full-fault-matrix run of the simulated
//! cluster (latency jitter, loss, bounded duplication, reordering,
//! partition windows, MTTF crashes recovering through node recovery),
//! with the standard invariant checkers and the *streaming*
//! hybrid-atomicity certifier running at checkpoints inside the loop
//! (each checkpoint feeds the online monitor only the newly recorded
//! events — no per-checkpoint re-certification). Any violating seed
//! is **shrunk**: fault classes are greedily disabled and the workload
//! halved while the violation persists, leaving a minimal reproducer —
//! a seed plus a fault plan — that replays bit-identically forever.
//!
//! The per-seed fault *parameters* (probabilities, partition windows,
//! MTTF means) are drawn from a dedicated plan stream split off the
//! seed, and every draw happens whether or not its fault class is
//! enabled — so disabling one class during shrinking never shifts the
//! parameters of another.

use crate::report::ReportHeader;
use atomicity_sim::{
    Cluster, Endpoint, MttfConfig, NodeId, OnlineCertifierCheck, PartitionWindow, SimConfig,
    SimRng, SimStats, StandardChecker, TransferClient,
};
use serde::{Deserialize, Serialize};

/// Which fault classes a run enables, and how much workload it carries.
/// This is the unit of shrinking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Message loss.
    pub drop: bool,
    /// Bounded message duplication.
    pub duplication: bool,
    /// Reorder boosts.
    pub reorder: bool,
    /// Partition windows.
    pub partitions: bool,
    /// MTTF node crashes (recovering mid-run).
    pub mttf: bool,
    /// Transfers the workload client submits.
    pub transfers: u32,
}

impl FaultPlan {
    /// Everything on.
    pub fn full(transfers: u32) -> Self {
        FaultPlan {
            drop: true,
            duplication: true,
            reorder: true,
            partitions: true,
            mttf: true,
            transfers,
        }
    }

    /// Human-readable shape, e.g. `drop+reorder x8` or `quiet x1`.
    pub fn label(&self) -> String {
        let mut classes = Vec::new();
        if self.drop {
            classes.push("drop");
        }
        if self.duplication {
            classes.push("dup");
        }
        if self.reorder {
            classes.push("reorder");
        }
        if self.partitions {
            classes.push("partition");
        }
        if self.mttf {
            classes.push("mttf");
        }
        let classes = if classes.is_empty() {
            "quiet".to_string()
        } else {
            classes.join("+")
        };
        format!("{classes} x{}", self.transfers)
    }
}

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct E12Params {
    /// Seeds to run: `first_seed .. first_seed + seeds`.
    pub seeds: u64,
    /// First seed of the sweep.
    pub first_seed: u64,
    /// Transfers per seed (pre-shrink).
    pub transfers: u32,
    /// Event budget per seed before healing.
    pub max_events: u64,
    /// Checkpoint cadence for the invariant checkers.
    pub checkpoint_every: u64,
    /// Inject the demonstration lost-ack bug (the sweep must catch it).
    pub demo_lost_ack: bool,
    /// Seeds sampled (with and without checkers) for the overhead figure.
    pub overhead_sample: u64,
}

impl E12Params {
    /// The full acceptance sweep: ≥1000 seeds.
    pub fn full() -> Self {
        E12Params {
            seeds: 1000,
            first_seed: 1,
            transfers: 12,
            max_events: 60_000,
            checkpoint_every: 64,
            demo_lost_ack: false,
            overhead_sample: 40,
        }
    }

    /// CI wiring check.
    pub fn smoke() -> Self {
        E12Params {
            seeds: 60,
            overhead_sample: 10,
            ..E12Params::full()
        }
    }
}

/// Outcome of one seed's run.
#[derive(Debug, Clone)]
pub struct SeedRun {
    /// The seed.
    pub seed: u64,
    /// Checkpoint violations plus post-heal verification failures.
    pub violations: Vec<String>,
    /// Rolling event-sequence hash (replay fingerprint).
    pub trace_hash: u64,
    /// Final-state digest (replay fingerprint).
    pub state_digest: u64,
    /// The run's stats.
    pub stats: SimStats,
}

impl SeedRun {
    /// Whether the run upheld every invariant.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Builds the per-seed configuration. All fault parameters are drawn from
/// the seed's plan stream regardless of which classes `plan` enables, so
/// shrinking one class leaves the rest untouched.
pub fn config_for(seed: u64, plan: &FaultPlan, params: &E12Params) -> SimConfig {
    let mut rng = SimRng::new(seed).split("e12-plan", 0);
    let drop_p = rng.range(3, 15) as f64 / 100.0;
    let dup_p = rng.range(3, 15) as f64 / 100.0;
    let reorder_p = rng.range(5, 30) as f64 / 100.0;
    let windows: Vec<PartitionWindow> = (0..3)
        .map(|_| {
            let start = rng.range(1_000, 25_000);
            let len = rng.range(2_000, 9_000);
            let node = rng.range(0, 3) as u32;
            PartitionWindow::new(start, start + len, [Endpoint::Node(NodeId::new(node))])
        })
        .collect();
    let n_windows = rng.range(1, 3) as usize;
    let mean_uptime = rng.range(15_000, 40_000);
    let mean_downtime = rng.range(3_000, 9_000);
    SimConfig {
        seed,
        drop_probability: if plan.drop { drop_p } else { 0.0 },
        duplicate_probability: if plan.duplication { dup_p } else { 0.0 },
        max_duplicates: 2,
        reorder_probability: if plan.reorder { reorder_p } else { 0.0 },
        reorder_extra: 1_800,
        partitions: if plan.partitions {
            windows.into_iter().take(n_windows).collect()
        } else {
            Vec::new()
        },
        mttf: plan.mttf.then_some(MttfConfig {
            mean_uptime,
            mean_downtime,
            max_crashes_per_node: 2,
        }),
        checkpoint_every: params.checkpoint_every,
        record_history: true,
        demo_lost_ack: params.demo_lost_ack,
        ..SimConfig::default()
    }
}

/// Runs one seed under `plan`; `checked` controls whether the checkpoint
/// invariant checkers run (the overhead probe turns them off).
pub fn run_seed(seed: u64, plan: &FaultPlan, params: &E12Params, checked: bool) -> SeedRun {
    let mut cluster = Cluster::new(config_for(seed, plan, params));
    if checked {
        cluster.add_checker(Box::new(StandardChecker));
        // Streaming in-loop certification: each checkpoint observes only
        // the events recorded since the previous one, instead of
        // re-certifying the whole history (the old merge-then-check
        // [`CertifierCheck`] cost, quadratic over a run).
        let certifier = OnlineCertifierCheck::hybrid(&cluster);
        cluster.add_checker(Box::new(certifier));
    }
    let rng = cluster.client_rng(0);
    let accounts = cluster.account_count();
    cluster.add_client(Box::new(
        TransferClient::new(rng, accounts, plan.transfers).with_audit_every(4),
    ));
    cluster.run_events(params.max_events);
    cluster.heal();
    let mut violations: Vec<String> = cluster.violations().iter().map(|v| v.to_string()).collect();
    if let Err(e) = cluster.verify_atomicity() {
        violations.push(format!("[final] atomicity: {e}"));
    }
    if let Err(e) = cluster.verify_conservation() {
        violations.push(format!("[final] conservation: {e}"));
    }
    let expected = cluster.initial_total();
    for (ts, total) in cluster.audit_results() {
        if *total != expected {
            violations.push(format!(
                "[final] audit@{ts} observed {total}, expected {expected}"
            ));
        }
    }
    SeedRun {
        seed,
        violations,
        trace_hash: cluster.trace_hash(),
        state_digest: cluster.state_digest(),
        stats: cluster.stats().clone(),
    }
}

/// Greedily shrinks a failing seed: disable each fault class in turn
/// (keeping the disable when the violation persists), then halve the
/// workload while it still fails. Returns the minimal plan and its run.
pub fn shrink(seed: u64, start: FaultPlan, params: &E12Params) -> (FaultPlan, SeedRun) {
    let mut plan = start;
    let mut run = run_seed(seed, &plan, params, true);
    debug_assert!(!run.clean(), "shrink called on a clean seed");
    let toggles: [fn(&mut FaultPlan); 5] = [
        |p| p.drop = false,
        |p| p.duplication = false,
        |p| p.reorder = false,
        |p| p.partitions = false,
        |p| p.mttf = false,
    ];
    for toggle in toggles {
        let mut candidate = plan;
        toggle(&mut candidate);
        if candidate == plan {
            continue;
        }
        let candidate_run = run_seed(seed, &candidate, params, true);
        if !candidate_run.clean() {
            plan = candidate;
            run = candidate_run;
        }
    }
    while plan.transfers > 1 {
        let candidate = FaultPlan {
            transfers: plan.transfers / 2,
            ..plan
        };
        let candidate_run = run_seed(seed, &candidate, params, true);
        if candidate_run.clean() {
            break;
        }
        plan = candidate;
        run = candidate_run;
    }
    (plan, run)
}

/// One caught-and-shrunk violation, as reported in `BENCH_e12.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ViolationCase {
    /// The violating seed — rerunning it reproduces the failure exactly.
    pub seed: u64,
    /// First violation under the full fault plan.
    pub detail: String,
    /// The minimal fault plan that still fails.
    pub minimal_plan: FaultPlan,
    /// Human-readable minimal schedule, e.g. `quiet x1`.
    pub minimal_schedule: String,
    /// First violation under the minimal plan.
    pub minimal_detail: String,
    /// Replay fingerprint of the minimal run.
    pub trace_hash: String,
}

/// Aggregate fault activity across the sweep.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FaultTotals {
    /// Node crashes (scheduled + MTTF).
    pub crashes: u64,
    /// Crashes from the MTTF failure clocks.
    pub mttf_crashes: u64,
    /// Node recoveries.
    pub recoveries: u64,
    /// Messages lost in transit.
    pub lost: u64,
    /// Extra message copies delivered.
    pub duplicated: u64,
    /// Deliveries deferred by reorder boosts.
    pub reordered: u64,
    /// Messages cut by partitions.
    pub cut: u64,
    /// Vote/prepare retransmissions.
    pub resends: u64,
    /// Transactions committed.
    pub committed: u64,
    /// Transactions aborted.
    pub aborted: u64,
}

impl FaultTotals {
    /// Folds one run's stats into the totals.
    pub fn absorb(&mut self, s: &SimStats) {
        self.crashes += s.crashes;
        self.mttf_crashes += s.mttf_crashes;
        self.recoveries += s.recoveries;
        self.lost += s.lost;
        self.duplicated += s.duplicated;
        self.reordered += s.reordered;
        self.cut += s.cut;
        self.resends += s.resends;
        self.committed += s.committed;
        self.aborted += s.aborted;
    }
}

/// The `BENCH_e12.json` payload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E12Report {
    /// Self-identifying header (schema version, experiment, commit).
    pub header: ReportHeader,
    /// Seeds run.
    pub seeds: u64,
    /// First seed.
    pub first_seed: u64,
    /// Wall-clock seconds for the sweep.
    pub wall_secs: f64,
    /// Sweep rate.
    pub seeds_per_sec: f64,
    /// Fault activity summed over every seed.
    pub faults: FaultTotals,
    /// Individual invariant checks run inside the loops.
    pub invariant_checks: u64,
    /// Mean per-seed slowdown of running the checkers, in percent
    /// (measured on a sample re-run with checkers disabled).
    pub checker_overhead_pct: f64,
    /// Every violation caught, with its shrunk reproducer.
    pub violations: Vec<ViolationCase>,
}

impl E12Report {
    /// Serializes for the CI artifact.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("E12 report serializes")
    }

    /// Parses a previously written report.
    ///
    /// # Errors
    ///
    /// Returns the serde error on malformed input.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// Runs the sweep: every seed under the full fault plan, shrinking any
/// failure, plus the checker-overhead probe.
pub fn run_sweep(params: &E12Params) -> E12Report {
    use std::time::Instant;

    let plan = FaultPlan::full(params.transfers);
    let mut totals = FaultTotals::default();
    let mut invariant_checks = 0u64;
    let mut violations = Vec::new();
    let t0 = Instant::now();
    for seed in params.first_seed..params.first_seed + params.seeds {
        let run = run_seed(seed, &plan, params, true);
        totals.absorb(&run.stats);
        invariant_checks += run.stats.invariant_checks;
        if !run.clean() {
            let detail = run.violations[0].clone();
            let (minimal_plan, minimal_run) = shrink(seed, plan, params);
            violations.push(ViolationCase {
                seed,
                detail,
                minimal_plan,
                minimal_schedule: minimal_plan.label(),
                minimal_detail: minimal_run.violations.first().cloned().unwrap_or_default(),
                trace_hash: format!("{:#018x}", minimal_run.trace_hash),
            });
        }
    }
    let wall_secs = t0.elapsed().as_secs_f64();

    // Overhead probe: the same seeds with checkers off.
    let sample = params.overhead_sample.min(params.seeds).max(1);
    let time_sample = |checked: bool| {
        let t = Instant::now();
        for seed in params.first_seed..params.first_seed + sample {
            let _ = run_seed(seed, &plan, params, checked);
        }
        t.elapsed().as_secs_f64()
    };
    let with = time_sample(true);
    let without = time_sample(false);
    let checker_overhead_pct = if without > 0.0 {
        ((with / without) - 1.0) * 100.0
    } else {
        0.0
    };

    E12Report {
        header: ReportHeader::new("e12"),
        seeds: params.seeds,
        first_seed: params.first_seed,
        wall_secs,
        seeds_per_sec: params.seeds as f64 / wall_secs.max(1e-9),
        faults: totals,
        invariant_checks,
        checker_overhead_pct,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> E12Params {
        E12Params {
            seeds: 4,
            overhead_sample: 2,
            transfers: 6,
            ..E12Params::full()
        }
    }

    #[test]
    fn clean_seeds_sweep_clean() {
        let report = run_sweep(&tiny());
        assert!(
            report.violations.is_empty(),
            "healthy cluster flagged: {:?}",
            report.violations
        );
        assert!(report.faults.committed > 0);
        assert!(report.invariant_checks > 0);
        let back = E12Report::from_json(&report.to_json()).unwrap();
        assert_eq!(back.seeds, report.seeds);
    }

    #[test]
    fn demo_bug_is_caught_and_shrunk() {
        let params = E12Params {
            demo_lost_ack: true,
            ..tiny()
        };
        let report = run_sweep(&params);
        assert!(
            !report.violations.is_empty(),
            "the injected lost-ack bug escaped the sweep"
        );
        let case = &report.violations[0];
        // The bug is fault-independent, so shrinking strips every fault
        // class and squeezes the workload down.
        assert!(
            !case.minimal_plan.drop
                && !case.minimal_plan.duplication
                && !case.minimal_plan.reorder
                && !case.minimal_plan.partitions
                && !case.minimal_plan.mttf,
            "shrinker kept spurious fault classes: {}",
            case.minimal_schedule
        );
        assert!(case.minimal_plan.transfers <= 2, "workload not shrunk");
    }

    #[test]
    fn seed_runs_replay_identically() {
        let params = tiny();
        let plan = FaultPlan::full(params.transfers);
        let a = run_seed(9, &plan, &params, true);
        let b = run_seed(9, &plan, &params, true);
        assert_eq!(a.trace_hash, b.trace_hash);
        assert_eq!(a.state_digest, b.state_digest);
        assert_eq!(a.stats, b.stats);
    }
}
