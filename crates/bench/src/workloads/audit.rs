//! E3 — long read-only audits vs. short updates (§4.2.3).
//!
//! The store is `shards` map objects, each holding `keys_per_shard`
//! accounts. Updaters run short transfers (debit one shard, credit
//! another); auditors scan **every shard in order** with think time —
//! the long read-only activities of §4.2.3.
//!
//! Expected shape (the paper's qualitative claims):
//!
//! - **dynamic**: audits pin every shard total they have read; updates
//!   block behind them and the mixed footprints deadlock — update
//!   throughput collapses while audits are in flight.
//! - **static**: audits carry old timestamps; updates serialize *after*
//!   them in timestamp order without invalidating them — both proceed.
//! - **hybrid**: audits read committed versions — zero interference in
//!   either direction ("audits do not interfere with any updates",
//!   §4.3.3).

use crate::engines::Engine;
use crate::workloads::hold;
use atomicity_core::{Admission, TxnManager};
use atomicity_spec::{op, ObjectId};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Parameters of the E3 workload.
#[derive(Debug, Clone)]
pub struct AuditParams {
    /// Number of map shards.
    pub shards: usize,
    /// Accounts per shard.
    pub keys_per_shard: i64,
    /// Initial balance per account.
    pub initial_balance: i64,
    /// Concurrent updater threads.
    pub updaters: usize,
    /// Transfer transactions per updater.
    pub txns_per_updater: usize,
    /// Concurrent auditor threads.
    pub auditors: usize,
    /// Audits per auditor.
    pub audits_per_auditor: usize,
    /// Updater in-transaction work (µs).
    pub hold_micros: u64,
    /// Auditor think time per shard (µs) — what makes audits *long*.
    pub audit_hold_micros: u64,
}

impl Default for AuditParams {
    fn default() -> Self {
        AuditParams {
            shards: 4,
            keys_per_shard: 4,
            initial_balance: 1_000,
            updaters: 3,
            txns_per_updater: 20,
            auditors: 2,
            audits_per_auditor: 4,
            hold_micros: 100,
            audit_hold_micros: 1_000,
        }
    }
}

/// Measured outcome of one E3 run.
#[derive(Debug, Clone)]
pub struct AuditOutcome {
    /// The engine measured.
    pub engine: Engine,
    /// Wall-clock duration.
    pub wall: Duration,
    /// Committed update transactions.
    pub updates_committed: u64,
    /// Aborted update transactions (deadlock / timestamp conflict).
    pub updates_aborted: u64,
    /// Committed audits.
    pub audits_committed: u64,
    /// Aborted audits.
    pub audits_aborted: u64,
    /// Audits whose grand total was wrong (must be 0 — atomicity).
    pub audits_inconsistent: u64,
    /// Mean audit latency.
    pub audit_latency: Duration,
    /// Committed updates per second.
    pub update_throughput: f64,
}

/// Runs the E3 workload for one engine.
pub fn run_audit(engine: Engine, params: &AuditParams) -> AuditOutcome {
    let handle = engine.builder().build();
    let mgr = handle.manager().clone();
    let shards: Vec<Arc<dyn Admission>> = (0..params.shards)
        .map(|s| {
            let entries = (0..params.keys_per_shard).map(|k| (k, params.initial_balance));
            handle.map(ObjectId::new(s as u32 + 1), entries)
        })
        .collect();
    let expected_total = params.shards as i64 * params.keys_per_shard * params.initial_balance;
    let stop = Arc::new(AtomicBool::new(false));

    let start = Instant::now();
    let mut update_handles = Vec::new();
    for u in 0..params.updaters {
        let mgr = mgr.clone();
        let shards = shards.clone();
        let params = params.clone();
        update_handles.push(std::thread::spawn(move || {
            let (mut committed, mut aborted) = (0u64, 0u64);
            for t in 0..params.txns_per_updater {
                let from = (u + t) % params.shards;
                let to = (u + t + 1) % params.shards;
                let key = (t as i64) % params.keys_per_shard;
                let txn = mgr.begin();
                let debit = shards[from].invoke(&txn, op("adjust", [key, -1]));
                hold(params.hold_micros);
                let credit = debit.and_then(|_| shards[to].invoke(&txn, op("adjust", [key, 1])));
                match credit {
                    Ok(_) => {
                        if mgr.commit(txn).is_ok() {
                            committed += 1;
                        } else {
                            aborted += 1;
                        }
                    }
                    Err(_) => {
                        mgr.abort(txn);
                        aborted += 1;
                    }
                }
            }
            (committed, aborted)
        }));
    }

    let mut audit_handles = Vec::new();
    for _ in 0..params.auditors {
        let mgr = mgr.clone();
        let shards = shards.clone();
        let params = params.clone();
        let stop = Arc::clone(&stop);
        audit_handles.push(std::thread::spawn(move || {
            let (mut committed, mut aborted, mut inconsistent) = (0u64, 0u64, 0u64);
            let mut latency = Duration::ZERO;
            let mut runs = 0u64;
            for _ in 0..params.audits_per_auditor {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let begun = Instant::now();
                let txn = mgr.begin_read_only();
                let mut total = 0i64;
                let mut failed = false;
                for shard in &shards {
                    match shard.invoke(&txn, op("sum", [] as [i64; 0])) {
                        Ok(v) => total += v.as_int().unwrap_or(0),
                        Err(_) => {
                            failed = true;
                            break;
                        }
                    }
                    hold(params.audit_hold_micros);
                }
                if failed {
                    mgr.abort(txn);
                    aborted += 1;
                    continue;
                }
                if mgr.commit(txn).is_err() {
                    aborted += 1;
                    continue;
                }
                committed += 1;
                runs += 1;
                latency += begun.elapsed();
                if total != 0 && total != expected_total {
                    // Transfers conserve money: any other total is a
                    // violated audit. (`total == 0` cannot happen with
                    // positive balances.)
                    inconsistent += 1;
                }
            }
            let mean = if runs > 0 {
                latency / (runs as u32)
            } else {
                Duration::ZERO
            };
            (committed, aborted, inconsistent, mean)
        }));
    }

    let (mut updates_committed, mut updates_aborted) = (0u64, 0u64);
    for h in update_handles {
        let (c, a) = h.join().expect("updater panicked");
        updates_committed += c;
        updates_aborted += a;
    }
    stop.store(true, Ordering::Relaxed);
    let (mut audits_committed, mut audits_aborted, mut audits_inconsistent) = (0, 0, 0);
    let mut latency_sum = Duration::ZERO;
    let mut latency_n = 0u32;
    for h in audit_handles {
        let (c, a, i, mean) = h.join().expect("auditor panicked");
        audits_committed += c;
        audits_aborted += a;
        audits_inconsistent += i;
        if c > 0 {
            latency_sum += mean;
            latency_n += 1;
        }
    }
    let wall = start.elapsed();
    AuditOutcome {
        engine,
        wall,
        updates_committed,
        updates_aborted,
        audits_committed,
        audits_aborted,
        audits_inconsistent,
        audit_latency: if latency_n > 0 {
            latency_sum / latency_n
        } else {
            Duration::ZERO
        },
        update_throughput: updates_committed as f64 / wall.as_secs_f64(),
    }
}

/// Helper for tests and the harness: run with a scaled-down parameter set.
pub fn quick_params() -> AuditParams {
    AuditParams {
        shards: 3,
        keys_per_shard: 2,
        initial_balance: 100,
        updaters: 2,
        txns_per_updater: 8,
        auditors: 1,
        audits_per_auditor: 2,
        hold_micros: 100,
        audit_hold_micros: 500,
    }
}

/// Ignore-listed engines for audit workloads: the lock-based baselines
/// behave like (worse) dynamic here; the harness compares the three
/// properties.
pub fn audit_engines() -> [Engine; 3] {
    Engine::PROPERTIES
}

#[allow(unused)]
fn _assert_traits(mgr: &TxnManager) {
    let _ = mgr;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn audits_are_always_consistent_under_all_properties() {
        for engine in audit_engines() {
            let out = run_audit(engine, &quick_params());
            assert_eq!(
                out.audits_inconsistent, 0,
                "{engine}: audit observed a non-conserved total"
            );
            assert_eq!(
                out.updates_committed + out.updates_aborted,
                16,
                "{engine}: every update must resolve"
            );
        }
    }

    #[test]
    fn hybrid_audits_never_abort() {
        let out = run_audit(Engine::Hybrid, &quick_params());
        assert_eq!(out.audits_aborted, 0);
        assert!(out.audits_committed > 0);
    }

    #[test]
    fn hybrid_updates_do_not_wait_for_audits() {
        // With long audits in flight, hybrid update throughput should be
        // decisively higher than dynamic's. Use a margin to avoid CI
        // flakiness.
        let mut p = quick_params();
        p.audit_hold_micros = 5_000;
        p.audits_per_auditor = 50; // keep auditing for the whole run
        let hybrid = run_audit(Engine::Hybrid, &p);
        let dynamic = run_audit(Engine::Dynamic, &p);
        assert!(
            hybrid.update_throughput > dynamic.update_throughput,
            "hybrid {:.0}/s must beat dynamic {:.0}/s",
            hybrid.update_throughput,
            dynamic.update_throughput
        );
    }
}
