//! E6 — online recoverability under crashes (§1, §3).
//!
//! Two halves:
//!
//! 1. **Crash sweep** over the distributed simulation: a transfer workload
//!    runs while a participant node crashes at every event index in turn.
//!    At every crash point, after healing, the all-or-nothing property and
//!    money conservation must hold — the executable content of
//!    "recoverability" in the paper's definition of atomicity.
//! 2. **Recovery-cost comparison**: intentions-list (redo) recovery cost
//!    scales with *committed* history, undo-log recovery cost with
//!    *uncommitted* operations — the trade the paper's §5.1 model-freedom
//!    argument is about.

use atomicity_core::recovery::{DurableLog, IntentionsStore, StableLog, UndoStore};
use atomicity_sim::{Cluster, NodeId, SimConfig};
use atomicity_spec::specs::KvMapSpec;
use atomicity_spec::{op, ActivityId, ObjectId, Value};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Outcome of one crash-sweep run.
#[derive(Debug, Clone)]
pub struct CrashSweepOutcome {
    /// Crash points exercised (event-index × node pairs).
    pub points: u64,
    /// Crash points at which atomicity and conservation held (must equal
    /// `points`).
    pub atomic_points: u64,
    /// Transactions committed across all runs.
    pub committed: u64,
    /// Transactions aborted across all runs.
    pub aborted: u64,
    /// Node recoveries performed.
    pub recoveries: u64,
    /// Committed intentions redone during recovery.
    pub redo_records: u64,
    /// In-doubt transactions resolved by asking the coordinator.
    pub in_doubt: u64,
}

/// Sweeps a crash of every node over every `stride`-th event index of a
/// transfer workload, each node backed by the in-memory simulated log.
pub fn run_crash_sweep(transfers: usize, stride: u64, seed: u64) -> CrashSweepOutcome {
    run_crash_sweep_with(transfers, stride, seed, &|_, _| {
        Arc::new(StableLog::new()) as Arc<dyn DurableLog>
    })
}

/// The crash sweep over an arbitrary durable-log factory. `factory` is
/// called with `(run, node)` — `run` counts the clusters built so far —
/// and must return a *fresh, empty* log for that pair (for the on-disk
/// WAL: a distinct directory per run × node). This is the `experiments
/// e6 --disk` path that replays the whole sweep on the real WAL.
pub fn run_crash_sweep_with(
    transfers: usize,
    stride: u64,
    seed: u64,
    factory: &dyn Fn(u64, NodeId) -> Arc<dyn DurableLog>,
) -> CrashSweepOutcome {
    let base_cfg = SimConfig {
        seed,
        ..SimConfig::default()
    };
    let mut run = 0u64;
    let mut cluster = |cfg: SimConfig| {
        let c = Cluster::with_log_factory(cfg, |id| factory(run, id));
        run += 1;
        c
    };
    // Baseline: how many events does the un-crashed run process?
    let baseline_events = {
        let mut c = cluster(base_cfg.clone());
        submit_all(&mut c, transfers);
        c.run_to_quiescence();
        c.stats().events
    };

    let mut out = CrashSweepOutcome {
        points: 0,
        atomic_points: 0,
        committed: 0,
        aborted: 0,
        recoveries: 0,
        redo_records: 0,
        in_doubt: 0,
    };
    let mut crash_at = 0u64;
    while crash_at <= baseline_events {
        for node in 0..base_cfg.nodes {
            let mut c = cluster(base_cfg.clone());
            submit_all(&mut c, transfers);
            c.schedule_crash(crash_at, NodeId::new(node), 30_000);
            c.run_to_quiescence();
            c.heal();
            out.points += 1;
            let ok = c.verify_atomicity().is_ok() && c.verify_conservation().is_ok();
            if ok {
                out.atomic_points += 1;
            }
            let stats = c.stats();
            out.committed += stats.committed;
            out.aborted += stats.aborted;
            out.recoveries += stats.recoveries;
            out.redo_records += stats.redo_records;
            out.in_doubt += stats.in_doubt;
        }
        crash_at += stride;
    }
    out
}

/// One row of the lossy-network sweep.
#[derive(Debug, Clone)]
pub struct LossyRow {
    /// Injected message-loss probability.
    pub drop_probability: f64,
    /// Injected duplication probability.
    pub duplicate_probability: f64,
    /// Transactions committed.
    pub committed: u64,
    /// Transactions aborted (vote timeouts from lost prepares/acks).
    pub aborted: u64,
    /// Messages lost in transit.
    pub lost: u64,
    /// Messages duplicated.
    pub duplicated: u64,
    /// Vote retransmissions.
    pub resends: u64,
    /// Whether atomicity and conservation held after healing.
    pub atomic: bool,
}

/// Runs a transfer workload over an unreliable network and reports the
/// outcome: whatever the loss/duplication rate, atomicity must hold.
pub fn run_lossy(transfers: usize, drop_p: f64, dup_p: f64, seed: u64) -> LossyRow {
    let mut cluster = Cluster::new(SimConfig {
        seed,
        drop_probability: drop_p,
        duplicate_probability: dup_p,
        ..SimConfig::default()
    });
    submit_all(&mut cluster, transfers);
    cluster.run_to_quiescence();
    cluster.heal();
    let atomic = cluster.verify_atomicity().is_ok() && cluster.verify_conservation().is_ok();
    let stats = cluster.stats();
    LossyRow {
        drop_probability: drop_p,
        duplicate_probability: dup_p,
        committed: stats.committed,
        aborted: stats.aborted,
        lost: stats.lost,
        duplicated: stats.duplicated,
        resends: stats.resends,
        atomic,
    }
}

/// Outcome of the distributed-audit scenario.
#[derive(Debug, Clone)]
pub struct DistributedAuditOutcome {
    /// Audits completed.
    pub audits: u64,
    /// Audits observing a non-conserved total (must be 0).
    pub torn: u64,
    /// Transfers committed.
    pub committed: u64,
    /// Transfers aborted.
    pub aborted: u64,
    /// Node crashes injected.
    pub crashes: u64,
    /// Messages lost in transit.
    pub lost: u64,
}

/// Runs transfers with interleaved timestamped audits over an unreliable
/// network with a node crash; every audit must observe the conserved
/// grand total (§4.3 read-only activities, distributed).
pub fn run_distributed_audits(
    transfers: usize,
    drop_p: f64,
    dup_p: f64,
    seed: u64,
) -> DistributedAuditOutcome {
    let mut cluster = Cluster::new(SimConfig {
        seed,
        drop_probability: drop_p,
        duplicate_probability: dup_p,
        ..SimConfig::default()
    });
    let expected = cluster.account_count() * SimConfig::default().initial_balance;
    let n = cluster.account_count();
    for i in 0..transfers as i64 {
        let (from, to) = (i % n, (i * 3 + 1) % n);
        if from != to {
            cluster.submit_transfer(from, to, 5);
        }
        if i % 3 == 0 {
            cluster.submit_audit();
        }
        cluster.run_events(4);
    }
    cluster.schedule_crash(cluster.stats().events + 2, NodeId::new(1), 20_000);
    cluster.run_to_quiescence();
    cluster.heal();
    cluster
        .verify_atomicity()
        .expect("atomicity under failures");
    cluster
        .verify_conservation()
        .expect("conservation under failures");
    let torn = cluster
        .audit_results()
        .iter()
        .filter(|(_, total)| *total != expected)
        .count() as u64;
    let stats = cluster.stats();
    DistributedAuditOutcome {
        audits: cluster.audit_results().len() as u64,
        torn,
        committed: stats.committed,
        aborted: stats.aborted,
        crashes: stats.crashes,
        lost: stats.lost,
    }
}

fn submit_all(cluster: &mut Cluster, transfers: usize) {
    let n = cluster.account_count();
    for i in 0..transfers as i64 {
        let from = i % n;
        let to = (i * 7 + 3) % n;
        if from != to {
            cluster.submit_transfer(from, to, 5);
        }
    }
}

/// One row of the recovery-cost comparison.
#[derive(Debug, Clone)]
pub struct RecoveryCostRow {
    /// Total operations applied before the crash.
    pub total_ops: usize,
    /// Fraction of transactions committed before the crash.
    pub committed_fraction: f64,
    /// Intentions-list (redo) recovery time.
    pub redo_time: Duration,
    /// Undo-log recovery time.
    pub undo_time: Duration,
    /// Operations redone by intentions recovery.
    pub redone_ops: usize,
    /// Operations undone by undo recovery.
    pub undone_txns: usize,
}

/// Measures recovery cost for both strategies on the same operation
/// stream: `txns` single-op transactions, of which the first
/// `committed_fraction` are committed when the crash hits.
pub fn run_recovery_cost(txns: usize, committed_fraction: f64) -> RecoveryCostRow {
    let object = ObjectId::new(1);
    let committed_count = (txns as f64 * committed_fraction).round() as usize;

    // Intentions-list store.
    let redo = IntentionsStore::new(KvMapSpec::new(), object, StableLog::new());
    for i in 0..txns {
        let txn = ActivityId::new(i as u32 + 1);
        redo.prepare(txn, vec![(op("adjust", [i as i64 % 8, 1]), Value::ok())]);
        if i < committed_count {
            redo.commit(txn);
        }
    }
    redo.crash();
    let begun = Instant::now();
    let outcome = redo.recover();
    let redo_time = begun.elapsed();

    // Undo store over the same stream.
    let undo = UndoStore::new(KvMapSpec::new(), object);
    for i in 0..txns {
        let txn = ActivityId::new(i as u32 + 1);
        undo.apply(txn, (op("adjust", [i as i64 % 8, 1]), Value::ok()));
        if i < committed_count {
            undo.commit(txn);
        }
    }
    let begun = Instant::now();
    let undone = undo.recover();
    let undo_time = begun.elapsed();

    RecoveryCostRow {
        total_ops: txns,
        committed_fraction,
        redo_time,
        undo_time,
        redone_ops: outcome.redone.len(),
        undone_txns: undone.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_crash_sweep_is_fully_atomic() {
        let out = run_crash_sweep(3, 3, 11);
        assert!(out.points > 0);
        assert_eq!(out.atomic_points, out.points, "{out:?}");
        assert!(out.recoveries >= out.points, "every crash recovers");
    }

    #[test]
    fn disk_backed_crash_sweep_matches_in_memory() {
        use atomicity_durable::{SyncPolicy, Wal, WalOptions};

        let base =
            std::env::temp_dir().join(format!("atomicity-e6-disk-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let factory = |run: u64, node: NodeId| {
            let dir = base.join(format!("run{run}-n{}", node.raw()));
            let (wal, info) = Wal::open(
                &dir,
                WalOptions {
                    sync: SyncPolicy::SyncEach,
                    ..WalOptions::default()
                },
            )
            .expect("open node WAL");
            assert_eq!(info.records, 0, "factory must hand out fresh logs");
            Arc::new(wal) as Arc<dyn DurableLog>
        };
        let disk = run_crash_sweep_with(2, 6, 11, &factory);
        let _ = std::fs::remove_dir_all(&base);

        // The sweep is deterministic in everything but the log backend, so
        // the on-disk WAL must reproduce the in-memory outcome exactly.
        let memory = run_crash_sweep(2, 6, 11);
        assert!(disk.points > 0);
        assert_eq!(disk.atomic_points, disk.points, "{disk:?}");
        assert_eq!(disk.committed, memory.committed);
        assert_eq!(disk.aborted, memory.aborted);
        assert_eq!(disk.redo_records, memory.redo_records);
        assert_eq!(disk.in_doubt, memory.in_doubt);
    }

    #[test]
    fn lossy_runs_stay_atomic_across_rates() {
        for (drop_p, dup_p) in [(0.0, 0.0), (0.2, 0.0), (0.0, 0.3), (0.3, 0.2)] {
            let row = run_lossy(12, drop_p, dup_p, 7);
            assert!(row.atomic, "loss {drop_p} dup {dup_p}: {row:?}");
            assert_eq!(row.committed + row.aborted, 12);
        }
    }

    #[test]
    fn distributed_audits_never_torn() {
        for (drop_p, dup_p) in [(0.0, 0.0), (0.2, 0.1)] {
            let out = run_distributed_audits(15, drop_p, dup_p, 31);
            assert!(out.audits > 0);
            assert_eq!(out.torn, 0, "{out:?}");
        }
    }

    #[test]
    fn recovery_costs_scale_opposite_ways() {
        let mostly_committed = run_recovery_cost(200, 0.95);
        let mostly_uncommitted = run_recovery_cost(200, 0.05);
        // Redo work follows committed count; undo work follows
        // uncommitted count.
        assert_eq!(mostly_committed.redone_ops, 190);
        assert_eq!(mostly_committed.undone_txns, 10);
        assert_eq!(mostly_uncommitted.redone_ops, 10);
        assert_eq!(mostly_uncommitted.undone_txns, 190);
    }

    #[test]
    fn recovered_states_agree_between_strategies() {
        let object = ObjectId::new(1);
        let redo = IntentionsStore::new(KvMapSpec::new(), object, StableLog::new());
        let undo = UndoStore::new(KvMapSpec::new(), object);
        for i in 0..20u32 {
            let txn = ActivityId::new(i + 1);
            let pair = (op("adjust", [i64::from(i % 4), 1]), Value::ok());
            redo.prepare(txn, vec![pair.clone()]);
            undo.apply(txn, pair);
            if i % 3 != 0 {
                redo.commit(txn);
                undo.commit(txn);
            }
        }
        redo.crash();
        let _ = redo.recover();
        let _ = undo.recover();
        assert_eq!(redo.committed_frontier(), undo.state());
    }
}
