//! E4 — Lamport's banking problem (§4.3.3).
//!
//! Transfer activities move money between accounts; audit activities print
//! the balances. Lamport [Lamport 76] observed locking's performance
//! problem and proposed giving up atomicity; the paper's answer is hybrid
//! atomicity: audits that are consistent *and* interference-free.
//!
//! Three audit disciplines over the same transfer workload:
//!
//! - **hybrid**: timestamped read-only audits on hybrid objects — always
//!   consistent, never block updates.
//! - **dynamic**: audits as ordinary transactions on dynamic objects —
//!   consistent, but they make updates wait (and deadlock).
//! - **non-atomic**: Lamport's starting point — each shard is read in its
//!   own transaction, so the audit is not atomic across shards and
//!   observes *torn totals* while transfers are in flight.

use crate::engines::Engine;
use crate::workloads::hold;
use atomicity_core::{Admission, TxnManager};
use atomicity_spec::{op, ObjectId};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Audit discipline under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditMode {
    /// Hybrid atomicity: read-only timestamped audits.
    Hybrid,
    /// Dynamic atomicity: audits are ordinary transactions.
    Dynamic,
    /// No cross-shard atomicity: one transaction per shard read.
    NonAtomic,
}

impl AuditMode {
    /// All modes, in presentation order.
    pub const ALL: [AuditMode; 3] = [AuditMode::Hybrid, AuditMode::Dynamic, AuditMode::NonAtomic];

    /// Row label.
    pub fn label(self) -> &'static str {
        match self {
            AuditMode::Hybrid => "hybrid",
            AuditMode::Dynamic => "dynamic",
            AuditMode::NonAtomic => "non-atomic",
        }
    }

    fn engine(self) -> Engine {
        match self {
            AuditMode::Hybrid => Engine::Hybrid,
            AuditMode::Dynamic | AuditMode::NonAtomic => Engine::Dynamic,
        }
    }
}

/// Parameters of the E4 workload.
#[derive(Debug, Clone)]
pub struct LamportParams {
    /// Number of account shards.
    pub shards: usize,
    /// Accounts per shard.
    pub keys_per_shard: i64,
    /// Initial balance per account.
    pub initial_balance: i64,
    /// Concurrent transfer threads.
    pub transferrers: usize,
    /// Transfers per thread.
    pub txns_per_transferrer: usize,
    /// Transfer in-flight hold between debit and credit (µs) — the window
    /// a torn read can observe.
    pub transfer_hold_micros: u64,
    /// Audits per auditor thread (two auditor threads).
    pub audits: usize,
    /// Auditor think time between shard reads (µs) — the tear window for
    /// the non-atomic discipline, and the lock footprint for dynamic.
    pub audit_hold_micros: u64,
}

impl Default for LamportParams {
    fn default() -> Self {
        LamportParams {
            shards: 4,
            keys_per_shard: 4,
            initial_balance: 1_000,
            transferrers: 3,
            txns_per_transferrer: 30,
            transfer_hold_micros: 500,
            audits: 20,
            audit_hold_micros: 500,
        }
    }
}

/// Measured outcome of one E4 run.
#[derive(Debug, Clone)]
pub struct LamportOutcome {
    /// Audit discipline.
    pub mode: AuditMode,
    /// Audits completed.
    pub audits: u64,
    /// Audits that observed a non-conserved grand total.
    pub torn_audits: u64,
    /// Committed transfers.
    pub transfers_committed: u64,
    /// Aborted transfers.
    pub transfers_aborted: u64,
    /// Committed transfers per second.
    pub transfer_throughput: f64,
    /// Wall-clock duration of the transfer phase.
    pub wall: Duration,
}

/// Runs the E4 workload under one audit discipline.
pub fn run_lamport(mode: AuditMode, params: &LamportParams) -> LamportOutcome {
    let engine = mode.engine();
    let handle = engine.builder().build();
    let mgr = handle.manager().clone();
    let shards: Vec<Arc<dyn Admission>> = (0..params.shards)
        .map(|s| {
            let entries = (0..params.keys_per_shard).map(|k| (k, params.initial_balance));
            handle.map(ObjectId::new(s as u32 + 1), entries)
        })
        .collect();
    let expected_total = params.shards as i64 * params.keys_per_shard * params.initial_balance;
    let stop = Arc::new(AtomicBool::new(false));

    let start = Instant::now();
    let mut transfer_handles = Vec::new();
    for u in 0..params.transferrers {
        let mgr = mgr.clone();
        let shards = shards.clone();
        let params = params.clone();
        transfer_handles.push(std::thread::spawn(move || {
            let (mut committed, mut aborted) = (0u64, 0u64);
            for t in 0..params.txns_per_transferrer {
                let from = (u + t) % params.shards;
                let to = (u + t + 1) % params.shards;
                let key = (t as i64) % params.keys_per_shard;
                let txn = mgr.begin();
                let debit = shards[from].invoke(&txn, op("adjust", [key, -10]));
                hold(params.transfer_hold_micros);
                let credit = debit.and_then(|_| shards[to].invoke(&txn, op("adjust", [key, 10])));
                match credit {
                    Ok(_) => {
                        if mgr.commit(txn).is_ok() {
                            committed += 1;
                        } else {
                            aborted += 1;
                        }
                    }
                    Err(_) => {
                        mgr.abort(txn);
                        aborted += 1;
                    }
                }
            }
            (committed, aborted)
        }));
    }

    let mut audit_handles = Vec::new();
    for _ in 0..2 {
        let mgr = mgr.clone();
        let shards = shards.clone();
        let params = params.clone();
        let stop = Arc::clone(&stop);
        audit_handles.push(std::thread::spawn(move || {
            let (mut done, mut torn) = (0u64, 0u64);
            for _ in 0..params.audits {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                if let Some(total) = run_one_audit(mode, &mgr, &shards, params.audit_hold_micros) {
                    done += 1;
                    if total != expected_total {
                        torn += 1;
                    }
                }
            }
            (done, torn)
        }));
    }

    let (mut transfers_committed, mut transfers_aborted) = (0u64, 0u64);
    for h in transfer_handles {
        let (c, a) = h.join().expect("transferrer panicked");
        transfers_committed += c;
        transfers_aborted += a;
    }
    let wall = start.elapsed();
    stop.store(true, Ordering::Relaxed);
    let (mut audits, mut torn_audits) = (0u64, 0u64);
    for h in audit_handles {
        let (d, t) = h.join().expect("auditor panicked");
        audits += d;
        torn_audits += t;
    }
    LamportOutcome {
        mode,
        audits,
        torn_audits,
        transfers_committed,
        transfers_aborted,
        transfer_throughput: transfers_committed as f64 / wall.as_secs_f64(),
        wall,
    }
}

/// Runs a single audit; `None` if it aborted.
fn run_one_audit(
    mode: AuditMode,
    mgr: &TxnManager,
    shards: &[Arc<dyn Admission>],
    think_micros: u64,
) -> Option<i64> {
    let sum_op = op("sum", [] as [i64; 0]);
    match mode {
        AuditMode::Hybrid => {
            let txn = mgr.begin_read_only();
            let mut total = 0;
            for shard in shards {
                total += shard.invoke(&txn, sum_op.clone()).ok()?.as_int()?;
                hold(think_micros);
            }
            mgr.commit(txn).ok()?;
            Some(total)
        }
        AuditMode::Dynamic => {
            let txn = mgr.begin();
            let mut total = 0;
            for shard in shards {
                match shard.invoke(&txn, sum_op.clone()) {
                    Ok(v) => total += v.as_int()?,
                    Err(_) => {
                        // Deadlock victim: abort and report nothing.
                        mgr.abort(txn);
                        return None;
                    }
                }
                hold(think_micros);
            }
            mgr.commit(txn).ok()?;
            Some(total)
        }
        AuditMode::NonAtomic => {
            // One transaction per shard: atomic per shard, torn across.
            let mut total = 0;
            for shard in shards {
                let txn = mgr.begin();
                match shard.invoke(&txn, sum_op.clone()) {
                    Ok(v) => {
                        total += v.as_int()?;
                        mgr.commit(txn).ok()?;
                    }
                    Err(_) => {
                        mgr.abort(txn);
                        return None;
                    }
                }
                hold(think_micros);
            }
            Some(total)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> LamportParams {
        LamportParams {
            shards: 3,
            keys_per_shard: 2,
            initial_balance: 100,
            transferrers: 2,
            txns_per_transferrer: 15,
            transfer_hold_micros: 1_000,
            audits: 30,
            audit_hold_micros: 500,
        }
    }

    #[test]
    fn hybrid_audits_are_never_torn() {
        let out = run_lamport(AuditMode::Hybrid, &quick());
        assert!(out.audits > 0);
        assert_eq!(out.torn_audits, 0);
    }

    #[test]
    fn dynamic_audits_are_never_torn() {
        let out = run_lamport(AuditMode::Dynamic, &quick());
        assert_eq!(out.torn_audits, 0);
    }

    #[test]
    fn non_atomic_audits_tear() {
        // With transfers holding debits in flight for 1ms, per-shard
        // audits routinely observe non-conserved totals. Retry a few times
        // to keep the test deterministic enough.
        for _ in 0..5 {
            let out = run_lamport(AuditMode::NonAtomic, &quick());
            if out.torn_audits > 0 {
                return;
            }
        }
        panic!("non-atomic audits never observed a torn total in 5 runs");
    }

    #[test]
    fn every_transfer_resolves() {
        for mode in AuditMode::ALL {
            let out = run_lamport(mode, &quick());
            assert_eq!(
                out.transfers_committed + out.transfers_aborted,
                30,
                "{mode:?}"
            );
        }
    }
}
