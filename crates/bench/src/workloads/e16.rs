//! E16 — the online streaming certifier over live engine runs.
//!
//! Three gates, one report (`BENCH_e16.json`):
//!
//! 1. **Equality.** For every seed and every property engine, a
//!    contended mixed bank workload runs with an online monitor attached
//!    over a preserving tap — the *watermark-retiring* monitor for the
//!    dynamic engine, the *retain-all* monitor for the timestamp engines
//!    (see [`equality_mode`] for why); the final online certificate must
//!    agree — verdict kind and committed count — with the post-hoc
//!    linear certifier run over a snapshot of the very same recorded
//!    history.
//! 2. **Long horizon.** A contended dynamic run 10–100× the E10 history
//!    drives the monitor through a *retiring* tap (shard buffers are
//!    consumed as they certify). The gate is the monitor's retained-set
//!    high-water mark: it must stay proportional to the open-transaction
//!    footprint (threads × ops), not the history length — the metrics
//!    registry's `certifier_retained_peak` gauge is the witness.
//! 3. **Overhead.** The same workload is timed bare, with metrics only,
//!    and with metrics + online certifier. The certifier's throughput
//!    cost must stay within the observability budget: its relative
//!    overhead may not exceed `max(0.8%, 2 × metrics overhead)` — i.e.
//!    twice the ~0.4% metrics budget, self-calibrated against what the
//!    metrics layer actually costs on this host. The monitor runs on a
//!    pump thread off the hot path, so the gate is enforced only when
//!    the host has a spare core to schedule it on
//!    (`available_parallelism > worker threads`); on a saturated host
//!    the pump necessarily steals workload cycles one-for-one and the
//!    wall-clock delta measures scheduler arithmetic, not tap cost —
//!    the numbers are still reported, ungated.
//!
//! `--demo-violation` additionally forges a non-atomic pair of
//! activities into the live stream mid-run and asserts the monitor flags
//! it *at the offending commit*, not at finish.

use crate::engines::{CertifyMode, Engine};
use crate::report::ReportHeader;
use crate::synthesized_suite;
use atomicity_core::{Admission, CommutesRel, HistoryLog};
use atomicity_lint::{certify_with_relation, Verdict};
use atomicity_sim::SimRng;
use atomicity_spec::specs::{BankAccountSpec, IntSetSpec};
use atomicity_spec::{op, ActivityId, Event, ObjectId, SystemSpec, Value};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// Parameters of one E16 run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E16Params {
    /// Seeds of the equality sweep (one run per seed per property
    /// engine).
    pub seeds: Vec<u64>,
    /// Worker threads.
    pub threads: usize,
    /// Transactions per thread in each equality run.
    pub equality_txns: usize,
    /// Transactions per thread in the long-horizon run. At the E16
    /// defaults this is 10–100× the E10 history (4×250 contended txns).
    pub horizon_txns: usize,
    /// Operations per transaction.
    pub ops_per_txn: usize,
    /// Shared bank accounts all workers contend on.
    pub accounts: usize,
    /// A/B timing trials for the overhead gate (median is compared).
    pub overhead_trials: usize,
    /// Transactions per thread in each overhead trial.
    pub overhead_txns: usize,
    /// Whether to run the mid-stream violation demonstration.
    pub demo_violation: bool,
    /// Whether to enforce the overhead gate (skipped in smoke runs —
    /// CI machines make sub-percent timing gates meaningless).
    pub gate_overhead: bool,
}

impl E16Params {
    /// The full sweep the committed `BENCH_e16.json` records.
    pub fn full() -> Self {
        E16Params {
            seeds: vec![1, 2, 3, 4, 5],
            threads: 4,
            equality_txns: 200,
            horizon_txns: 5_000,
            ops_per_txn: 4,
            accounts: 2,
            overhead_trials: 5,
            overhead_txns: 2_000,
            demo_violation: true,
            gate_overhead: true,
        }
    }

    /// CI wiring check: seconds, not minutes; no timing gate.
    pub fn smoke() -> Self {
        E16Params {
            seeds: vec![1, 2],
            equality_txns: 40,
            horizon_txns: 400,
            overhead_trials: 2,
            overhead_txns: 200,
            gate_overhead: false,
            ..E16Params::full()
        }
    }
}

/// The bank commutativity relation the monitor's streaming table
/// reduction runs with — the same synthesized table the engines lock by.
fn bank_relation() -> Arc<dyn CommutesRel> {
    Arc::new(
        synthesized_suite()
            .table("bank")
            .expect("bank table synthesized")
            .clone(),
    )
}

/// Initial balance of every shared account; the certifier's spec must
/// replay from the same state the live objects started in.
const INITIAL_BALANCE: i64 = 1_000;

/// A [`SystemSpec`] covering the run's shared accounts.
fn account_spec(accounts: usize) -> SystemSpec {
    (0..accounts).fold(SystemSpec::new(), |s, i| {
        s.with_object(
            ObjectId::new(i as u32 + 1),
            BankAccountSpec::with_initial(INITIAL_BALANCE),
        )
    })
}

/// Drives the mixed contended workload: every transaction deposits and
/// withdraws small seeded amounts on a seeded choice of shared account.
/// Returns (committed, aborted).
fn drive(
    handle: &crate::engines::EngineHandle,
    objects: &[Arc<dyn Admission>],
    seed: u64,
    threads: usize,
    txns_per_thread: usize,
    ops_per_txn: usize,
) -> (u64, u64) {
    std::thread::scope(|s| {
        let workers: Vec<_> = (0..threads)
            .map(|t| {
                let mgr = handle.manager().clone();
                s.spawn(move || {
                    let mut rng = SimRng::new(seed).split("e16-worker", t as u64);
                    let (mut committed, mut aborted) = (0u64, 0u64);
                    for _ in 0..txns_per_thread {
                        let obj = &objects[rng.range(0, objects.len() as u64 - 1) as usize];
                        let txn = mgr.begin();
                        let mut failed = false;
                        for _ in 0..ops_per_txn {
                            let amount = rng.range(1, 8) as i64;
                            let operation = if rng.chance(0.5) {
                                op("deposit", [amount])
                            } else {
                                op("withdraw", [amount])
                            };
                            if obj.invoke(&txn, operation).is_err() {
                                failed = true;
                                break;
                            }
                        }
                        if failed {
                            mgr.abort(txn);
                            aborted += 1;
                        } else if mgr.commit(txn).is_ok() {
                            committed += 1;
                        } else {
                            aborted += 1;
                        }
                    }
                    (committed, aborted)
                })
            })
            .collect();
        let mut totals = (0u64, 0u64);
        for w in workers {
            let (c, a) = w.join().expect("e16 worker panicked");
            totals.0 += c;
            totals.1 += a;
        }
        totals
    })
}

/// One (seed, engine) cell of the equality sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EqualityRow {
    /// Seed of the run.
    pub seed: u64,
    /// Engine (and thus property) certified.
    pub engine: String,
    /// Online mode the cell ran under (`online` / `online-retaining`).
    pub mode: String,
    /// Committed transactions.
    pub committed: u64,
    /// Events the online monitor observed.
    pub observed: u64,
    /// Online verdict kind (`certified` / `refuted` / `unknown`).
    pub online_verdict: String,
    /// Post-hoc verdict kind from the snapshot.
    pub post_hoc_verdict: String,
    /// Whether verdicts and committed counts agreed (gated).
    pub agreed: bool,
    /// The monitor's retained-set high-water mark.
    pub peak_retained: usize,
}

fn verdict_kind(v: &Verdict) -> String {
    match v {
        Verdict::Certified => "certified".into(),
        Verdict::Refuted(_) => "refuted".into(),
        Verdict::Unknown(_) => "unknown".into(),
    }
}

/// The online mode an equality cell runs the engine's property under.
///
/// Dynamic atomicity streams carry no timestamp events, so the bounded
/// *retiring* monitor is decisive on any live stream. The timestamp
/// properties are different: a live transaction draws its timestamp at
/// `begin()` but records no event until its first operation, so an old
/// timestamp can surface *after* the retiring monitor's drain watermark
/// has passed it — a race the monitor soundly reports as `Unknown`. The
/// *retain-all* monitor decides exactly those streams by delegating the
/// pathological tail to its full event mirror, so the equality gate stays
/// deterministic across schedules.
fn equality_mode(engine: Engine) -> CertifyMode {
    match engine {
        Engine::Dynamic => CertifyMode::Online,
        _ => CertifyMode::OnlineRetaining,
    }
}

/// Runs one equality cell: online monitor over a preserving tap, then
/// the post-hoc certifier over the same run's snapshot.
pub fn run_equality_point(params: &E16Params, seed: u64, engine: Engine) -> EqualityRow {
    let spec = account_spec(params.accounts);
    let rel = bank_relation();
    let mode = equality_mode(engine);
    let handle = engine.builder().certify(mode).collect_metrics().build();
    let monitor = handle
        .start_online_preserving(spec.clone(), Some(rel.clone()))
        .expect("certify mode is on");
    let objects: Vec<Arc<dyn Admission>> = (0..params.accounts)
        .map(|i| handle.account(ObjectId::new(i as u32 + 1), INITIAL_BALANCE))
        .collect();
    let (committed, _aborted) = drive(
        &handle,
        &objects,
        seed,
        params.threads,
        params.equality_txns,
        params.ops_per_txn,
    );
    let outcome = monitor.finish();
    let history = handle.manager().history();
    let post = certify_with_relation(handle.property(), &history, &spec, rel.as_ref());
    let agreed = outcome.certificate.verdict.agrees_with(&post.verdict)
        && outcome.certificate.committed == post.committed;
    EqualityRow {
        seed,
        engine: engine.label().to_string(),
        mode: mode.label().to_string(),
        committed,
        observed: outcome.observed,
        online_verdict: verdict_kind(&outcome.certificate.verdict),
        post_hoc_verdict: verdict_kind(&post.verdict),
        agreed,
        peak_retained: outcome.peak_retained,
    }
}

/// The long-horizon row: the retiring monitor over a destructive tap.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HorizonRow {
    /// Committed transactions.
    pub committed: u64,
    /// Events the monitor observed (≈ history length).
    pub observed: u64,
    /// The monitor's retained-set high-water mark (gated).
    pub peak_retained: usize,
    /// The gate: `threads × (ops_per_txn + 2) × 4 + 64`.
    pub retained_bound: usize,
    /// Final verdict kind.
    pub verdict: String,
    /// The same high-water mark as published to the metrics registry.
    pub metrics_retained_peak: u64,
    /// Events observed as counted by the metrics registry.
    pub metrics_observed: u64,
}

/// Runs the long-horizon point.
///
/// # Panics
///
/// Panics if the monitor refutes the run (the engines must produce
/// atomic histories) or the retained-set gate fails.
pub fn run_horizon_point(params: &E16Params) -> HorizonRow {
    let spec = account_spec(params.accounts);
    let rel = bank_relation();
    let handle = Engine::Dynamic
        .builder()
        .certify(CertifyMode::Online)
        .collect_metrics()
        .build();
    let monitor = handle
        .start_online(spec, Some(rel))
        .expect("certify mode is on");
    let objects: Vec<Arc<dyn Admission>> = (0..params.accounts)
        .map(|i| handle.account(ObjectId::new(i as u32 + 1), INITIAL_BALANCE))
        .collect();
    let (committed, _aborted) = drive(
        &handle,
        &objects,
        7,
        params.threads,
        params.horizon_txns,
        params.ops_per_txn,
    );
    let outcome = monitor.finish();
    assert!(
        !matches!(outcome.certificate.verdict, Verdict::Refuted(_)),
        "E16 FAILED: the dynamic engine produced a refuted history: {}",
        outcome.certificate
    );
    let retained_bound = params.threads * (params.ops_per_txn + 2) * 4 + 64;
    assert!(
        outcome.peak_retained <= retained_bound,
        "E16 FAILED: retained-set peak {} exceeds the open-footprint bound {} \
         over {} observed events",
        outcome.peak_retained,
        retained_bound,
        outcome.observed
    );
    let snapshot = handle.metrics().snapshot();
    HorizonRow {
        committed,
        observed: outcome.observed,
        peak_retained: outcome.peak_retained,
        retained_bound,
        verdict: verdict_kind(&outcome.certificate.verdict),
        metrics_retained_peak: snapshot.certifier_retained_peak,
        metrics_observed: snapshot.certifier_observed,
    }
}

/// The overhead comparison: bare vs metrics vs metrics + online monitor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OverheadRow {
    /// Median committed-txn/s with logging only.
    pub bare_tps: f64,
    /// Median committed-txn/s with the metrics registry attached.
    pub metrics_tps: f64,
    /// Median committed-txn/s with metrics + online certifier.
    pub online_tps: f64,
    /// Relative cost of metrics vs bare (`1 - metrics/bare`).
    pub metrics_overhead: f64,
    /// Relative cost of the certifier vs metrics-only.
    pub online_overhead: f64,
    /// The gate `online_overhead ≤ max(0.008, 2 × metrics_overhead)`.
    pub budget: f64,
    /// Whether the host had a spare core for the pump thread
    /// (`available_parallelism > worker threads`); without one the gate
    /// is meaningless and not enforced.
    pub headroom: bool,
    /// Whether the gate was enforced (full runs with headroom only).
    pub gated: bool,
}

/// One timed trial; returns committed-txn/s.
fn overhead_trial(params: &E16Params, seed: u64, certify: bool, metrics: bool) -> f64 {
    let mut builder = Engine::Dynamic.builder();
    if certify {
        builder = builder.certify(CertifyMode::Online);
    }
    if metrics {
        builder = builder.collect_metrics();
    }
    let handle = builder.build();
    let monitor = certify.then(|| {
        handle
            .start_online(account_spec(params.accounts), Some(bank_relation()))
            .expect("certify mode is on")
    });
    let objects: Vec<Arc<dyn Admission>> = (0..params.accounts)
        .map(|i| handle.account(ObjectId::new(i as u32 + 1), INITIAL_BALANCE))
        .collect();
    let start = Instant::now();
    let (committed, _) = drive(
        &handle,
        &objects,
        seed,
        params.threads,
        params.overhead_txns,
        params.ops_per_txn,
    );
    let wall = start.elapsed();
    if let Some(monitor) = monitor {
        // Draining the tail after the timed window is the certifier's
        // own business; the workload has already been measured.
        monitor.finish();
    }
    committed as f64 / wall.as_secs_f64()
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("throughputs are finite"));
    xs[xs.len() / 2]
}

/// Runs the overhead comparison and (on full runs) enforces the budget.
///
/// # Panics
///
/// With [`E16Params::gate_overhead`], panics if the certifier's relative
/// overhead exceeds `max(0.8%, 2 × metrics overhead)` — enforced only
/// when the host has a spare core for the pump thread (see the module
/// docs, gate 3).
pub fn run_overhead_point(params: &E16Params) -> OverheadRow {
    let trials = params.overhead_trials.max(1);
    let mut bare = Vec::new();
    let mut metrics = Vec::new();
    let mut online = Vec::new();
    for t in 0..trials {
        let seed = 100 + t as u64;
        bare.push(overhead_trial(params, seed, false, false));
        metrics.push(overhead_trial(params, seed, false, true));
        online.push(overhead_trial(params, seed, true, true));
    }
    let (bare_tps, metrics_tps, online_tps) = (median(bare), median(metrics), median(online));
    let metrics_overhead = 1.0 - metrics_tps / bare_tps;
    let online_overhead = 1.0 - online_tps / metrics_tps;
    let budget = f64::max(0.008, 2.0 * metrics_overhead.max(0.0));
    // The pump thread is off the hot path by design; the sub-percent
    // budget only measures tap cost when the host can actually schedule
    // the pump beside the workers (see the module docs, gate 3).
    let headroom = std::thread::available_parallelism()
        .map(|p| p.get() > params.threads)
        .unwrap_or(false);
    let gated = params.gate_overhead && headroom;
    if gated {
        assert!(
            online_overhead <= budget,
            "E16 FAILED: online certifier costs {:.2}% throughput, budget {:.2}% \
             (metrics layer itself costs {:.2}%)",
            online_overhead * 100.0,
            budget * 100.0,
            metrics_overhead * 100.0
        );
    }
    OverheadRow {
        bare_tps,
        metrics_tps,
        online_tps,
        metrics_overhead,
        online_overhead,
        budget,
        headroom,
        gated,
    }
}

/// The mid-stream violation demonstration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DemoRow {
    /// Stamp at which the monitor flagged the forged violation.
    pub flagged_at_stamp: u64,
    /// Events observed in total — strictly more than `flagged_at_stamp`,
    /// proving the flag was raised mid-run.
    pub observed: u64,
    /// The final verdict kind (refuted).
    pub verdict: String,
}

/// Forges a non-atomic pair into a live stream and asserts the monitor
/// flags it at the offending commit.
///
/// # Panics
///
/// Panics if no violation is flagged, or it is flagged only at finish.
pub fn run_demo_violation(params: &E16Params) -> DemoRow {
    let forged_set = ObjectId::new(9_999);
    let spec = account_spec(params.accounts).with_object(forged_set, IntSetSpec::new());
    let log = HistoryLog::new();
    let handle = Engine::Dynamic
        .builder()
        .certify(CertifyMode::Online)
        .log(log.clone())
        .collect_metrics()
        .build();
    let monitor = handle
        .start_online(spec, Some(bank_relation()))
        .expect("certify mode is on");
    let objects: Vec<Arc<dyn Admission>> = (0..params.accounts)
        .map(|i| handle.account(ObjectId::new(i as u32 + 1), INITIAL_BALANCE))
        .collect();
    // First half of the workload…
    drive(
        &handle,
        &objects,
        11,
        params.threads,
        params.equality_txns,
        params.ops_per_txn,
    );
    // …then the forged non-atomic pair, recorded straight into the live
    // log among real traffic: `b` observes `a`'s committed insert as
    // absent, so no precedes-consistent order exists.
    let (a, b) = (ActivityId::new(900_001), ActivityId::new(900_002));
    log.record(Event::invoke(a, forged_set, op("insert", [42])));
    log.record(Event::respond(a, forged_set, Value::ok()));
    log.record(Event::commit(a, forged_set));
    log.record(Event::invoke(b, forged_set, op("member", [42])));
    log.record(Event::respond(b, forged_set, Value::from(false)));
    log.record(Event::commit(b, forged_set));
    // …and the second half keeps the stream flowing past the flag.
    drive(
        &handle,
        &objects,
        12,
        params.threads,
        params.equality_txns,
        params.ops_per_txn,
    );
    let outcome = monitor.finish();
    let violation = outcome
        .violations
        .first()
        .unwrap_or_else(|| panic!("E16 FAILED: forged violation was not flagged"));
    assert!(
        violation.stamp < outcome.observed,
        "violation must carry the offending commit's stamp"
    );
    assert!(
        matches!(outcome.certificate.verdict, Verdict::Refuted(_)),
        "E16 FAILED: forged violation did not refute: {}",
        outcome.certificate
    );
    DemoRow {
        flagged_at_stamp: violation.stamp,
        observed: outcome.observed,
        verdict: verdict_kind(&outcome.certificate.verdict),
    }
}

/// The E16 report (`BENCH_e16.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E16Report {
    /// Self-identifying header.
    pub header: ReportHeader,
    /// The parameters the rows were measured under.
    pub params: E16Params,
    /// Equality cells: seeds × property engines.
    pub equality: Vec<EqualityRow>,
    /// The long-horizon bounded-memory row.
    pub horizon: HorizonRow,
    /// The overhead comparison.
    pub overhead: OverheadRow,
    /// The violation demonstration, when requested.
    pub demo: Option<DemoRow>,
}

impl E16Report {
    /// Serializes for the CI artifact.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("E16 report serializes")
    }

    /// Parses a committed artifact.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// Runs the full experiment.
///
/// # Panics
///
/// Panics if any equality cell disagrees, the horizon memory gate fails,
/// or (on gated runs) the overhead budget is exceeded.
pub fn run_e16(params: &E16Params) -> E16Report {
    let mut equality = Vec::new();
    for &seed in &params.seeds {
        for engine in Engine::PROPERTIES {
            let row = run_equality_point(params, seed, engine);
            assert!(
                row.agreed,
                "E16 FAILED: seed {} {}: online {} vs post-hoc {}",
                row.seed, row.engine, row.online_verdict, row.post_hoc_verdict
            );
            equality.push(row);
        }
    }
    let horizon = run_horizon_point(params);
    let overhead = run_overhead_point(params);
    let demo = params.demo_violation.then(|| run_demo_violation(params));
    E16Report {
        header: ReportHeader::new("e16"),
        params: params.clone(),
        equality,
        horizon,
        overhead,
        demo,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_equality_cells_agree_across_properties() {
        let params = E16Params::smoke();
        for engine in Engine::PROPERTIES {
            let row = run_equality_point(&params, 1, engine);
            assert!(
                row.agreed,
                "{}: online {} vs post-hoc {}",
                row.engine, row.online_verdict, row.post_hoc_verdict
            );
            assert!(row.observed > 0, "monitor must consume the stream");
        }
    }

    #[test]
    fn smoke_horizon_stays_bounded() {
        let params = E16Params::smoke();
        let row = run_horizon_point(&params);
        assert!(row.peak_retained <= row.retained_bound);
        assert_eq!(row.metrics_observed, row.observed);
        assert!(row.observed >= 4 * 400);
    }

    #[test]
    fn smoke_demo_violation_flags_mid_stream() {
        let params = E16Params::smoke();
        let row = run_demo_violation(&params);
        assert_eq!(row.verdict, "refuted");
        assert!(row.flagged_at_stamp < row.observed);
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = run_e16(&E16Params {
            seeds: vec![1],
            equality_txns: 10,
            horizon_txns: 50,
            overhead_trials: 1,
            overhead_txns: 10,
            demo_violation: false,
            gate_overhead: false,
            ..E16Params::smoke()
        });
        let back = E16Report::from_json(&report.to_json()).unwrap();
        assert_eq!(back.header.experiment, "e16");
        assert_eq!(back.equality.len(), 3);
        assert!(back.demo.is_none());
    }
}
