//! E2 — the §5.1 FIFO queue and the scheduler-model limitation.
//!
//! Concurrent producer transactions each enqueue a batch; a drainer then
//! dequeues everything. Dynamic atomicity admits the producers'
//! interleaved enqueues (each producer's batch stays contiguous in every
//! serialization); commutativity locking and 2PL serialize producers
//! (`enqueue(1)` does not commute with `enqueue(2)`).
//!
//! The checker-level half of E2 — the paper's literal history being
//! dynamic atomic yet unproducible by the Figure 5-1 scheduler model — is
//! asserted by [`paper_history_verdicts`] (and its test) and printed by
//! the `experiments` binary.

use crate::engines::Engine;
use crate::workloads::hold;
use atomicity_baselines::SchedulerModel;
use atomicity_spec::specs::FifoQueueSpec;
use atomicity_spec::{atomicity::is_dynamic_atomic, op, paper, ObjectId};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Parameters of the E2 workload.
#[derive(Debug, Clone)]
pub struct QueueParams {
    /// Concurrent producer threads.
    pub producers: usize,
    /// Batches (transactions) per producer.
    pub txns_per_producer: usize,
    /// Enqueues per batch.
    pub batch: usize,
    /// Simulated in-transaction work (µs).
    pub hold_micros: u64,
}

impl Default for QueueParams {
    fn default() -> Self {
        QueueParams {
            producers: 4,
            txns_per_producer: 10,
            batch: 4,
            hold_micros: 200,
        }
    }
}

/// Measured outcome of one E2 run.
#[derive(Debug, Clone)]
pub struct QueueOutcome {
    /// The engine measured.
    pub engine: Engine,
    /// Wall-clock duration of the producer phase.
    pub wall: Duration,
    /// Producer transactions committed.
    pub committed: u64,
    /// Producer transactions aborted.
    pub aborted: u64,
    /// Items drained afterwards (integrity check).
    pub drained: u64,
    /// Committed producer transactions per second.
    pub throughput: f64,
}

/// Runs the E2 producer workload for one engine, then drains.
pub fn run_queue(engine: Engine, params: &QueueParams) -> QueueOutcome {
    let handle = engine.builder().build();
    let mgr = handle.manager().clone();
    let queue = handle.queue(ObjectId::new(1));

    let start = Instant::now();
    let mut handles = Vec::new();
    for p in 0..params.producers {
        let mgr = mgr.clone();
        let queue = Arc::clone(&queue);
        let params = params.clone();
        handles.push(std::thread::spawn(move || {
            let (mut committed, mut aborted) = (0u64, 0u64);
            'txns: for t in 0..params.txns_per_producer {
                let txn = mgr.begin();
                for i in 0..params.batch {
                    let item = (p * 1_000_000 + t * 1_000 + i) as i64;
                    if queue.invoke(&txn, op("enqueue", [item])).is_err() {
                        mgr.abort(txn);
                        aborted += 1;
                        continue 'txns;
                    }
                    hold(params.hold_micros);
                }
                if mgr.commit(txn).is_ok() {
                    committed += 1;
                } else {
                    aborted += 1;
                }
            }
            (committed, aborted)
        }));
    }
    let (mut committed, mut aborted) = (0u64, 0u64);
    for h in handles {
        let (c, a) = h.join().expect("producer panicked");
        committed += c;
        aborted += a;
    }
    let wall = start.elapsed();

    // Drain everything in one transaction; count items.
    let mut drained = 0u64;
    let txn = mgr.begin();
    while let Ok(v) = queue.invoke(&txn, op("dequeue", [] as [i64; 0])) {
        if v == atomicity_spec::Value::Nil {
            break;
        }
        drained += 1;
    }
    mgr.commit(txn).expect("drain commit");

    QueueOutcome {
        engine,
        wall,
        committed,
        aborted,
        drained,
        throughput: committed as f64 / wall.as_secs_f64(),
    }
}

/// The checker-level claim of E2: the paper's interleaved-enqueue history
/// is dynamic atomic, yet no scheduler-model execution can produce it.
/// Returns `(dynamic_atomic, scheduler_can_produce)`.
pub fn paper_history_verdicts() -> (bool, bool) {
    let h = paper::queue_interleaved_enqueues();
    let spec = paper::queue_system();
    let storage = SchedulerModel::new(paper::X, FifoQueueSpec::new());
    (is_dynamic_atomic(&h, &spec), storage.can_produce(&h))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(engine: Engine) -> QueueOutcome {
        run_queue(
            engine,
            &QueueParams {
                producers: 3,
                txns_per_producer: 4,
                batch: 3,
                hold_micros: 100,
            },
        )
    }

    #[test]
    fn all_engines_preserve_every_item() {
        for engine in Engine::ALL {
            let out = quick(engine);
            assert_eq!(out.committed + out.aborted, 12, "{engine}");
            assert_eq!(
                out.drained,
                out.committed * 3,
                "{engine}: items lost or invented"
            );
        }
    }

    #[test]
    fn scheduler_model_rejects_paper_history() {
        let (dynamic_ok, scheduler_ok) = paper_history_verdicts();
        assert!(dynamic_ok, "the paper's history is dynamic atomic");
        assert!(
            !scheduler_ok,
            "the scheduler model must be unable to produce it"
        );
    }

    #[test]
    fn dynamic_producers_outpace_locked_producers() {
        let p = QueueParams {
            producers: 4,
            txns_per_producer: 5,
            batch: 3,
            hold_micros: 2_000,
        };
        let dynamic = run_queue(Engine::Dynamic, &p);
        let locked = run_queue(Engine::TwoPhaseLocking, &p);
        assert!(
            dynamic.wall < locked.wall,
            "dynamic {:?} vs 2PL {:?}",
            dynamic.wall,
            locked.wall
        );
    }
}
