//! E14 — contended hot-path admission: the unified [`Admission`] API
//! measured across its three variants on ONE shared object.
//!
//! Every worker deposits into the same bank account, so admission itself
//! is the serialization point. The three variants compared:
//!
//! - **locked** — the classic path: every operation takes the object
//!   mutex and (dynamic/hybrid) replays permutations of the pending
//!   intentions; past the `max_check` bound the engine conservatively
//!   conflicts, so 8 deposit-only workers serialize even though every
//!   pair of deposits commutes.
//! - **fast-path** — the synthesized conflict table
//!   (`atomicity_lint::standard_syntheses`) is installed
//!   ([`crate::EngineBuilder::fast_path`]): commuting pairs are admitted
//!   in O(pending ops) without permutation replay and without the
//!   `max_check` bail, and hybrid read-only activities admit off the
//!   [`atomicity_core::SeqlockCell`] snapshot without the object mutex.
//! - **batched** — fast path plus flat combining
//!   ([`atomicity_core::Combiner`]): threads enqueue detached requests
//!   and one combiner drains the queue through
//!   [`Admission::admit_batch`], one object-lock acquisition per batch.
//!
//! With [`E14Params::verify`] set, every run ends with the post-hoc
//! correctness gate: the recorded history must be certified by the
//! linear-time certifier ([`atomicity_lint::certify()`]) under the
//! engine's property, and the committed balance must equal the committed
//! deposits — the fast paths must be invisible to the history.

use crate::engines::{AdmissionPath, Engine};
use crate::workloads::hold;
use atomicity_core::{Admission, AdmissionOutcome, Combiner, Protocol, StatsSnapshot, TxnManager};
use atomicity_lint::{certify, certify_with_relation, Property};
use atomicity_spec::specs::BankAccountSpec;
use atomicity_spec::{op, ObjectId, SystemSpec, Value};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The engine/path matrix E14 sweeps: the two engines with a table fast
/// path under all three variants, and the lock baselines (for which the
/// variants coincide) under the classic path as the floor.
pub fn e14_matrix() -> Vec<(Engine, AdmissionPath)> {
    vec![
        (Engine::Dynamic, AdmissionPath::Locked),
        (Engine::Dynamic, AdmissionPath::FastPath),
        (Engine::Dynamic, AdmissionPath::Batched),
        (Engine::Hybrid, AdmissionPath::Locked),
        (Engine::Hybrid, AdmissionPath::FastPath),
        (Engine::Hybrid, AdmissionPath::Batched),
        (Engine::CommutativityLocking, AdmissionPath::Locked),
        (Engine::TwoPhaseLocking, AdmissionPath::Locked),
    ]
}

/// Parameters of the E14 workload.
#[derive(Debug, Clone)]
pub struct E14Params {
    /// Update-worker counts to sweep.
    pub threads: Vec<usize>,
    /// Update transactions per worker.
    pub txns_per_thread: usize,
    /// Deposits per transaction.
    pub ops_per_txn: usize,
    /// Read-only auditor threads (hybrid only: they drive
    /// [`Admission::read_at`], i.e. the seqlock snapshot path).
    pub readers: usize,
    /// Read-only transactions per auditor.
    pub reads_per_reader: usize,
    /// Simulated in-transaction work (µs).
    pub hold_micros: u64,
    /// Run the post-hoc certifier + balance-oracle checks.
    pub verify: bool,
}

impl E14Params {
    /// The full measurement sweep. The in-transaction hold keeps
    /// intentions pending long enough that admission is genuinely
    /// contended (the same shape as the E10 baseline workload).
    pub fn full() -> Self {
        E14Params {
            threads: vec![1, 2, 4, 8],
            txns_per_thread: 150,
            ops_per_txn: 4,
            readers: 2,
            reads_per_reader: 100,
            hold_micros: 50,
            verify: true,
        }
    }

    /// Shrunk sweep for `--quick`.
    pub fn quick() -> Self {
        E14Params {
            threads: vec![2, 8],
            txns_per_thread: 50,
            ..E14Params::full()
        }
    }

    /// CI wiring check: the contended 8-thread point only, small counts,
    /// correctness checks on.
    pub fn smoke() -> Self {
        E14Params {
            threads: vec![8],
            txns_per_thread: 15,
            ops_per_txn: 2,
            readers: 1,
            reads_per_reader: 10,
            hold_micros: 100,
            verify: true,
        }
    }
}

/// Measured outcome of one E14 cell (engine × path × thread count).
#[derive(Debug, Clone)]
pub struct E14Outcome {
    /// The engine measured.
    pub engine: Engine,
    /// The admission-path variant driven.
    pub path: AdmissionPath,
    /// Update workers.
    pub threads: usize,
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// Update transactions committed.
    pub committed: u64,
    /// Update transactions aborted.
    pub aborted: u64,
    /// Committed update transactions per second.
    pub throughput: f64,
    /// Read-only transactions committed (hybrid auditors).
    pub reads_committed: u64,
    /// Contention counters for the shared object.
    pub stats: StatsSnapshot,
}

/// Runs one E14 cell.
///
/// # Panics
///
/// With [`E14Params::verify`] set, panics if the linear certifier rejects
/// the recorded history or the committed balance disagrees with the
/// committed deposits.
pub fn run_e14(
    engine: Engine,
    path: AdmissionPath,
    threads: usize,
    params: &E14Params,
) -> E14Outcome {
    let handle = engine
        .builder()
        .fast_path(path != AdmissionPath::Locked)
        .build();
    let mgr = handle.manager().clone();
    let obj = handle.account(ObjectId::new(1), 0);
    let combiner = (path == AdmissionPath::Batched).then(|| Arc::new(Combiner::new()));

    let start = Instant::now();
    let mut workers = Vec::new();
    for _ in 0..threads {
        let mgr = mgr.clone();
        let obj = Arc::clone(&obj);
        let combiner = combiner.clone();
        let params = params.clone();
        workers.push(std::thread::spawn(move || {
            update_worker(&mgr, &obj, combiner.as_deref(), &params)
        }));
    }
    let mut auditors = Vec::new();
    if engine.protocol() == Protocol::Hybrid {
        for _ in 0..params.readers {
            let mgr = mgr.clone();
            let obj = Arc::clone(&obj);
            let reads = params.reads_per_reader;
            auditors.push(std::thread::spawn(move || read_worker(&mgr, &obj, reads)));
        }
    }
    let (mut committed, mut aborted) = (0u64, 0u64);
    for w in workers {
        let (c, a) = w.join().expect("e14 update worker panicked");
        committed += c;
        aborted += a;
    }
    let reads_committed: u64 = auditors
        .into_iter()
        .map(|a| a.join().expect("e14 auditor panicked"))
        .sum();
    let wall = start.elapsed();

    if params.verify {
        verify_run(engine, &mgr, &obj, committed, params);
    }

    E14Outcome {
        engine,
        path,
        threads,
        wall,
        committed,
        aborted,
        throughput: committed as f64 / wall.as_secs_f64(),
        reads_committed,
        stats: obj.metrics().stats(),
    }
}

/// One update worker: `txns_per_thread` transactions of commuting
/// deposits, driven through the path variant's admission entry.
fn update_worker(
    mgr: &TxnManager,
    obj: &Arc<dyn Admission>,
    combiner: Option<&Combiner>,
    params: &E14Params,
) -> (u64, u64) {
    let (mut committed, mut aborted) = (0u64, 0u64);
    for _ in 0..params.txns_per_thread {
        let txn = mgr.begin();
        let mut failed = false;
        for _ in 0..params.ops_per_txn {
            let operation = op("deposit", [1]);
            let ok = match combiner {
                // Batched: enqueue on the combiner and spin on Blocked —
                // the combiner answers on some thread's drain.
                Some(c) => loop {
                    match c.submit(obj.as_ref(), &txn, operation.clone()) {
                        AdmissionOutcome::Admitted(_) => break true,
                        AdmissionOutcome::Blocked { .. } => std::thread::yield_now(),
                        AdmissionOutcome::Rejected(_) => break false,
                    }
                },
                // Locked / fast-path: the classic blocking invoke, which
                // now routes through the same admission core.
                None => obj.invoke(&txn, operation).is_ok(),
            };
            if !ok {
                failed = true;
                break;
            }
        }
        hold(params.hold_micros);
        if failed {
            mgr.abort(txn);
            aborted += 1;
        } else if mgr.commit(txn).is_ok() {
            committed += 1;
        } else {
            aborted += 1;
        }
    }
    (committed, aborted)
}

/// One hybrid auditor: timestamped read-only balance reads through
/// [`Admission::read_at`] — the mutex-free seqlock path when the fast
/// path is installed.
fn read_worker(mgr: &TxnManager, obj: &Arc<dyn Admission>, reads: usize) -> u64 {
    let mut committed = 0u64;
    for _ in 0..reads {
        let txn = mgr.begin_read_only();
        if obj.read_at(&txn, op("balance", [] as [i64; 0])).is_ok() {
            if mgr.commit(txn).is_ok() {
                committed += 1;
            }
        } else {
            mgr.abort(txn);
        }
    }
    committed
}

/// The correctness gate: whatever the admission path skipped, the
/// recorded history must still satisfy the engine's property (linear
/// certifier) and the committed state must equal the committed deposits.
fn verify_run(
    engine: Engine,
    mgr: &TxnManager,
    obj: &Arc<dyn Admission>,
    committed: u64,
    params: &E14Params,
) {
    let h = mgr.history();
    let property = match engine.protocol() {
        Protocol::Dynamic => Property::Dynamic,
        Protocol::Static => Property::Static,
        Protocol::Hybrid => Property::Hybrid,
    };
    let spec = SystemSpec::new().with_object(ObjectId::new(1), BankAccountSpec::new());
    // Contended commuting runs leave a genuinely partial precedes order
    // past the certifier's enumeration bound; the synthesized bank table
    // lets it decide those via the commutativity reduction.
    let cert = match property {
        Property::Dynamic => {
            let table = crate::synthesized_suite()
                .table("bank")
                .expect("synthesized bank table")
                .clone();
            certify_with_relation(property, &h, &spec, &table)
        }
        _ => certify(property, &h, &spec),
    };
    assert!(
        cert.is_certified(),
        "{engine}: e14 history failed certification: {cert}"
    );
    let reader = mgr.begin();
    let balance = obj
        .invoke(&reader, op("balance", [] as [i64; 0]))
        .expect("post-run balance read");
    mgr.commit(reader).expect("post-run reader commit");
    assert_eq!(
        balance,
        Value::from(committed as i64 * params.ops_per_txn as i64),
        "{engine}: committed balance disagrees with committed deposits"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_cell_of_the_matrix_runs_and_verifies() {
        let params = E14Params {
            threads: vec![3],
            txns_per_thread: 6,
            ops_per_txn: 2,
            readers: 1,
            reads_per_reader: 5,
            hold_micros: 0,
            verify: true,
        };
        for (engine, path) in e14_matrix() {
            let out = run_e14(engine, path, 3, &params);
            assert_eq!(out.committed + out.aborted, 18, "{engine}/{path}");
            assert!(out.stats.admissions > 0, "{engine}/{path}");
            if engine.protocol() == Protocol::Hybrid {
                assert_eq!(out.reads_committed, 5, "{engine}/{path}");
            }
        }
    }

    #[test]
    fn fast_path_grants_table_admissions_under_contention() {
        let params = E14Params {
            threads: vec![8],
            txns_per_thread: 8,
            ops_per_txn: 2,
            readers: 0,
            reads_per_reader: 0,
            // Keep intentions pending long enough to overlap — without
            // contention the lone-activity early grant handles everything
            // and the table path never fires.
            hold_micros: 100,
            verify: true,
        };
        let out = run_e14(Engine::Dynamic, AdmissionPath::FastPath, 8, &params);
        assert_eq!(out.committed, 64);
        assert!(
            out.stats.fast_admissions > 0,
            "contended commuting deposits must hit the table fast path"
        );
    }
}
