//! E11 — WAL commit throughput: group commit vs. sync-each.
//!
//! Every committer must wait for its log records to reach the disk, so
//! commit throughput is gated by fsync. [`SyncPolicy::SyncEach`] pays one
//! device flush per record; [`SyncPolicy::GroupCommit`] lets a dedicated
//! flusher thread retire a whole batch of committers with a single fsync
//! after lingering a tunable window. This workload measures the trade
//! across thread counts and windows: committed transactions per second,
//! fsyncs actually issued, mean batch size, and flush-latency percentiles
//! (from [`MetricsRegistry::wal_flush`] instrumentation).
//!
//! Each configuration runs against a fresh WAL directory under the system
//! temp dir; directories are removed when the run finishes.

use crate::report::{LatencySummary, ReportHeader};
use atomicity_core::recovery::{DurableLog, LogRecord, RecordKind};
use atomicity_core::MetricsRegistry;
use atomicity_durable::{SyncPolicy, Wal, WalOptions};
use atomicity_spec::{op, ActivityId, ObjectId, Value};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Workload shape for one E11 sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WalBenchParams {
    /// Transactions each writer thread commits (2 records + 1 sync per
    /// transaction: a prepare and a commit).
    pub txns_per_thread: usize,
    /// Writer thread counts to sweep.
    pub threads: Vec<usize>,
    /// Group-commit windows (µs) to sweep; sync-each runs once per thread
    /// count as the baseline.
    pub windows_us: Vec<u64>,
}

impl WalBenchParams {
    /// The full sweep the committed `BENCH_e11.json` is generated from.
    pub fn full() -> Self {
        WalBenchParams {
            txns_per_thread: 200,
            threads: vec![1, 2, 4, 8],
            windows_us: vec![50, 200, 1000],
        }
    }

    /// A reduced sweep for `--quick`.
    pub fn quick() -> Self {
        WalBenchParams {
            txns_per_thread: 100,
            threads: vec![1, 4, 8],
            windows_us: vec![200],
        }
    }

    /// A CI wiring check: tiny, but still multi-threaded.
    pub fn smoke() -> Self {
        WalBenchParams {
            txns_per_thread: 25,
            threads: vec![2],
            windows_us: vec![100],
        }
    }
}

/// One measured configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WalBenchRow {
    /// `"sync-each"` or `"group-commit"`.
    pub mode: String,
    /// The group-commit window in µs (absent for sync-each).
    pub window_us: Option<u64>,
    /// Writer threads.
    pub threads: usize,
    /// Transactions committed (threads × txns_per_thread).
    pub txns: u64,
    /// Wall-clock time for the whole run, milliseconds.
    pub elapsed_ms: f64,
    /// Committed transactions per second.
    pub commits_per_sec: f64,
    /// Device flushes issued (from the WAL's metrics instrumentation).
    pub fsyncs: u64,
    /// Mean records retired per flush.
    pub mean_batch: f64,
    /// Flush (fsync) latency percentiles, nanoseconds.
    pub flush_ns: LatencySummary,
}

/// The complete E11 report, serialized to `BENCH_e11.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WalBenchReport {
    /// Shared report header (`experiment: "e11"`).
    pub header: ReportHeader,
    /// The sweep that produced the rows.
    pub params: WalBenchParams,
    /// One row per (mode, window, threads) configuration.
    pub rows: Vec<WalBenchRow>,
}

impl WalBenchReport {
    /// Group-commit speedup over sync-each at `threads` writers: the
    /// *best* group-commit row's throughput divided by the sync-each
    /// baseline. `None` if either side is missing.
    pub fn group_commit_speedup(&self, threads: usize) -> Option<f64> {
        let base = self
            .rows
            .iter()
            .find(|r| r.mode == "sync-each" && r.threads == threads)?
            .commits_per_sec;
        let best = self
            .rows
            .iter()
            .filter(|r| r.mode == "group-commit" && r.threads == threads)
            .map(|r| r.commits_per_sec)
            .fold(f64::NAN, f64::max);
        (base > 0.0 && best.is_finite()).then(|| best / base)
    }

    /// Pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("reports always serialize")
    }

    /// Parses a report back (CI artifact checks, tests).
    ///
    /// # Errors
    ///
    /// Propagates the parse error for malformed JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

/// A fresh, collision-free WAL directory under the system temp dir.
fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("atomicity-e11-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs one (policy, threads) configuration and measures it.
fn run_one(tag: &str, sync: SyncPolicy, threads: usize, txns_per_thread: usize) -> WalBenchRow {
    let dir = bench_dir(tag);
    let metrics = MetricsRegistry::new();
    let (wal, _info) = Wal::open(
        &dir,
        WalOptions {
            sync,
            metrics: metrics.clone(),
            ..WalOptions::default()
        },
    )
    .expect("open bench WAL");
    let log: Arc<dyn DurableLog> = Arc::new(wal);

    let begun = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|tid| {
            let log = Arc::clone(&log);
            std::thread::spawn(move || {
                for n in 0..txns_per_thread {
                    let txn = ActivityId::new((tid * txns_per_thread + n) as u32 + 1);
                    let object = ObjectId::new(1);
                    log.append(LogRecord {
                        txn,
                        object,
                        kind: RecordKind::Prepare {
                            ops: vec![(op("deposit", [5i64]), Value::ok())],
                        },
                    });
                    log.append(LogRecord {
                        txn,
                        object,
                        kind: RecordKind::Commit,
                    });
                    // The commit point: block until both records are
                    // durable, exactly like `IntentionsStore::commit`.
                    log.sync();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("bench writer panicked");
    }
    let elapsed = begun.elapsed();
    drop(log);
    let _ = std::fs::remove_dir_all(&dir);

    let snap = metrics.snapshot();
    let txns = (threads * txns_per_thread) as u64;
    let (mode, window_us) = match sync {
        SyncPolicy::SyncEach => ("sync-each".to_string(), None),
        SyncPolicy::GroupCommit { window } => {
            ("group-commit".to_string(), Some(window.as_micros() as u64))
        }
    };
    WalBenchRow {
        mode,
        window_us,
        threads,
        txns,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        commits_per_sec: txns as f64 / elapsed.as_secs_f64().max(1e-9),
        fsyncs: snap.wal_flush_ns.count,
        mean_batch: if snap.wal_batch.count == 0 {
            0.0
        } else {
            snap.wal_batch.sum_nanos as f64 / snap.wal_batch.count as f64
        },
        flush_ns: LatencySummary::from_histogram(&snap.wal_flush_ns),
    }
}

/// Runs the full sweep: for every thread count, the sync-each baseline
/// then group commit at every window.
pub fn run_wal_bench(params: &WalBenchParams) -> WalBenchReport {
    let mut rows = Vec::new();
    for &threads in &params.threads {
        rows.push(run_one(
            &format!("se-{threads}"),
            SyncPolicy::SyncEach,
            threads,
            params.txns_per_thread,
        ));
        for &window_us in &params.windows_us {
            rows.push(run_one(
                &format!("gc-{threads}-{window_us}"),
                SyncPolicy::GroupCommit {
                    window: Duration::from_micros(window_us),
                },
                threads,
                params.txns_per_thread,
            ));
        }
    }
    WalBenchReport {
        header: ReportHeader::new("e11"),
        params: params.clone(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_measures_every_configuration() {
        let params = WalBenchParams::smoke();
        let report = run_wal_bench(&params);
        // One sync-each row + one per window, per thread count.
        assert_eq!(
            report.rows.len(),
            params.threads.len() * (1 + params.windows_us.len())
        );
        for row in &report.rows {
            assert_eq!(row.txns, (row.threads * params.txns_per_thread) as u64);
            assert!(row.commits_per_sec > 0.0, "{row:?}");
            assert!(row.fsyncs > 0, "flush instrumentation is mute: {row:?}");
            assert!(row.mean_batch >= 1.0, "{row:?}");
        }
        // Sync-each issues at least one fsync per record; group commit
        // must batch (strictly fewer fsyncs than records written).
        let records = (params.threads[0] * params.txns_per_thread * 2) as u64;
        let se = &report.rows[0];
        assert_eq!(se.mode, "sync-each");
        assert!(se.fsyncs >= records, "{se:?}");
        let gc = report
            .rows
            .iter()
            .find(|r| r.mode == "group-commit")
            .unwrap();
        assert!(gc.fsyncs < records, "group commit never batched: {gc:?}");
        assert_eq!(report.header.experiment, "e11");
        let back = WalBenchReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back.rows.len(), report.rows.len());
    }

    #[test]
    fn speedup_accessor_reads_the_right_rows() {
        let mk = |mode: &str, window: Option<u64>, threads: usize, tput: f64| WalBenchRow {
            mode: mode.to_string(),
            window_us: window,
            threads,
            txns: 100,
            elapsed_ms: 1.0,
            commits_per_sec: tput,
            fsyncs: 10,
            mean_batch: 2.0,
            flush_ns: LatencySummary {
                count: 10,
                p50: None,
                p95: None,
                p99: None,
                mean: None,
            },
        };
        let report = WalBenchReport {
            header: ReportHeader::new("e11"),
            params: WalBenchParams::smoke(),
            rows: vec![
                mk("sync-each", None, 8, 1000.0),
                mk("group-commit", Some(50), 8, 1500.0),
                mk("group-commit", Some(200), 8, 3500.0),
            ],
        };
        assert_eq!(report.group_commit_speedup(8), Some(3.5));
        assert_eq!(report.group_commit_speedup(4), None);
    }
}
