//! E15 — partitioned scale-out and dependency-logged parallel recovery.
//!
//! Two halves, one report (`BENCH_e15.json`):
//!
//! 1. **Scale-out.** The same open-loop bank workload — "millions of
//!    users" hitting mostly-distinct accounts — is pushed through the
//!    partitioned service ([`DistService`]) at increasing shard counts.
//!    Because shards carry a service-time model (`per_batch + per_op·n`),
//!    commits/sec of *simulated* time is a real capacity measure: one
//!    shard saturates and queues, sixteen shards drain the same offered
//!    load almost embarrassingly in parallel. Simulated time makes every
//!    row seed-deterministic (`trace_hash`/`state_digest` replay
//!    bit-for-bit); only the host's wall-clock sidebar varies.
//!
//! 2. **Recovery.** Marketplace logs of increasing length are recovered
//!    two ways: serially through the production value-log path
//!    ([`serial_replay`], i.e. [`IntentionsStore::recover`]), and in
//!    parallel from the dependency graph the `CommitDep` footprints
//!    describe ([`parallel_replay`]). Both states are certified equal on
//!    every run. Rows pair dependency-logged logs with plain value logs
//!    of the same history, so the table shows both what parallelism buys
//!    and what value logging pays extra (footprint recomputation) to get
//!    it. These timings are host wall-clock and live only here, in the
//!    bench crate — the deterministic crates never read a clock.
//!
//! [`IntentionsStore::recover`]: atomicity_core::recovery::IntentionsStore::recover

use crate::report::ReportHeader;
use atomicity_core::{KeyFootprint, LogRecord, RecordKind};
use atomicity_dist::deplog::{
    committed_records, map_commutes, parallel_replay, serial_replay, DepGraph,
};
use atomicity_dist::{DistConfig, DistService, ShardKvSpec, Workload, WorkloadKind};
use atomicity_durable::frame::encode_frame;
use atomicity_sim::SimRng;
use atomicity_spec::{ActivityId, ObjectId};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Parameters of one E15 run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E15Params {
    /// Root seed for the service runs and the generated recovery logs.
    pub seed: u64,
    /// Shard counts swept by the scale-out half.
    pub shard_counts: Vec<u32>,
    /// Open-loop client streams per run.
    pub clients: usize,
    /// Transactions per client per tick.
    pub requests_per_tick: u32,
    /// Ticks per client.
    pub ticks: u64,
    /// Account keyspace ("users"); large ⇒ distinct-key traffic.
    pub accounts: u64,
    /// Committed-transaction counts swept by the recovery half.
    pub recovery_commits: Vec<usize>,
    /// Replay worker threads for the parallel recovery.
    pub threads: usize,
    /// Marketplace listing slots in the recovery logs (small ⇒ real
    /// non-commuting `set` chains in the dependency graph).
    pub listings: u64,
}

impl E15Params {
    /// The full sweep the committed `BENCH_e15.json` records.
    ///
    /// The offered load (clients × requests/tick per tick interval) is
    /// sized to several times one shard's service capacity, so the sweep
    /// measures how many shards the load actually needs rather than how
    /// fast the clients submit.
    pub fn full() -> Self {
        E15Params {
            seed: 1,
            shard_counts: vec![1, 2, 4, 8, 16],
            clients: 8,
            requests_per_tick: 64,
            ticks: 40,
            accounts: 1_000_000,
            recovery_commits: vec![1_000, 5_000, 20_000],
            threads: 8,
            listings: 64,
        }
    }

    /// CI wiring check: seconds, not minutes.
    pub fn smoke() -> Self {
        E15Params {
            shard_counts: vec![1, 8],
            clients: 2,
            requests_per_tick: 64,
            ticks: 4,
            accounts: 10_000,
            recovery_commits: vec![300],
            threads: 4,
            ..E15Params::full()
        }
    }

    /// The service configuration for one shard count of the sweep.
    ///
    /// The coordinator timeout is stretched far past the drain time of
    /// the deliberately-overloaded single-shard point: this sweep
    /// measures capacity, not overload shedding, so backlogged
    /// transactions must commit late instead of timing out.
    pub fn service_config(&self, shards: u32) -> DistConfig {
        DistConfig {
            seed: self.seed,
            shards,
            clients: self.clients,
            requests_per_tick: self.requests_per_tick,
            ticks: self.ticks,
            accounts: self.accounts,
            workload: WorkloadKind::Bank,
            dep_logging: true,
            txn_timeout: 10_000_000,
            resolve_timeout: 2_000_000,
            ..DistConfig::default()
        }
    }
}

/// One shard count of the scale-out sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalingRow {
    /// Shard count.
    pub shards: u32,
    /// Transactions submitted / committed / aborted.
    pub submitted: u64,
    /// Committed transactions.
    pub committed: u64,
    /// Aborted transactions.
    pub aborted: u64,
    /// Simulated time of the last decision (µs).
    pub decided_by_us: u64,
    /// Committed transactions per second of simulated time.
    pub commits_per_sec: f64,
    /// Replay fingerprint: the run's rolling trace hash.
    pub trace_hash: u64,
    /// Replay fingerprint: digest of final states + decisions.
    pub state_digest: u64,
}

/// Runs one service at `shards` and reduces it to a row.
pub fn run_scaling_point(params: &E15Params, shards: u32) -> ScalingRow {
    let mut service = DistService::new(params.service_config(shards));
    service.run_to_quiescence();
    service
        .verify()
        .unwrap_or_else(|e| panic!("E15 scale-out run at {shards} shards is unsound: {e}"));
    let stats = service.stats();
    let decided_by_us = stats.last_decision_at.max(1);
    ScalingRow {
        shards,
        submitted: stats.submitted,
        committed: stats.committed,
        aborted: stats.aborted,
        decided_by_us,
        commits_per_sec: stats.committed as f64 * 1e6 / decided_by_us as f64,
        trace_hash: service.trace_hash(),
        state_digest: service.state_digest(),
    }
}

/// Generates a marketplace history of `commits` committed transactions
/// as one shard's durable log — `CommitDep` records carrying footprints
/// when `dep_logged`, plain value-log `Commit` records otherwise.
pub fn generate_log(seed: u64, commits: usize, listings: u64, dep_logged: bool) -> Vec<LogRecord> {
    let spec = ShardKvSpec::new();
    let workload = Workload::new(WorkloadKind::Marketplace, 10_000, 0.2, 16, listings);
    let mut rng = SimRng::new(seed);
    let object = ObjectId::new(1);
    let mut log = Vec::with_capacity(commits * 2);
    for i in 0..commits {
        let txn = ActivityId::new(i as u32 + 1);
        let ops = workload.next_txn(&mut rng, i as u32);
        let kind = if dep_logged {
            RecordKind::CommitDep {
                footprint: KeyFootprint::from_ops(&spec, &ops),
            }
        } else {
            RecordKind::Commit
        };
        log.push(LogRecord {
            txn,
            object,
            kind: RecordKind::Prepare { ops },
        });
        log.push(LogRecord { txn, object, kind });
    }
    log
}

/// One (log size, logging mode) cell of the recovery comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecoveryRow {
    /// Committed transactions in the log.
    pub commits: usize,
    /// Log records (prepares + outcomes).
    pub records: usize,
    /// On-disk size of the log under the WAL frame encoding (bytes).
    pub log_bytes: usize,
    /// Whether commit records carried footprints (`CommitDep`).
    pub dep_logged: bool,
    /// Serial value-log replay wall time (ns) — the production path.
    pub serial_ns: u64,
    /// Dependency-graph parallel replay wall time (ns), including graph
    /// construction (and footprint recomputation when `!dep_logged`).
    pub parallel_ns: u64,
    /// `serial_ns / parallel_ns`.
    pub speedup: f64,
    /// Dependency edges kept.
    pub edges: usize,
    /// Candidate pairs pruned as commuting (the data-dependent win).
    pub pruned_commuting: usize,
    /// Replay worker threads.
    pub threads: usize,
}

/// Times both recovery strategies over one generated log and certifies
/// that they agree.
///
/// # Panics
///
/// Panics if the parallel state diverges from the serial state — that
/// would mean the synthesized commutativity relation is unsound.
pub fn run_recovery_point(
    seed: u64,
    commits: usize,
    listings: u64,
    dep_logged: bool,
    threads: usize,
) -> RecoveryRow {
    let log = generate_log(seed, commits, listings, dep_logged);
    let log_bytes: usize = log.iter().map(|r| encode_frame(r).len()).sum();

    let start = Instant::now();
    let serial_state = serial_replay(&log);
    let serial_ns = start.elapsed().as_nanos() as u64;

    let start = Instant::now();
    let graph = DepGraph::build(committed_records(&log), map_commutes());
    let parallel_state = parallel_replay(&graph, threads);
    let parallel_ns = start.elapsed().as_nanos() as u64;

    assert_eq!(
        parallel_state, serial_state,
        "E15 recovery divergence at {commits} commits (dep_logged={dep_logged})"
    );
    let stats = graph.stats();
    RecoveryRow {
        commits,
        records: log.len(),
        log_bytes,
        dep_logged,
        serial_ns,
        parallel_ns,
        speedup: serial_ns as f64 / parallel_ns.max(1) as f64,
        edges: stats.edges,
        pruned_commuting: stats.pruned_commuting,
        threads,
    }
}

/// The E15 report (`BENCH_e15.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E15Report {
    /// Self-identifying header; `topology` records the swept shard
    /// counts.
    pub header: ReportHeader,
    /// The parameters the rows were measured under.
    pub params: E15Params,
    /// Scale-out rows, one per shard count.
    pub scaling: Vec<ScalingRow>,
    /// Recovery rows, two per log size (dependency-logged and value-logged).
    pub recovery: Vec<RecoveryRow>,
}

impl E15Report {
    /// Serializes for the CI artifact.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("E15 report serializes")
    }

    /// Parses a committed artifact.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// Runs the full experiment: the shard-count sweep, then the recovery
/// comparison at every log size in both logging modes.
pub fn run_e15(params: &E15Params) -> E15Report {
    let scaling: Vec<ScalingRow> = params
        .shard_counts
        .iter()
        .map(|&shards| run_scaling_point(params, shards))
        .collect();
    let mut recovery = Vec::new();
    for &commits in &params.recovery_commits {
        for dep_logged in [true, false] {
            recovery.push(run_recovery_point(
                params.seed,
                commits,
                params.listings,
                dep_logged,
                params.threads,
            ));
        }
    }
    let topology = params
        .shard_counts
        .iter()
        .map(|s| format!("coordinator+{s}sh"))
        .collect::<Vec<_>>()
        .join("+");
    E15Report {
        header: ReportHeader::new("e15").with_topology(topology),
        params: params.clone(),
        scaling,
        recovery,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_scales_and_replays_deterministically() {
        let params = E15Params::smoke();
        let a = run_e15(&params);
        assert_eq!(a.scaling.len(), params.shard_counts.len());
        let one = &a.scaling[0];
        let eight = a.scaling.last().unwrap();
        assert_eq!(one.submitted, eight.submitted, "same offered load");
        assert!(
            eight.commits_per_sec > one.commits_per_sec,
            "8 shards ({:.0}/s) must outrun 1 shard ({:.0}/s) on distinct keys",
            eight.commits_per_sec,
            one.commits_per_sec
        );
        // Same seed ⇒ bit-identical rows.
        let b = run_e15(&params);
        for (x, y) in a.scaling.iter().zip(&b.scaling) {
            assert_eq!(
                (x.trace_hash, x.state_digest),
                (y.trace_hash, y.state_digest)
            );
        }
    }

    #[test]
    fn recovery_rows_certify_and_count_log_overheads() {
        let dep = run_recovery_point(5, 400, 16, true, 4);
        let val = run_recovery_point(5, 400, 16, false, 4);
        assert_eq!(dep.commits, 400);
        assert_eq!(dep.records, val.records);
        assert!(
            dep.log_bytes > val.log_bytes,
            "footprints cost log bytes: {} vs {}",
            dep.log_bytes,
            val.log_bytes
        );
        assert!(dep.pruned_commuting > 0, "bank halves of orders commute");
        assert!(dep.edges > 0, "contended listings conflict");
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = run_e15(&E15Params {
            shard_counts: vec![1, 2],
            recovery_commits: vec![50],
            clients: 1,
            ticks: 2,
            ..E15Params::smoke()
        });
        let back = E15Report::from_json(&report.to_json()).unwrap();
        assert_eq!(back.header.experiment, "e15");
        assert_eq!(
            back.header.schema_version,
            crate::report::REPORT_SCHEMA_VERSION
        );
        assert_eq!(back.header.topology, "coordinator+1sh+coordinator+2sh");
        assert_eq!(back.scaling.len(), 2);
        assert_eq!(back.recovery.len(), 2);
    }
}
