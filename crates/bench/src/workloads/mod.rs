//! Multi-threaded workload runners for the experiments.

pub mod audit;
pub mod bank;
pub mod e12;
pub mod e14;
pub mod e15;
pub mod e16;
pub mod lamport;
pub mod queue;
pub mod recovery;
pub mod skew;
pub mod stress;
pub mod wal;

use std::time::Duration;

/// Busy-wait-free "work" inside a transaction: sleeping while holding
/// intentions/locks is what makes serialization visible in throughput.
pub(crate) fn hold(micros: u64) {
    if micros > 0 {
        std::thread::sleep(Duration::from_micros(micros));
    }
}
