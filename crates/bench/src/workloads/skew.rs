//! E7 — clock-skew sensitivity of static atomicity (§4.2.3).
//!
//! "Static atomicity works poorly for updating activities unless
//! timestamps are generated using closely synchronized clocks." Each
//! worker draws start timestamps from its own skewed clock; a worker whose
//! clock lags issues operations that must be ordered *before* results
//! already returned to fast-clock workers — the generalized Reed abort.
//!
//! Hybrid atomicity assigns update timestamps at commit from a single
//! Lamport clock, so skew cannot hurt it: its abort rate stays flat.

use crate::engines::Engine;
use crate::workloads::hold;
use atomicity_spec::{op, ObjectId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Parameters of the E7 workload.
#[derive(Debug, Clone)]
pub struct SkewParams {
    /// Concurrent workers, each with its own clock skew.
    pub workers: usize,
    /// Transactions per worker.
    pub txns_per_worker: usize,
    /// Clock skew step: worker `w` leads by `w × skew_ticks` ticks.
    pub skew_ticks: u64,
    /// Distinct keys in the shared map.
    pub keys: i64,
    /// In-transaction work (µs).
    pub hold_micros: u64,
}

impl Default for SkewParams {
    fn default() -> Self {
        SkewParams {
            workers: 4,
            txns_per_worker: 25,
            skew_ticks: 0,
            keys: 8,
            hold_micros: 50,
        }
    }
}

/// Measured outcome of one E7 run.
#[derive(Debug, Clone)]
pub struct SkewOutcome {
    /// The engine measured.
    pub engine: Engine,
    /// The skew step used.
    pub skew_ticks: u64,
    /// Committed transactions.
    pub committed: u64,
    /// Transactions aborted with a timestamp conflict.
    pub ts_aborts: u64,
    /// Transactions aborted for other reasons (deadlock).
    pub other_aborts: u64,
    /// Wall-clock duration.
    pub wall: Duration,
}

/// Runs the E7 workload: read-modify-write transactions (`get` then
/// `put`) on a shared map, with per-worker clock skew.
pub fn run_skew(engine: Engine, params: &SkewParams) -> SkewOutcome {
    assert!(
        matches!(engine, Engine::Static | Engine::Hybrid),
        "E7 compares the timestamped protocols"
    );
    let handle = engine.builder().build();
    let mgr = handle.manager().clone();
    let entries = (0..params.keys).map(|k| (k, 100));
    let map = handle.map(ObjectId::new(1), entries);
    // A shared logical "real time" source; each worker adds its skew.
    // Uniqueness: timestamp = (tick + skew) * workers + worker-index.
    let real_time = Arc::new(AtomicU64::new(1));
    let w = params.workers as u64;

    let start = Instant::now();
    let mut handles = Vec::new();
    for worker in 0..params.workers {
        let mgr = mgr.clone();
        let map = Arc::clone(&map);
        let params = params.clone();
        let real_time = Arc::clone(&real_time);
        handles.push(std::thread::spawn(move || {
            let (mut committed, mut ts_aborts, mut other_aborts) = (0u64, 0u64, 0u64);
            let skew = worker as u64 * params.skew_ticks;
            for t in 0..params.txns_per_worker {
                let txn = match engine {
                    Engine::Static => {
                        let tick = real_time.fetch_add(1, Ordering::SeqCst);
                        mgr.begin_at((tick + skew) * w + worker as u64)
                    }
                    _ => mgr.begin(),
                };
                // Stagger key usage across workers so zero-skew runs
                // rarely contend; skew then re-aligns ops of different
                // workers onto the same key at conflicting timestamps.
                let key = ((t as i64) + 2 * worker as i64) % params.keys;
                let result = map.invoke(&txn, op("get", [key])).and_then(|old| {
                    hold(params.hold_micros);
                    let new = old.as_int().unwrap_or(0) + 1;
                    map.invoke(&txn, op("put", [key, new]))
                });
                match result {
                    Ok(_) => {
                        if mgr.commit(txn).is_ok() {
                            committed += 1;
                        } else {
                            other_aborts += 1;
                        }
                    }
                    Err(e) => {
                        mgr.abort(txn);
                        // Classify by the stable abort-reason code rather
                        // than by matching error variants.
                        if e.reason().is_timestamp() {
                            ts_aborts += 1;
                        } else {
                            other_aborts += 1;
                        }
                    }
                }
            }
            (committed, ts_aborts, other_aborts)
        }));
    }
    let (mut committed, mut ts_aborts, mut other_aborts) = (0u64, 0u64, 0u64);
    for h in handles {
        let (c, t, o) = h.join().expect("skew worker panicked");
        committed += c;
        ts_aborts += t;
        other_aborts += o;
    }
    SkewOutcome {
        engine,
        skew_ticks: params.skew_ticks,
        committed,
        ts_aborts,
        other_aborts,
        wall: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_transaction_resolves() {
        for engine in [Engine::Static, Engine::Hybrid] {
            let out = run_skew(
                engine,
                &SkewParams {
                    workers: 3,
                    txns_per_worker: 10,
                    skew_ticks: 5,
                    keys: 3,
                    hold_micros: 100,
                },
            );
            assert_eq!(
                out.committed + out.ts_aborts + out.other_aborts,
                30,
                "{engine}"
            );
        }
    }

    #[test]
    fn hybrid_is_immune_to_skew() {
        let out = run_skew(
            Engine::Hybrid,
            &SkewParams {
                skew_ticks: 1_000,
                ..SkewParams::default()
            },
        );
        assert_eq!(out.ts_aborts, 0);
    }

    #[test]
    fn static_aborts_rise_with_skew() {
        // Aggregate a few runs to smooth scheduling noise; heavy skew must
        // produce strictly more timestamp aborts than zero skew.
        let total_ts_aborts = |skew: u64| -> u64 {
            (0..3)
                .map(|_| {
                    run_skew(
                        Engine::Static,
                        &SkewParams {
                            workers: 4,
                            txns_per_worker: 25,
                            skew_ticks: skew,
                            keys: 8,
                            hold_micros: 50,
                        },
                    )
                    .ts_aborts
                })
                .sum()
        };
        let none = total_ts_aborts(0);
        let heavy = total_ts_aborts(500);
        assert!(
            heavy > none,
            "skewed clocks must cause more timestamp aborts: {heavy} vs {none}"
        );
    }

    #[test]
    #[should_panic(expected = "timestamped protocols")]
    fn rejects_untimestamped_engines() {
        let _ = run_skew(Engine::Dynamic, &SkewParams::default());
    }
}
