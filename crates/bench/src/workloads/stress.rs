//! E8 — threaded stress on the history recorder (DESIGN.md §2).
//!
//! N OS threads each drive M transactions against a **private** bank
//! account, so the only cross-thread serialization points are the shared
//! infrastructure: the history recorder, the transaction table, the
//! Lamport clock, and (under hybrid) the commit gate. That makes the
//! workload a magnifying glass for recorder contention: with per-object
//! work removed, throughput scaling is bounded by how cheaply concurrent
//! threads can append events.
//!
//! Two recorder configurations are compared:
//!
//! - the default **sharded** log ([`HistoryLog::new`]): per-thread append
//!   buffers ordered by a global sequence stamp;
//! - the **coarse** log ([`HistoryLog::coarse`]): a single shard, i.e. the
//!   pre-sharding one-big-mutex recorder.
//!
//! When [`StressParams::verify`] is set, the run ends with post-hoc
//! checks: the merged history must be well-formed, the whole recorded
//! history must satisfy the engine's local atomicity property, and the
//! committed balances must equal the committed deposits — i.e. the
//! sharded snapshot really is the linearization the engines enforced.
//! The atomicity check runs through the linear-time certifier
//! ([`atomicity_lint::certify()`]) by default; setting
//! [`StressParams::exhaustive`] re-checks every object's projection with
//! the exhaustive `spec::atomicity` decision procedures instead.

use crate::engines::Engine;
use crate::workloads::hold;
use atomicity_core::{Admission, HistoryLog, MetricsSnapshot, Protocol, StatsSnapshot};
use atomicity_lint::{certify, Property};
use atomicity_spec::atomicity::{is_dynamic_atomic, is_hybrid_atomic, is_static_atomic};
use atomicity_spec::specs::BankAccountSpec;
use atomicity_spec::well_formed::WellFormedness;
use atomicity_spec::{op, ObjectId, SystemSpec, Value};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The engines E8 compares: the paper's three properties plus the 2PL
/// floor. (Commutativity locking adds nothing here — with per-thread
/// objects it behaves like 2PL.)
pub const STRESS_ENGINES: [Engine; 4] = [
    Engine::Dynamic,
    Engine::Static,
    Engine::Hybrid,
    Engine::TwoPhaseLocking,
];

/// Parameters of the E8 workload.
#[derive(Debug, Clone)]
pub struct StressParams {
    /// Concurrent worker threads (one private account each).
    pub threads: usize,
    /// Transactions per thread.
    pub txns_per_thread: usize,
    /// Deposits per transaction.
    pub ops_per_txn: usize,
    /// Simulated in-transaction work (µs); 0 makes recorder contention
    /// dominate.
    pub hold_micros: u64,
    /// Record into a single-shard ([`HistoryLog::coarse`]) log instead of
    /// the default sharded one.
    pub coarse_log: bool,
    /// Run the post-hoc atomicity checks on the recorded history (costs
    /// O(history); meant for correctness runs, not timing runs).
    pub verify: bool,
    /// With [`StressParams::verify`]: also re-check every object's
    /// projected history with the exhaustive `spec::atomicity` decision
    /// procedures, instead of relying on the linear-time certifier alone.
    pub exhaustive: bool,
    /// Attach an enabled [`atomicity_core::MetricsRegistry`] and return
    /// its snapshot in [`StressOutcome::metrics`] (the E10 path). Off for
    /// timing runs: the measured point of E8 is the recorder, not the
    /// metrics layer.
    pub collect_metrics: bool,
    /// Number of accounts shared by all workers; `0` (the E8 default)
    /// gives every worker a private account. E10 sets `1` so the engines
    /// actually contend and the block/abort instrumentation has something
    /// to observe. Shared transactions open with a `balance` read, so
    /// read/write conflicts — lock-upgrade deadlocks, timestamp conflicts
    /// — and their abort reasons actually arise.
    pub shared_objects: usize,
}

impl StressParams {
    /// Accounts the run creates: one per worker, or the explicit shared
    /// pool.
    pub fn object_count(&self) -> usize {
        if self.shared_objects == 0 {
            self.threads
        } else {
            self.shared_objects
        }
    }
}

impl Default for StressParams {
    fn default() -> Self {
        StressParams {
            threads: 4,
            txns_per_thread: 100,
            ops_per_txn: 2,
            hold_micros: 0,
            coarse_log: false,
            verify: false,
            exhaustive: false,
            collect_metrics: false,
            shared_objects: 0,
        }
    }
}

/// Measured outcome of one E8 run.
#[derive(Debug, Clone)]
pub struct StressOutcome {
    /// The engine measured.
    pub engine: Engine,
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// Transactions committed.
    pub committed: u64,
    /// Transactions aborted.
    pub aborted: u64,
    /// Committed transactions per second.
    pub throughput: f64,
    /// Events in the recorded history.
    pub events: usize,
    /// Shards in the recorder used.
    pub log_shards: usize,
    /// Contention counters aggregated over all objects.
    pub stats: StatsSnapshot,
    /// Full metrics snapshot (latency percentiles, abort causes, trace
    /// counts) when [`StressParams::collect_metrics`] was set.
    pub metrics: Option<MetricsSnapshot>,
}

/// Runs the E8 workload for one engine.
///
/// # Panics
///
/// With [`StressParams::verify`] set, panics if the recorded history
/// fails the engine's well-formedness or local atomicity property, or if
/// a committed balance disagrees with the committed deposits.
pub fn run_stress(engine: Engine, params: &StressParams) -> StressOutcome {
    let log = if params.coarse_log {
        HistoryLog::coarse()
    } else {
        HistoryLog::new()
    };
    let mut builder = engine.builder().log(log.clone());
    if params.collect_metrics {
        builder = builder.collect_metrics();
    }
    let handle = builder.build();
    let mgr = handle.manager().clone();
    let objects: Vec<Arc<dyn Admission>> = (0..params.object_count())
        .map(|t| handle.account(ObjectId::new(t as u32 + 1), 0))
        .collect();

    let (committed, aborted, wall) = execute(&mgr, &objects, params);

    if params.verify {
        verify_run(engine, params, &mgr, &objects, committed);
    }

    let stats: StatsSnapshot = objects.iter().map(|o| o.metrics().stats()).sum();
    let metrics = handle
        .metrics()
        .is_enabled()
        .then(|| handle.metrics().snapshot());
    StressOutcome {
        engine,
        wall,
        committed,
        aborted,
        throughput: committed as f64 / wall.as_secs_f64(),
        events: log.len(),
        log_shards: log.shard_count(),
        stats,
        metrics,
    }
}

/// Runs the workload and returns the merged recorded history together
/// with a [`SystemSpec`] covering every account. This is the input for
/// E9's linear-vs-exhaustive checker comparison: a real multi-thread
/// history of the exact shape the post-hoc verifier certifies.
pub fn stress_history(
    engine: Engine,
    params: &StressParams,
) -> (atomicity_spec::history::History, SystemSpec) {
    let handle = engine.builder().build();
    let mgr = handle.manager().clone();
    let objects: Vec<Arc<dyn Admission>> = (0..params.object_count())
        .map(|t| handle.account(ObjectId::new(t as u32 + 1), 0))
        .collect();
    execute(&mgr, &objects, params);
    (mgr.history(), account_spec(params.object_count()))
}

/// A [`SystemSpec`] with one zero-balance account per created object.
fn account_spec(objects: usize) -> SystemSpec {
    (0..objects).fold(SystemSpec::new(), |s, t| {
        s.with_object(ObjectId::new(t as u32 + 1), BankAccountSpec::new())
    })
}

/// Drives the worker threads; returns (committed, aborted, wall).
fn execute(
    mgr: &atomicity_core::TxnManager,
    objects: &[Arc<dyn Admission>],
    params: &StressParams,
) -> (u64, u64, Duration) {
    let start = Instant::now();
    let mut handles = Vec::new();
    for t in 0..params.threads {
        let mgr = mgr.clone();
        let obj = Arc::clone(&objects[t % objects.len()]);
        let params = params.clone();
        handles.push(std::thread::spawn(move || {
            let (mut committed, mut aborted) = (0u64, 0u64);
            for _ in 0..params.txns_per_thread {
                let txn = mgr.begin();
                let mut failed = false;
                // Contended runs read before writing: the read/write
                // upgrade is what makes conflicts (and abort reasons)
                // observable.
                if params.shared_objects > 0
                    && obj.invoke(&txn, op("balance", [] as [i64; 0])).is_err()
                {
                    failed = true;
                }
                if !failed {
                    for _ in 0..params.ops_per_txn {
                        if obj.invoke(&txn, op("deposit", [1])).is_err() {
                            failed = true;
                            break;
                        }
                    }
                }
                hold(params.hold_micros);
                if failed {
                    mgr.abort(txn);
                    aborted += 1;
                } else if mgr.commit(txn).is_ok() {
                    committed += 1;
                } else {
                    aborted += 1;
                }
            }
            (committed, aborted)
        }));
    }
    let (mut committed, mut aborted) = (0u64, 0u64);
    for h in handles {
        let (c, a) = h.join().expect("stress worker panicked");
        committed += c;
        aborted += a;
    }
    (committed, aborted, start.elapsed())
}

/// Post-hoc checks: the merged snapshot is the linearization the engines
/// enforced.
///
/// Objects are private to one thread, so each object's commit order is a
/// **total** precedes order — the linear-time certifier stays on its
/// single-replay fast path, and any cross-thread merge error (a misplaced
/// stamp, a lost shard entry) shows up as a well-formedness, certificate,
/// or balance violation. `exhaustive` re-checks each projection with the
/// `spec::atomicity` decision procedures on top.
fn verify_run(
    engine: Engine,
    params: &StressParams,
    mgr: &atomicity_core::TxnManager,
    objects: &[Arc<dyn Admission>],
    committed: u64,
) {
    let h = mgr.history();
    // Nothing lost, nothing duplicated: every commit is present.
    assert_eq!(
        h.committed_activities().len() as u64,
        committed,
        "{engine}: committed transactions missing from the merged history"
    );
    let wf = match engine.protocol() {
        Protocol::Dynamic => WellFormedness::Basic,
        Protocol::Static => WellFormedness::Static,
        Protocol::Hybrid => WellFormedness::Hybrid,
    };
    assert!(
        wf.is_well_formed(&h),
        "{engine}: merged history is not well-formed"
    );
    let property = match engine.protocol() {
        Protocol::Dynamic => Property::Dynamic,
        Protocol::Static => Property::Static,
        Protocol::Hybrid => Property::Hybrid,
    };
    let cert = certify(property, &h, &account_spec(params.object_count()));
    assert!(
        cert.is_certified(),
        "{engine}: history certification failed: {cert}"
    );
    for (t, obj) in objects.iter().enumerate() {
        let oid = ObjectId::new(t as u32 + 1);
        let ph = h.project_object(oid);
        let spec = SystemSpec::new().with_object(oid, BankAccountSpec::new());
        if params.exhaustive {
            let ok = match engine.protocol() {
                Protocol::Dynamic => is_dynamic_atomic(&ph, &spec),
                Protocol::Static => is_static_atomic(&ph, &spec),
                Protocol::Hybrid => is_hybrid_atomic(&ph, &spec),
            };
            assert!(
                ok,
                "{engine}: object {t} history violates the protocol's property"
            );
        }
        // The committed state agrees with the committed deposits.
        let reader = mgr.begin();
        let balance = obj
            .invoke(&reader, op("balance", [] as [i64; 0]))
            .expect("post-run balance read");
        mgr.commit(reader).expect("post-run reader commit");
        let expected = ph.committed_activities().len() as i64 * params.ops_per_txn as i64;
        assert_eq!(
            balance,
            Value::from(expected),
            "{engine}: object {t} balance disagrees with committed deposits"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(coarse: bool) -> StressParams {
        StressParams {
            threads: 3,
            txns_per_thread: 8,
            ops_per_txn: 2,
            hold_micros: 0,
            coarse_log: coarse,
            verify: true,
            exhaustive: true,
            collect_metrics: true,
            shared_objects: 0,
        }
    }

    #[test]
    fn all_engines_complete_and_satisfy_their_property() {
        for engine in STRESS_ENGINES {
            let out = run_stress(engine, &quick(false));
            assert_eq!(out.committed + out.aborted, 24, "{engine}");
            assert_eq!(out.aborted, 0, "{engine}: private objects never conflict");
            assert!(out.log_shards > 1);
            assert!(out.events > 0);
            // Deposits admitted: ops per txn, plus one post-run balance
            // read per object from the verifier.
            assert_eq!(out.stats.admissions, 24 * 2 + 3, "{engine}");
            assert_eq!(out.stats.commits, 24 + 3, "{engine}");
            // collect_metrics was set: the registry view must agree with
            // the worker-counted outcomes and carry latency samples.
            let m = out.metrics.expect("metrics requested");
            assert!(m.enabled, "{engine}");
            assert_eq!(m.txns_committed, out.committed + 3, "{engine}");
            assert_eq!(m.invoke_ns.count, out.stats.admissions, "{engine}");
            assert_eq!(m.commit_ns.count, m.txns_committed, "{engine}");
            assert!(m.invoke_ns.percentile(0.50).is_some(), "{engine}");
        }
    }

    #[test]
    fn coarse_log_produces_the_same_outcome() {
        // Certifier-only verification (the default `exhaustive: false`
        // path) on this variant, so both verify modes stay exercised.
        for engine in STRESS_ENGINES {
            let out = run_stress(
                engine,
                &StressParams {
                    exhaustive: false,
                    ..quick(true)
                },
            );
            assert_eq!(out.committed, 24, "{engine}");
            assert_eq!(out.log_shards, 1, "{engine}");
        }
    }

    #[test]
    fn sharded_recorder_is_competitive_with_coarse_under_contention() {
        // Timing guard, not a benchmark: at 4 threads of record-heavy
        // work the sharded recorder must never be meaningfully *slower*
        // than the single-mutex baseline (the real comparison, where the
        // sharded log wins on multicore hosts, is `cargo bench -p
        // atomicity-bench --bench e8_stress` and `experiments e8`).
        // Best-of-3 each to shed scheduler noise; generous bound so the
        // test stays robust on loaded single-core CI machines.
        let params = StressParams {
            threads: 4,
            txns_per_thread: 150,
            ops_per_txn: 4,
            hold_micros: 0,
            coarse_log: false,
            verify: false,
            exhaustive: false,
            collect_metrics: false,
            shared_objects: 0,
        };
        let sharded = (0..3)
            .map(|_| run_stress(Engine::Dynamic, &params).wall)
            .min()
            .unwrap();
        let coarse_params = StressParams {
            coarse_log: true,
            ..params
        };
        let coarse = (0..3)
            .map(|_| run_stress(Engine::Dynamic, &coarse_params).wall)
            .min()
            .unwrap();
        assert!(
            sharded <= coarse * 2,
            "sharded recorder collapsed under contention: {sharded:?} vs coarse {coarse:?}"
        );
    }
}
