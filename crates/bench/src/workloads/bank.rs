//! E1 — the §5.1 bank account: concurrent withdrawals vs. locking.
//!
//! N client threads withdraw from one shared account. The *headroom
//! factor* scales the initial balance relative to the total amount the
//! clients will try to withdraw:
//!
//! - headroom ≥ 1: every withdrawal can succeed; the dynamic engine admits
//!   them all concurrently, while commutativity locking and 2PL serialize
//!   every withdraw — the paper's example, quantified.
//! - headroom < 1: the balance genuinely constrains concurrency; the
//!   dynamic engine's advantage shrinks (blocking appears), and outcomes
//!   include `insufficient_funds`.

use crate::engines::Engine;
use crate::workloads::hold;
use atomicity_core::AtomicObject;
use atomicity_spec::{op, ObjectId, Value};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Parameters of the E1 workload.
#[derive(Debug, Clone)]
pub struct BankParams {
    /// Concurrent client threads.
    pub threads: usize,
    /// Withdrawal transactions per thread.
    pub txns_per_thread: usize,
    /// Amount per withdrawal.
    pub amount: i64,
    /// Initial balance = headroom × threads × txns × amount.
    pub headroom: f64,
    /// Simulated in-transaction work (µs) while intentions are held.
    pub hold_micros: u64,
}

impl Default for BankParams {
    fn default() -> Self {
        BankParams {
            threads: 4,
            txns_per_thread: 25,
            amount: 5,
            headroom: 2.0,
            hold_micros: 200,
        }
    }
}

/// Measured outcome of one E1 run.
#[derive(Debug, Clone)]
pub struct BankOutcome {
    /// The engine measured.
    pub engine: Engine,
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// Transactions that committed with a successful withdrawal.
    pub withdrawn: u64,
    /// Transactions that committed with `insufficient_funds`.
    pub insufficient: u64,
    /// Transactions aborted (deadlock / timestamp conflict).
    pub aborted: u64,
    /// Committed transactions per second.
    pub throughput: f64,
}

/// Runs the E1 workload for one engine.
pub fn run_bank(engine: Engine, params: &BankParams) -> BankOutcome {
    let total_txns = (params.threads * params.txns_per_thread) as i64;
    let initial = (params.headroom * (total_txns * params.amount) as f64).round() as i64;
    let handle = engine.builder().build();
    let mgr = handle.manager().clone();
    let account = handle.account(ObjectId::new(1), initial);

    let start = Instant::now();
    let mut handles = Vec::new();
    for _ in 0..params.threads {
        let mgr = mgr.clone();
        let account = Arc::clone(&account);
        let params = params.clone();
        handles.push(std::thread::spawn(move || {
            let (mut withdrawn, mut insufficient, mut aborted) = (0u64, 0u64, 0u64);
            for _ in 0..params.txns_per_thread {
                let txn = mgr.begin();
                match account.invoke(&txn, op("withdraw", [params.amount])) {
                    Ok(v) => {
                        hold(params.hold_micros);
                        if mgr.commit(txn).is_ok() {
                            if v == Value::ok() {
                                withdrawn += 1;
                            } else {
                                insufficient += 1;
                            }
                        } else {
                            aborted += 1;
                        }
                    }
                    Err(_) => {
                        mgr.abort(txn);
                        aborted += 1;
                    }
                }
            }
            (withdrawn, insufficient, aborted)
        }));
    }
    let (mut withdrawn, mut insufficient, mut aborted) = (0u64, 0u64, 0u64);
    for h in handles {
        let (w, i, a) = h.join().expect("bank worker panicked");
        withdrawn += w;
        insufficient += i;
        aborted += a;
    }
    let wall = start.elapsed();
    let committed = withdrawn + insufficient;
    BankOutcome {
        engine,
        wall,
        withdrawn,
        insufficient,
        aborted,
        throughput: committed as f64 / wall.as_secs_f64(),
    }
}

/// A1 ablation: the same E1 workload against a dynamic object whose
/// permutation-check bound (`max_check`) is varied. `max_check = 1`
/// degenerates to treating every concurrent transaction as a conflict
/// (locking-like); larger bounds buy concurrency at admission-check cost.
pub fn run_bank_ablation(max_check: usize, params: &BankParams) -> BankOutcome {
    use atomicity_core::{DynamicObject, Protocol, TxnManager};
    use atomicity_spec::specs::BankAccountSpec;
    let total_txns = (params.threads * params.txns_per_thread) as i64;
    let initial = (params.headroom * (total_txns * params.amount) as f64).round() as i64;
    let mgr = TxnManager::new(Protocol::Dynamic);
    let account = DynamicObject::with_max_check(
        ObjectId::new(1),
        BankAccountSpec::with_initial(initial),
        &mgr,
        max_check,
    );
    let start = Instant::now();
    let mut handles = Vec::new();
    for _ in 0..params.threads {
        let mgr = mgr.clone();
        let account = Arc::clone(&account);
        let params = params.clone();
        handles.push(std::thread::spawn(move || {
            let (mut withdrawn, mut insufficient, mut aborted) = (0u64, 0u64, 0u64);
            for _ in 0..params.txns_per_thread {
                let txn = mgr.begin();
                match account.invoke(&txn, op("withdraw", [params.amount])) {
                    Ok(v) => {
                        hold(params.hold_micros);
                        if mgr.commit(txn).is_ok() {
                            if v == Value::ok() {
                                withdrawn += 1;
                            } else {
                                insufficient += 1;
                            }
                        } else {
                            aborted += 1;
                        }
                    }
                    Err(_) => {
                        mgr.abort(txn);
                        aborted += 1;
                    }
                }
            }
            (withdrawn, insufficient, aborted)
        }));
    }
    let (mut withdrawn, mut insufficient, mut aborted) = (0u64, 0u64, 0u64);
    for h in handles {
        let (w, i, a) = h.join().expect("ablation worker panicked");
        withdrawn += w;
        insufficient += i;
        aborted += a;
    }
    let wall = start.elapsed();
    let committed = withdrawn + insufficient;
    BankOutcome {
        engine: Engine::Dynamic,
        wall,
        withdrawn,
        insufficient,
        aborted,
        throughput: committed as f64 / wall.as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(engine: Engine, headroom: f64) -> BankOutcome {
        run_bank(
            engine,
            &BankParams {
                threads: 3,
                txns_per_thread: 8,
                amount: 5,
                headroom,
                hold_micros: 100,
            },
        )
    }

    #[test]
    fn all_engines_complete_with_headroom() {
        for engine in Engine::ALL {
            let out = quick(engine, 2.0);
            assert_eq!(
                out.withdrawn + out.insufficient + out.aborted,
                24,
                "{engine}: every transaction must resolve"
            );
            assert_eq!(out.insufficient, 0, "{engine}: headroom 2 never runs dry");
            assert!(out.throughput > 0.0);
        }
    }

    #[test]
    fn tight_headroom_produces_insufficient_outcomes() {
        let out = quick(Engine::Dynamic, 0.5);
        // Half the money: roughly half the withdrawals must fail, and
        // exactly headroom × total succeed (when none abort).
        assert!(out.insufficient > 0);
        assert!(out.withdrawn <= 12);
    }

    #[test]
    fn ablation_bound_one_still_completes() {
        let p = BankParams {
            threads: 3,
            txns_per_thread: 8,
            amount: 5,
            headroom: 2.0,
            hold_micros: 100,
        };
        let out = run_bank_ablation(1, &p);
        assert_eq!(out.withdrawn, 24, "max_check=1 serializes but never wedges");
        let out6 = run_bank_ablation(6, &p);
        assert_eq!(out6.withdrawn, 24);
    }

    #[test]
    fn dynamic_outpaces_locking_with_headroom_and_hold_time() {
        // With real hold time, concurrent admission beats serialization.
        // Use generous margins to stay robust on loaded CI machines.
        let p = BankParams {
            threads: 4,
            txns_per_thread: 10,
            amount: 5,
            headroom: 2.0,
            hold_micros: 2_000,
        };
        let dynamic = run_bank(Engine::Dynamic, &p);
        let locked = run_bank(Engine::CommutativityLocking, &p);
        assert!(
            dynamic.wall < locked.wall,
            "dynamic {:?} should beat commutativity locking {:?}",
            dynamic.wall,
            locked.wall
        );
    }
}
