//! Open-loop workload generators: "millions of users" as seeded request
//! streams.
//!
//! Every transaction is built from *blind* operations (see
//! [`crate::ShardKvSpec`]) so results can be staged at submission time,
//! and every random choice comes from the caller's split [`SimRng`]
//! stream, so a workload is a pure function of the seed.

use atomicity_sim::SimRng;
use atomicity_spec::{op, OpResult, Value};

/// Keys at and above this value are marketplace listings, excluded from
/// the money-conservation invariant (listings hold prices, not balances).
pub const LISTING_BASE: i64 = 1 << 40;

/// Which transaction mix a client stream generates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Bank transfers: `adjust(from,−a)`, `adjust(to,+a)` — fully
    /// commutative traffic; with enough accounts, almost every pair of
    /// transactions is key-disjoint (the distinct-key scaling case).
    Bank,
    /// Marketplace orders: a transfer from buyer to seller plus a blind
    /// `set` of a listing's price. Listings are drawn from a small slot
    /// space, so `set`/`set` collisions create genuine (non-commuting)
    /// dependency edges.
    Marketplace,
}

/// A workload: the mix plus its keyspace shape.
#[derive(Debug, Clone)]
pub struct Workload {
    kind: WorkloadKind,
    accounts: u64,
    /// Fraction of account picks redirected to the hot set (contention
    /// knob; 0 disables).
    hot_fraction: f64,
    hot_accounts: u64,
    /// Marketplace listing slot count (small ⇒ contended `set`s).
    listings: u64,
}

impl Workload {
    /// Creates a workload.
    ///
    /// # Panics
    ///
    /// Panics if `accounts < 2` (a transfer needs two distinct parties).
    pub fn new(
        kind: WorkloadKind,
        accounts: u64,
        hot_fraction: f64,
        hot_accounts: u64,
        listings: u64,
    ) -> Self {
        assert!(accounts >= 2, "transfers need at least two accounts");
        Workload {
            kind,
            accounts,
            hot_fraction,
            hot_accounts: hot_accounts.clamp(1, accounts),
            listings: listings.max(1),
        }
    }

    fn pick_account(&self, rng: &mut SimRng) -> i64 {
        if self.hot_fraction > 0.0 && rng.chance(self.hot_fraction) {
            rng.range(0, self.hot_accounts - 1) as i64
        } else {
            rng.range(0, self.accounts - 1) as i64
        }
    }

    /// Generates the next transaction's (operation, result) pairs.
    /// `txn_seq` is the transaction's globally unique sequence number
    /// (used only where a unique key is needed).
    pub fn next_txn(&self, rng: &mut SimRng, txn_seq: u32) -> Vec<OpResult> {
        let _ = txn_seq;
        let from = self.pick_account(rng);
        let mut to = self.pick_account(rng);
        if to == from {
            to = (from + 1) % self.accounts as i64;
        }
        let amount = rng.range(1, 100) as i64;
        let mut ops = vec![
            (op("adjust", [from, -amount]), Value::ok()),
            (op("adjust", [to, amount]), Value::ok()),
        ];
        if self.kind == WorkloadKind::Marketplace {
            let slot = rng.range(0, self.listings - 1) as i64;
            ops.push((op("set", [LISTING_BASE + slot, amount]), Value::ok()));
        }
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_transfers_conserve_money_and_use_distinct_parties() {
        let w = Workload::new(WorkloadKind::Bank, 1_000, 0.0, 1, 1);
        let mut rng = SimRng::new(42);
        for seq in 0..500 {
            let ops = w.next_txn(&mut rng, seq);
            assert_eq!(ops.len(), 2);
            let (from, to) = (ops[0].0.int_arg(0).unwrap(), ops[1].0.int_arg(0).unwrap());
            assert_ne!(from, to);
            let deltas: i64 = ops.iter().map(|(o, _)| o.int_arg(1).unwrap()).sum();
            assert_eq!(deltas, 0, "transfer deltas cancel");
        }
    }

    #[test]
    fn marketplace_orders_set_listings_above_the_base() {
        let w = Workload::new(WorkloadKind::Marketplace, 100, 0.0, 1, 8);
        let mut rng = SimRng::new(7);
        let ops = w.next_txn(&mut rng, 0);
        assert_eq!(ops.len(), 3);
        assert_eq!(ops[2].0.name(), "set");
        let listing = ops[2].0.int_arg(0).unwrap();
        assert!((LISTING_BASE..LISTING_BASE + 8).contains(&listing));
    }

    #[test]
    fn streams_are_seed_deterministic() {
        let w = Workload::new(WorkloadKind::Bank, 10_000, 0.2, 16, 1);
        let a: Vec<_> = {
            let mut rng = SimRng::new(9);
            (0..50).map(|s| w.next_txn(&mut rng, s)).collect()
        };
        let b: Vec<_> = {
            let mut rng = SimRng::new(9);
            (0..50).map(|s| w.next_txn(&mut rng, s)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn hot_fraction_concentrates_traffic() {
        let w = Workload::new(WorkloadKind::Bank, 1_000_000, 0.9, 4, 1);
        let mut rng = SimRng::new(3);
        let hot_hits = (0..200)
            .flat_map(|s| w.next_txn(&mut rng, s))
            .filter(|(o, _)| o.int_arg(0).unwrap() < 4)
            .count();
        assert!(
            hot_hits > 200,
            "90% hot traffic over 400 picks, got {hot_hits}"
        );
    }
}
