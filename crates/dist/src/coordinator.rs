//! The batching two-phase-commit coordinator.
//!
//! Pure protocol state — the coordinator never touches the network or
//! the event queue directly. Methods mutate its tables and return *flush
//! requests* telling the event loop which per-shard queue now needs a
//! flush event (and whether immediately, because it filled, or after the
//! batching window). This keeps the protocol unit-testable without a
//! simulation around it.
//!
//! Safety follows the classical presumed-nothing argument: a decision is
//! recorded in the durable decision table before any participant learns
//! it, commit is decided only on a full vote set, and a vote-collection
//! timeout decides abort. Liveness under loss and crashes is shard-driven
//! ([`crate::message::DistEvent::ResolveNudge`]): a prepared shard that
//! has seen no outcome re-votes, and a re-vote for an already-decided
//! transaction is answered by re-enqueuing the decision.

use crate::message::TxnPrepare;
use atomicity_sim::NodeId;
use atomicity_spec::{ActivityId, OpResult};
use std::collections::{BTreeMap, BTreeSet};

/// A queue the event loop must arrange to flush.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushReq {
    /// The shard whose queue needs flushing.
    pub shard: NodeId,
    /// `true` when the queue filled and should flush now rather than at
    /// the end of the batching window.
    pub immediate: bool,
}

/// Counters of what the coordinator decided.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoordStats {
    /// Transactions decided commit.
    pub committed: u64,
    /// Transactions decided abort (all causes).
    pub aborted: u64,
    /// Aborts decided by the vote-collection timeout.
    pub timeout_aborts: u64,
    /// Prepare batches handed to the network.
    pub prepare_batches: u64,
    /// Decision batches handed to the network.
    pub decision_batches: u64,
}

#[derive(Debug)]
struct PendingTxn {
    participants: BTreeSet<NodeId>,
    votes: BTreeSet<NodeId>,
}

/// The coordinator: per-shard prepare/decision queues, the pending-vote
/// table, and the durable decision log.
#[derive(Debug)]
pub struct DistCoordinator {
    max_batch: usize,
    prepare_queues: BTreeMap<NodeId, Vec<TxnPrepare>>,
    prepare_flush_armed: BTreeSet<NodeId>,
    decision_queues: BTreeMap<NodeId, Vec<(ActivityId, bool)>>,
    decision_flush_armed: BTreeSet<NodeId>,
    pending: BTreeMap<ActivityId, PendingTxn>,
    /// The durable decision table. Survives every failure in the model
    /// (the coordinator does not crash; `atomicity-sim` explores
    /// coordinator failure for the single-node protocol).
    decisions: BTreeMap<ActivityId, bool>,
    next_batch: u64,
    stats: CoordStats,
}

impl DistCoordinator {
    /// Creates an idle coordinator flushing batches of at most
    /// `max_batch` transactions.
    pub fn new(max_batch: usize) -> Self {
        DistCoordinator {
            max_batch: max_batch.max(1),
            prepare_queues: BTreeMap::new(),
            prepare_flush_armed: BTreeSet::new(),
            decision_queues: BTreeMap::new(),
            decision_flush_armed: BTreeSet::new(),
            pending: BTreeMap::new(),
            decisions: BTreeMap::new(),
            next_batch: 0,
            stats: CoordStats::default(),
        }
    }

    /// Admits a transaction split into per-shard slices: queues each
    /// slice for its shard and registers the vote set. Returns the
    /// prepare queues that now need a flush event.
    pub fn admit(
        &mut self,
        txn: ActivityId,
        slices: BTreeMap<NodeId, Vec<OpResult>>,
    ) -> Vec<FlushReq> {
        let mut reqs = Vec::new();
        let participants: BTreeSet<NodeId> = slices.keys().copied().collect();
        self.pending.insert(
            txn,
            PendingTxn {
                participants,
                votes: BTreeSet::new(),
            },
        );
        for (shard, ops) in slices {
            let queue = self.prepare_queues.entry(shard).or_default();
            queue.push(TxnPrepare { txn, ops });
            let full = queue.len() >= self.max_batch;
            if self.prepare_flush_armed.insert(shard) || full {
                reqs.push(FlushReq {
                    shard,
                    immediate: full,
                });
            }
        }
        reqs
    }

    /// Takes the next prepare batch for `shard` (at most `max_batch`
    /// transactions). Returns the batch id and contents, plus whether
    /// more remain queued (the caller schedules another flush).
    pub fn drain_prepares(&mut self, shard: NodeId) -> (Option<(u64, Vec<TxnPrepare>)>, bool) {
        let queue = self.prepare_queues.entry(shard).or_default();
        if queue.is_empty() {
            self.prepare_flush_armed.remove(&shard);
            return (None, false);
        }
        let take = queue.len().min(self.max_batch);
        let batch: Vec<TxnPrepare> = queue.drain(..take).collect();
        let more = !queue.is_empty();
        if !more {
            self.prepare_flush_armed.remove(&shard);
        }
        let id = self.next_batch;
        self.next_batch += 1;
        self.stats.prepare_batches += 1;
        (Some((id, batch)), more)
    }

    /// Records a shard's yes-votes. A full vote set decides commit; a
    /// vote for an already-decided transaction re-enqueues the decision
    /// to the voter (the retransmission path). Returns decision queues
    /// that now need a flush event.
    pub fn record_votes(&mut self, shard: NodeId, txns: &[ActivityId]) -> Vec<FlushReq> {
        let mut reqs = Vec::new();
        for &txn in txns {
            if let Some(&decided) = self.decisions.get(&txn) {
                self.push_decision(shard, txn, decided, &mut reqs);
                continue;
            }
            let complete = match self.pending.get_mut(&txn) {
                Some(p) => {
                    p.votes.insert(shard);
                    p.votes.len() == p.participants.len()
                }
                // Unknown transaction (e.g. a duplicated vote for one
                // that timed out and was pruned): nothing to do; the
                // decided branch above answers pruned-but-decided ones.
                None => false,
            };
            if complete {
                self.decide(txn, true, &mut reqs);
            }
        }
        reqs
    }

    /// The vote-collection timeout fired: aborts the transaction if it
    /// is still undecided. Returns decision queues needing a flush.
    pub fn on_timeout(&mut self, txn: ActivityId) -> Vec<FlushReq> {
        let mut reqs = Vec::new();
        if self.pending.contains_key(&txn) && !self.decisions.contains_key(&txn) {
            self.stats.timeout_aborts += 1;
            self.decide(txn, false, &mut reqs);
        }
        reqs
    }

    fn decide(&mut self, txn: ActivityId, commit: bool, reqs: &mut Vec<FlushReq>) {
        // Durable-first: the decision is in the table before any
        // participant can learn it.
        self.decisions.insert(txn, commit);
        if commit {
            self.stats.committed += 1;
        } else {
            self.stats.aborted += 1;
        }
        if let Some(p) = self.pending.remove(&txn) {
            for shard in p.participants {
                self.push_decision(shard, txn, commit, reqs);
            }
        }
    }

    fn push_decision(
        &mut self,
        shard: NodeId,
        txn: ActivityId,
        commit: bool,
        reqs: &mut Vec<FlushReq>,
    ) {
        let queue = self.decision_queues.entry(shard).or_default();
        queue.push((txn, commit));
        let full = queue.len() >= self.max_batch;
        if self.decision_flush_armed.insert(shard) || full {
            reqs.push(FlushReq {
                shard,
                immediate: full,
            });
        }
    }

    /// Takes the next decision batch for `shard`; same contract as
    /// [`DistCoordinator::drain_prepares`].
    pub fn drain_decisions(&mut self, shard: NodeId) -> (Vec<(ActivityId, bool)>, bool) {
        let queue = self.decision_queues.entry(shard).or_default();
        if queue.is_empty() {
            self.decision_flush_armed.remove(&shard);
            return (Vec::new(), false);
        }
        let take = queue.len().min(self.max_batch);
        let batch: Vec<(ActivityId, bool)> = queue.drain(..take).collect();
        let more = !queue.is_empty();
        if !more {
            self.decision_flush_armed.remove(&shard);
        }
        self.stats.decision_batches += 1;
        (batch, more)
    }

    /// The durable decision for `txn`, if one exists.
    pub fn decision(&self, txn: ActivityId) -> Option<bool> {
        self.decisions.get(&txn).copied()
    }

    /// Transactions admitted but not yet decided.
    pub fn undecided(&self) -> usize {
        self.pending.len()
    }

    /// Decision counters.
    pub fn stats(&self) -> CoordStats {
        self.stats
    }

    /// Iterates over every durable decision (transaction, commit).
    pub fn all_decisions(&self) -> impl Iterator<Item = (ActivityId, bool)> + '_ {
        self.decisions.iter().map(|(&t, &d)| (t, d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomicity_spec::{op, Value};

    fn slices(pairs: &[(u32, i64, i64)]) -> BTreeMap<NodeId, Vec<OpResult>> {
        let mut m: BTreeMap<NodeId, Vec<OpResult>> = BTreeMap::new();
        for &(shard, key, delta) in pairs {
            m.entry(NodeId::new(shard))
                .or_default()
                .push((op("adjust", [key, delta]), Value::ok()));
        }
        m
    }

    #[test]
    fn full_votes_decide_commit() {
        let mut c = DistCoordinator::new(8);
        let txn = ActivityId::new(1);
        let reqs = c.admit(txn, slices(&[(0, 1, -5), (1, 2, 5)]));
        assert_eq!(reqs.len(), 2, "both shard queues newly armed");
        assert!(reqs.iter().all(|r| !r.immediate));

        let (batch, more) = c.drain_prepares(NodeId::new(0));
        assert!(batch.is_some() && !more);
        assert!(c.record_votes(NodeId::new(0), &[txn]).is_empty());
        assert_eq!(c.decision(txn), None, "one vote is not enough");
        let reqs = c.record_votes(NodeId::new(1), &[txn]);
        assert_eq!(c.decision(txn), Some(true));
        assert_eq!(reqs.len(), 2, "decisions queued to both participants");
        assert_eq!(c.stats().committed, 1);
        assert_eq!(c.undecided(), 0);
    }

    #[test]
    fn timeout_aborts_and_late_vote_gets_the_decision_resent() {
        let mut c = DistCoordinator::new(8);
        let txn = ActivityId::new(2);
        c.admit(txn, slices(&[(0, 1, -5), (1, 2, 5)]));
        c.record_votes(NodeId::new(0), &[txn]);
        c.on_timeout(txn);
        assert_eq!(c.decision(txn), Some(false));
        assert_eq!(c.stats().timeout_aborts, 1);
        // The abort flushes out (and, say, is lost in transit) …
        let (batch, _) = c.drain_decisions(NodeId::new(1));
        assert_eq!(batch, vec![(txn, false)]);
        // … so the slow shard eventually re-votes. The re-vote for a
        // decided transaction must be answered with the decision again,
        // not ignored.
        let reqs = c.record_votes(NodeId::new(1), &[txn]);
        assert_eq!(
            reqs,
            vec![FlushReq {
                shard: NodeId::new(1),
                immediate: false
            }]
        );
        let (batch, _) = c.drain_decisions(NodeId::new(1));
        assert_eq!(batch, vec![(txn, false)]);
    }

    #[test]
    fn full_queue_requests_immediate_flush_and_drains_in_chunks() {
        let mut c = DistCoordinator::new(2);
        let mut immediate = 0;
        for i in 0..5 {
            let reqs = c.admit(ActivityId::new(i), slices(&[(0, i64::from(i), 1)]));
            immediate += reqs.iter().filter(|r| r.immediate).count();
        }
        assert!(immediate >= 2, "filling to max_batch demands a flush");
        let (b1, more1) = c.drain_prepares(NodeId::new(0));
        assert_eq!(b1.unwrap().1.len(), 2);
        assert!(more1);
        let (b2, _) = c.drain_prepares(NodeId::new(0));
        assert_eq!(b2.unwrap().1.len(), 2);
        let (b3, more3) = c.drain_prepares(NodeId::new(0));
        assert_eq!(b3.unwrap().1.len(), 1);
        assert!(!more3);
    }

    #[test]
    fn duplicate_votes_are_idempotent() {
        let mut c = DistCoordinator::new(8);
        let txn = ActivityId::new(3);
        c.admit(txn, slices(&[(0, 1, 1), (1, 2, 1)]));
        c.record_votes(NodeId::new(0), &[txn]);
        c.record_votes(NodeId::new(0), &[txn]);
        assert_eq!(c.decision(txn), None, "same shard voting twice is one vote");
    }
}
