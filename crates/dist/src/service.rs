//! The deterministic event loop of the partitioned service.
//!
//! [`DistService`] wires the pieces together: a [`ShardMap`] routes keys,
//! a [`DistCoordinator`] batches two-phase commit, [`ShardNode`]s stage
//! and apply with a service-time model, and the fault-injecting
//! [`Network`] of `atomicity-sim` plans every delivery. Time is logical,
//! every random draw comes from split [`SimRng`] streams, and the event
//! queue breaks ties by insertion order — a run is a pure function of
//! [`DistConfig::seed`], checkable via [`DistService::trace_hash`] and
//! [`DistService::state_digest`].

use crate::coordinator::{DistCoordinator, FlushReq};
use crate::message::{DistEvent, DistMessage};
use crate::node::ShardNode;
use crate::shard::ShardMap;
use crate::workload::{Workload, WorkloadKind, LISTING_BASE};
use atomicity_sim::PartitionSchedule;
use atomicity_sim::{fnv1a, Endpoint, EventQueue, FaultConfig, Network, NodeId, SimRng};
use atomicity_spec::ActivityId;
use std::collections::BTreeMap;

/// A planned shard outage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// Simulated time of the crash.
    pub at: u64,
    /// The shard that crashes.
    pub shard: u32,
    /// How long it stays down before restarting and recovering.
    pub downtime: u64,
}

/// Configuration of one service run.
#[derive(Debug, Clone)]
pub struct DistConfig {
    /// Root seed; everything derives from it.
    pub seed: u64,
    /// Number of shards (partitions).
    pub shards: u32,
    /// Number of open-loop client streams.
    pub clients: usize,
    /// Transactions each client submits per tick.
    pub requests_per_tick: u32,
    /// Simulated microseconds between a client's ticks.
    pub tick_interval: u64,
    /// Ticks per client (bounds the run).
    pub ticks: u64,
    /// Batching window: a newly non-empty coordinator queue flushes after
    /// this long (or immediately when it fills).
    pub batch_window: u64,
    /// Maximum transactions per batch.
    pub max_batch: usize,
    /// Coordinator vote-collection timeout per transaction.
    pub txn_timeout: u64,
    /// A prepared shard re-votes after this long without a decision.
    pub resolve_timeout: u64,
    /// Bound on re-vote attempts per (shard, transaction).
    pub max_resolve_attempts: u32,
    /// Shard service time per operation in a batch.
    pub per_op_cost: u64,
    /// Shard service time per batch (the amortizable part).
    pub per_batch_cost: u64,
    /// Commit with dependency footprints (`CommitDep`) instead of plain
    /// value-log commits.
    pub dep_logging: bool,
    /// The transaction mix.
    pub workload: WorkloadKind,
    /// Account keyspace size ("users").
    pub accounts: u64,
    /// Fraction of account picks redirected to the hot set.
    pub hot_fraction: f64,
    /// Hot-set size.
    pub hot_accounts: u64,
    /// Marketplace listing slots.
    pub listings: u64,
    /// Network fault model (applied to every link).
    pub faults: FaultConfig,
    /// Planned shard outages.
    pub crashes: Vec<CrashPlan>,
    /// Keep the full event trace in memory (the rolling hash is always
    /// maintained).
    pub record_trace: bool,
}

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig {
            seed: 1,
            shards: 4,
            clients: 4,
            requests_per_tick: 4,
            tick_interval: 1_000,
            ticks: 10,
            batch_window: 200,
            max_batch: 64,
            txn_timeout: 60_000,
            resolve_timeout: 25_000,
            max_resolve_attempts: 50,
            per_op_cost: 5,
            per_batch_cost: 40,
            dep_logging: true,
            workload: WorkloadKind::Bank,
            accounts: 1_000_000,
            hot_fraction: 0.0,
            hot_accounts: 64,
            listings: 1_024,
            faults: FaultConfig::reliable(50, 500),
            crashes: Vec::new(),
            record_trace: false,
        }
    }
}

/// Counters of one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DistStats {
    /// Transactions submitted by clients.
    pub submitted: u64,
    /// Transactions decided commit.
    pub committed: u64,
    /// Transactions decided abort.
    pub aborted: u64,
    /// Aborts caused by the vote-collection timeout.
    pub timeout_aborts: u64,
    /// Events processed.
    pub events: u64,
    /// Message copies delivered (per destination endpoint).
    pub deliveries: u64,
    /// Shard crashes injected.
    pub crashes: u64,
    /// Shard recoveries completed.
    pub recoveries: u64,
    /// In-doubt transactions found by shard recoveries.
    pub in_doubt: u64,
    /// Simulated time of the last processed event (the makespan). Note
    /// that this includes the tail of already-moot transaction-timeout
    /// events; use [`DistStats::last_decision_at`] for throughput.
    pub makespan: u64,
    /// Simulated time at which the last transaction was decided — the
    /// end of useful work, excluding the timeout tail.
    pub last_decision_at: u64,
}

/// The partitioned service: all state of one deterministic run.
#[derive(Debug)]
pub struct DistService {
    config: DistConfig,
    map: ShardMap,
    coordinator: DistCoordinator,
    nodes: Vec<ShardNode>,
    network: Network,
    queue: EventQueue<DistEvent>,
    now: u64,
    next_txn: u32,
    client_rngs: Vec<SimRng>,
    client_ticks_left: Vec<u64>,
    workload: Workload,
    trace: Vec<String>,
    trace_hash: u64,
    decided_seen: u64,
    stats: DistStats,
}

impl DistService {
    /// Builds the service and schedules the client streams and planned
    /// crashes.
    pub fn new(config: DistConfig) -> Self {
        assert!(config.shards > 0, "a service needs at least one shard");
        let root = SimRng::new(config.seed);
        let network = Network::new(
            root.split("dist-net", 0),
            config.faults.clone(),
            PartitionSchedule::new(),
        );
        let nodes: Vec<ShardNode> = (0..config.shards)
            .map(|i| ShardNode::new(NodeId::new(i), config.dep_logging))
            .collect();
        let client_rngs: Vec<SimRng> = (0..config.clients)
            .map(|i| root.split("dist-client", i as u64))
            .collect();
        let workload = Workload::new(
            config.workload,
            config.accounts,
            config.hot_fraction,
            config.hot_accounts,
            config.listings,
        );
        let mut queue = EventQueue::new();
        for client in 0..config.clients {
            // Stagger first ticks across the interval so clients do not
            // arrive in lockstep (still fully deterministic).
            let offset = 1 + (client as u64 * config.tick_interval) / config.clients.max(1) as u64;
            queue.schedule(offset, DistEvent::ClientTick { client });
        }
        for plan in &config.crashes {
            if plan.shard < config.shards {
                let shard = NodeId::new(plan.shard);
                queue.schedule(plan.at, DistEvent::ShardCrash { shard });
                queue.schedule(
                    plan.at + plan.downtime.max(1),
                    DistEvent::ShardRecover { shard },
                );
            }
        }
        let ticks_left = vec![config.ticks; config.clients];
        DistService {
            map: ShardMap::new(config.shards),
            coordinator: DistCoordinator::new(config.max_batch),
            nodes,
            network,
            queue,
            now: 0,
            next_txn: 1,
            client_rngs,
            client_ticks_left: ticks_left,
            workload,
            trace: Vec::new(),
            trace_hash: 0,
            decided_seen: 0,
            stats: DistStats::default(),
            config,
        }
    }

    fn note(&mut self, line: String) {
        self.trace_hash = self.trace_hash.rotate_left(5) ^ fnv1a(line.as_bytes());
        if self.config.record_trace {
            self.trace.push(line);
        }
    }

    /// Sends `message` over the simulated network, scheduling one
    /// delivery event per planned copy.
    fn send(&mut self, at: u64, src: Endpoint, dst: Endpoint, message: DistMessage) {
        for t in self.network.plan(at, src, dst) {
            self.queue.schedule(
                t,
                DistEvent::Deliver {
                    dst,
                    message: message.clone(),
                },
            );
        }
    }

    fn schedule_prepare_flushes(&mut self, reqs: Vec<FlushReq>) {
        for r in reqs {
            let delay = if r.immediate {
                0
            } else {
                self.config.batch_window
            };
            self.queue.schedule(
                self.now + delay,
                DistEvent::FlushPrepares { shard: r.shard },
            );
        }
    }

    fn schedule_decision_flushes(&mut self, reqs: Vec<FlushReq>) {
        for r in reqs {
            let delay = if r.immediate {
                0
            } else {
                self.config.batch_window
            };
            self.queue.schedule(
                self.now + delay,
                DistEvent::FlushDecisions { shard: r.shard },
            );
        }
    }

    fn submit_one(&mut self, client: usize) {
        let txn = ActivityId::new(self.next_txn);
        let ops = self
            .workload
            .next_txn(&mut self.client_rngs[client], self.next_txn);
        self.next_txn += 1;
        self.stats.submitted += 1;
        let slices = self.map.partition(&ops);
        self.note(format!(
            "t={} submit {txn} shards={}",
            self.now,
            slices.len()
        ));
        let reqs = self.coordinator.admit(txn, slices);
        self.schedule_prepare_flushes(reqs);
        self.queue.schedule(
            self.now + self.config.txn_timeout,
            DistEvent::TxnTimeout { txn },
        );
    }

    fn deliver(&mut self, dst: Endpoint, message: DistMessage) {
        self.stats.deliveries += 1;
        match (dst, message) {
            (Endpoint::Node(n), DistMessage::PrepareBatch { batch, txns }) => {
                let node = &mut self.nodes[n.raw() as usize];
                if !node.is_up() {
                    return;
                }
                let ops: usize = txns.iter().map(|t| t.ops.len()).sum();
                let done = node.book_work(
                    self.now,
                    ops,
                    self.config.per_batch_cost,
                    self.config.per_op_cost,
                );
                node.stage_batch(&txns);
                let ids: Vec<ActivityId> = txns.iter().map(|t| t.txn).collect();
                self.note(format!(
                    "t={} n{} staged batch={batch} txns={}",
                    self.now,
                    n.raw(),
                    ids.len()
                ));
                for &txn in &ids {
                    self.queue.schedule(
                        done + self.config.resolve_timeout,
                        DistEvent::ResolveNudge {
                            shard: n,
                            txn,
                            attempt: 0,
                        },
                    );
                }
                self.send(
                    done,
                    Endpoint::Node(n),
                    Endpoint::Coordinator,
                    DistMessage::VoteBatch {
                        shard: n,
                        txns: ids,
                    },
                );
            }
            (Endpoint::Node(n), DistMessage::DecisionBatch { decisions }) => {
                let node = &mut self.nodes[n.raw() as usize];
                if !node.is_up() {
                    return;
                }
                node.book_work(
                    self.now,
                    decisions.len(),
                    self.config.per_batch_cost,
                    self.config.per_op_cost,
                );
                for (txn, commit) in decisions {
                    node.learn_outcome(txn, commit);
                }
            }
            (Endpoint::Coordinator, DistMessage::VoteBatch { shard, txns }) => {
                let reqs = self.coordinator.record_votes(shard, &txns);
                self.schedule_decision_flushes(reqs);
            }
            // Misrouted combinations cannot be constructed by this loop.
            _ => {}
        }
    }

    /// Processes one scheduled event; returns `false` when the queue is
    /// drained.
    pub fn step_event(&mut self) -> bool {
        let Some(scheduled) = self.queue.pop() else {
            return false;
        };
        self.now = self.now.max(scheduled.time);
        self.stats.events += 1;
        self.stats.makespan = self.now;
        match scheduled.event {
            DistEvent::ClientTick { client } => {
                if self.client_ticks_left[client] == 0 {
                    return true;
                }
                self.client_ticks_left[client] -= 1;
                for _ in 0..self.config.requests_per_tick {
                    self.submit_one(client);
                }
                if self.client_ticks_left[client] > 0 {
                    self.queue.schedule(
                        self.now + self.config.tick_interval,
                        DistEvent::ClientTick { client },
                    );
                }
            }
            DistEvent::FlushPrepares { shard } => {
                let (batch, more) = self.coordinator.drain_prepares(shard);
                if more {
                    self.queue
                        .schedule(self.now, DistEvent::FlushPrepares { shard });
                }
                if let Some((id, txns)) = batch {
                    self.send(
                        self.now,
                        Endpoint::Coordinator,
                        Endpoint::Node(shard),
                        DistMessage::PrepareBatch { batch: id, txns },
                    );
                }
            }
            DistEvent::FlushDecisions { shard } => {
                let (decisions, more) = self.coordinator.drain_decisions(shard);
                if more {
                    self.queue
                        .schedule(self.now, DistEvent::FlushDecisions { shard });
                }
                if !decisions.is_empty() {
                    self.send(
                        self.now,
                        Endpoint::Coordinator,
                        Endpoint::Node(shard),
                        DistMessage::DecisionBatch { decisions },
                    );
                }
            }
            DistEvent::Deliver { dst, message } => self.deliver(dst, message),
            DistEvent::TxnTimeout { txn } => {
                let reqs = self.coordinator.on_timeout(txn);
                if !reqs.is_empty() {
                    self.note(format!("t={} timeout-abort {txn}", self.now));
                }
                self.schedule_decision_flushes(reqs);
            }
            DistEvent::ShardCrash { shard } => {
                self.stats.crashes += 1;
                self.note(format!("t={} crash n{}", self.now, shard.raw()));
                self.nodes[shard.raw() as usize].crash();
            }
            DistEvent::ShardRecover { shard } => {
                let outcome = self.nodes[shard.raw() as usize].restart();
                self.stats.recoveries += 1;
                self.stats.in_doubt += outcome.in_doubt.len() as u64;
                self.note(format!(
                    "t={} recover n{} redone={} in_doubt={}",
                    self.now,
                    shard.raw(),
                    outcome.redone.len(),
                    outcome.in_doubt.len()
                ));
                if !outcome.in_doubt.is_empty() {
                    // Re-vote for every in-doubt transaction: the
                    // coordinator either completes the vote set or
                    // answers with the durable decision.
                    self.send(
                        self.now,
                        Endpoint::Node(shard),
                        Endpoint::Coordinator,
                        DistMessage::VoteBatch {
                            shard,
                            txns: outcome.in_doubt.clone(),
                        },
                    );
                    for txn in outcome.in_doubt {
                        self.queue.schedule(
                            self.now + self.config.resolve_timeout,
                            DistEvent::ResolveNudge {
                                shard,
                                txn,
                                attempt: 0,
                            },
                        );
                    }
                }
            }
            DistEvent::ResolveNudge {
                shard,
                txn,
                attempt,
            } => {
                let node = &self.nodes[shard.raw() as usize];
                if !node.is_up() || node.outcome_of(txn).is_some() || !node.has_staged(txn) {
                    return true;
                }
                if attempt >= self.config.max_resolve_attempts {
                    self.note(format!(
                        "t={} n{} gave up resolving {txn}",
                        self.now,
                        shard.raw()
                    ));
                    return true;
                }
                self.send(
                    self.now,
                    Endpoint::Node(shard),
                    Endpoint::Coordinator,
                    DistMessage::VoteBatch {
                        shard,
                        txns: vec![txn],
                    },
                );
                self.queue.schedule(
                    self.now + self.config.resolve_timeout,
                    DistEvent::ResolveNudge {
                        shard,
                        txn,
                        attempt: attempt + 1,
                    },
                );
            }
        }
        let c = self.coordinator.stats();
        if c.committed + c.aborted > self.decided_seen {
            self.decided_seen = c.committed + c.aborted;
            self.stats.last_decision_at = self.now;
        }
        true
    }

    /// Runs until no events remain. Terminates: client streams are
    /// finite, retransmissions are attempt-bounded, and every admitted
    /// transaction is decided by votes or by its timeout.
    pub fn run_to_quiescence(&mut self) {
        while self.step_event() {}
    }

    /// Run counters (coordinator decisions folded in).
    pub fn stats(&self) -> DistStats {
        let mut s = self.stats;
        let c = self.coordinator.stats();
        s.committed = c.committed;
        s.aborted = c.aborted;
        s.timeout_aborts = c.timeout_aborts;
        s
    }

    /// The rolling hash of the run's trace lines — equal across runs with
    /// equal configs, the replay fingerprint.
    pub fn trace_hash(&self) -> u64 {
        self.trace_hash
    }

    /// The recorded trace lines (empty unless
    /// [`DistConfig::record_trace`]).
    pub fn trace(&self) -> &[String] {
        &self.trace
    }

    /// A digest of the final observable state: every shard's committed
    /// key/value state plus every durable decision.
    ///
    /// # Panics
    ///
    /// Panics if a shard is still crashed.
    pub fn state_digest(&self) -> u64 {
        let mut d = 0u64;
        let mut mix = |bytes: &[u8]| d = d.rotate_left(7) ^ fnv1a(bytes);
        for node in &self.nodes {
            mix(&u64::from(node.id().raw()).to_le_bytes());
            for (k, v) in node.state() {
                mix(&k.to_le_bytes());
                mix(&v.to_le_bytes());
            }
        }
        for (txn, commit) in self.coordinator.all_decisions() {
            mix(&u64::from(txn.raw()).to_le_bytes());
            mix(&[u8::from(commit)]);
        }
        d
    }

    /// Checks the run's end-to-end invariants:
    ///
    /// 1. every shard is up and every admitted transaction is decided;
    /// 2. every participant's durable outcome agrees with the
    ///    coordinator's decision (atomic commitment);
    /// 3. money is conserved — account balances (keys below
    ///    [`LISTING_BASE`]) sum to zero across all shards, since every
    ///    committed transfer's deltas cancel and aborted ones must leave
    ///    no trace.
    pub fn verify(&self) -> Result<(), String> {
        for node in &self.nodes {
            if !node.is_up() {
                return Err(format!("shard n{} still crashed", node.id().raw()));
            }
        }
        if self.coordinator.undecided() > 0 {
            return Err(format!(
                "{} transactions admitted but never decided",
                self.coordinator.undecided()
            ));
        }
        for (txn, decided) in self.coordinator.all_decisions() {
            for node in &self.nodes {
                if !node.has_staged(txn) {
                    continue;
                }
                match node.outcome_of(txn) {
                    Some(learned) if learned != decided => {
                        return Err(format!(
                            "outcome disagreement: {txn} decided {decided} but n{} applied {learned}",
                            node.id().raw()
                        ));
                    }
                    None if decided => {
                        return Err(format!(
                            "committed {txn} never applied at prepared shard n{}",
                            node.id().raw()
                        ));
                    }
                    _ => {}
                }
            }
        }
        let total: i64 = self
            .nodes
            .iter()
            .flat_map(|n| n.state())
            .filter(|(k, _)| *k < LISTING_BASE)
            .map(|(_, v)| v)
            .sum();
        if total != 0 {
            return Err(format!("conservation violated: balances sum to {total}"));
        }
        Ok(())
    }

    /// The committed key/value state of shard `i`.
    pub fn shard_state(&self, i: u32) -> BTreeMap<i64, i64> {
        self.nodes[i as usize].state()
    }

    /// A handle onto shard `i`'s durable log (for the offline recovery
    /// experiments).
    pub fn shard_log(&self, i: u32) -> atomicity_core::recovery::StableLog {
        self.nodes[i as usize].stable_log()
    }

    /// The run's configuration.
    pub fn config(&self) -> &DistConfig {
        &self.config
    }

    /// Current simulated time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The coordinator's durable decision for `txn`, if any.
    pub fn decision(&self, txn: ActivityId) -> Option<bool> {
        self.coordinator.decision(txn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_config() -> DistConfig {
        DistConfig {
            seed: 11,
            shards: 4,
            clients: 3,
            requests_per_tick: 3,
            ticks: 8,
            accounts: 10_000,
            ..DistConfig::default()
        }
    }

    #[test]
    fn reliable_run_commits_everything_and_verifies() {
        let mut s = DistService::new(smoke_config());
        s.run_to_quiescence();
        let stats = s.stats();
        assert_eq!(stats.submitted, 3 * 3 * 8);
        assert_eq!(stats.committed, stats.submitted);
        assert_eq!(stats.aborted, 0);
        s.verify().unwrap();
    }

    #[test]
    fn same_seed_same_run() {
        let run = |seed: u64| {
            let mut s = DistService::new(DistConfig {
                seed,
                ..smoke_config()
            });
            s.run_to_quiescence();
            (s.trace_hash(), s.state_digest(), s.stats())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).1, run(43).1, "different seeds diverge");
    }

    #[test]
    fn lossy_network_still_reaches_agreement() {
        let mut s = DistService::new(DistConfig {
            faults: FaultConfig {
                drop_probability: 0.05,
                duplicate_probability: 0.05,
                reorder_probability: 0.1,
                ..FaultConfig::default()
            },
            ..smoke_config()
        });
        s.run_to_quiescence();
        let stats = s.stats();
        assert_eq!(stats.committed + stats.aborted, stats.submitted);
        s.verify().unwrap();
    }

    #[test]
    fn crash_and_recovery_preserve_atomicity() {
        let mut s = DistService::new(DistConfig {
            crashes: vec![CrashPlan {
                at: 2_500,
                shard: 1,
                downtime: 3_000,
            }],
            ..smoke_config()
        });
        s.run_to_quiescence();
        let stats = s.stats();
        assert_eq!(stats.crashes, 1);
        assert_eq!(stats.recoveries, 1);
        assert_eq!(stats.committed + stats.aborted, stats.submitted);
        s.verify().unwrap();
    }

    #[test]
    fn marketplace_mix_verifies_conservation_over_accounts_only() {
        let mut s = DistService::new(DistConfig {
            workload: WorkloadKind::Marketplace,
            listings: 32,
            ..smoke_config()
        });
        s.run_to_quiescence();
        assert!(s.stats().committed > 0);
        s.verify().unwrap();
    }
}
