//! A partitioned multi-node transaction service with dependency-logged
//! parallel recovery.
//!
//! This crate scales the single-coordinator cluster of `atomicity-sim`
//! out to a *partitioned* service: objects (integer-keyed accounts)
//! shard across N nodes by key hash ([`ShardMap`]), multi-shard
//! transactions run two-phase commit through a batching coordinator
//! ([`DistCoordinator`]), and each shard persists through its own
//! intentions-list log ([`atomicity_core::recovery::IntentionsStore`]).
//! Client traffic is open-loop — "millions of users" modeled as seeded
//! request streams ([`Workload`]) — and every run is a pure function of
//! its seed: the event loop ([`DistService`]) reuses the deterministic
//! scheduler and fault-injecting network of `atomicity-sim`, so
//! `trace_hash`/`state_digest` make any run replayable bit-for-bit.
//!
//! The recovery half is the paper-facing contribution. Classical value
//! logging replays the commit log *serially* — recovery time grows with
//! log length regardless of how little of the log actually conflicts.
//! Here each commit record instead carries the transaction's read/write
//! key footprint ([`atomicity_core::KeyFootprint`], the **dependency
//! log** of Yao et al.), and recovery ([`deplog`]) builds a transaction
//! dependency graph with an edge only where footprints overlap on a key
//! *and* the operations on that key fail the **synthesized conflict
//! table** for the map ADT — Weihl's data-dependent commutativity doing
//! double duty at recovery time: two blind `adjust` increments to the
//! same account commute, so their commits replay in either order or in
//! parallel. Independent chains replay concurrently
//! ([`deplog::parallel_replay`]); the result is certified equal to the
//! serial value-log replay ([`deplog::serial_replay`]).
//!
//! # Example
//!
//! ```
//! use atomicity_dist::{DistConfig, DistService};
//!
//! let mut service = DistService::new(DistConfig {
//!     seed: 7,
//!     shards: 4,
//!     clients: 2,
//!     ticks: 5,
//!     ..DistConfig::default()
//! });
//! service.run_to_quiescence();
//! assert!(service.stats().committed > 0);
//! service.verify().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coordinator;
pub mod deplog;
mod kv;
mod message;
mod node;
mod service;
mod shard;
mod workload;

pub use coordinator::{CoordStats, DistCoordinator};
pub use deplog::{map_commutes, CommitRecord, DepGraph, DepGraphStats, RecoveryCertificate};
pub use kv::ShardKvSpec;
pub use message::{DistEvent, DistMessage, TxnPrepare};
pub use node::ShardNode;
pub use service::{CrashPlan, DistConfig, DistService, DistStats};
pub use shard::ShardMap;
pub use workload::{Workload, WorkloadKind, LISTING_BASE};
