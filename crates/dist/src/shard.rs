//! Key-hash partitioning: which shard owns which key.

use atomicity_sim::NodeId;
use atomicity_spec::OpResult;
use std::collections::BTreeMap;

/// The partitioning function of the service: every integer key has
/// exactly one home shard, decided by a splitmix-style hash of the key.
///
/// The map is pure arithmetic (no state), so every component — clients,
/// the coordinator, recovery — computes the same placement without
/// coordination. Hashing (rather than range-partitioning) spreads the
/// dense account keyspace of the bank workload evenly, which is what the
/// distinct-key scaling claim of experiment E15 needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    shards: u32,
}

/// splitmix64 finalizer — the same mix the simulation's RNG uses, reused
/// as a key-spreading hash.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ShardMap {
    /// Creates a map over `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: u32) -> Self {
        assert!(shards > 0, "a service needs at least one shard");
        ShardMap { shards }
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The home shard of `key`.
    pub fn home(&self, key: i64) -> NodeId {
        NodeId::new((mix(key as u64) % u64::from(self.shards)) as u32)
    }

    /// Splits a transaction's operations by home shard, preserving the
    /// per-shard operation order. Operations without an integer first
    /// argument (whole-object scans) have no single home and are routed
    /// to shard 0 — the service's workloads never stage them, but the
    /// routing must still be total.
    pub fn partition(&self, ops: &[OpResult]) -> BTreeMap<NodeId, Vec<OpResult>> {
        let mut by_shard: BTreeMap<NodeId, Vec<OpResult>> = BTreeMap::new();
        for pair in ops {
            let home = match pair.0.int_arg(0) {
                Some(key) => self.home(key),
                None => NodeId::new(0),
            };
            by_shard.entry(home).or_default().push(pair.clone());
        }
        by_shard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomicity_spec::{op, Value};

    #[test]
    fn placement_is_stable_and_total() {
        let map = ShardMap::new(8);
        for key in -1000..1000 {
            let home = map.home(key);
            assert!(home.raw() < 8);
            assert_eq!(home, map.home(key), "placement must be a pure function");
        }
    }

    #[test]
    fn hashing_spreads_dense_keys() {
        let map = ShardMap::new(8);
        let mut counts = [0usize; 8];
        for key in 0..8000 {
            counts[map.home(key).raw() as usize] += 1;
        }
        for (shard, &n) in counts.iter().enumerate() {
            assert!(
                (500..=1500).contains(&n),
                "shard {shard} got {n} of 8000 dense keys"
            );
        }
    }

    #[test]
    fn partition_preserves_per_shard_order() {
        let map = ShardMap::new(4);
        let ops: Vec<_> = (0..20)
            .map(|k| (op("adjust", [k, 1]), Value::ok()))
            .collect();
        let parts = map.partition(&ops);
        assert_eq!(parts.values().map(Vec::len).sum::<usize>(), 20);
        for (shard, part) in &parts {
            let keys: Vec<i64> = part.iter().filter_map(|(o, _)| o.int_arg(0)).collect();
            let mut sorted = keys.clone();
            sorted.sort_unstable();
            assert_eq!(keys, sorted, "dense ascending input stays ordered");
            for &k in &keys {
                assert_eq!(map.home(k), *shard);
            }
        }
    }
}
