//! Dependency-logged parallel recovery.
//!
//! Value-log recovery ([`serial_replay`], which is literally
//! [`IntentionsStore::recover`] run over the shard's log) replays commit
//! records one at a time: recovery time grows with log length no matter
//! how little of the log actually conflicts. The dependency log removes
//! the false serialization. Each `CommitDep` record carries the
//! transaction's read/write key footprint
//! ([`atomicity_core::KeyFootprint`]); recovery builds a transaction
//! dependency graph ([`DepGraph`]) with an edge only where two commits'
//! footprints overlap on a key **and** their operations on that key fail
//! the synthesized conflict table ([`map_commutes`]) — two blind `adjust`
//! increments of the same account commute and get no edge; two `set`s of
//! the same listing do not and stay ordered. Topological scheduling then
//! replays independent chains in parallel ([`parallel_replay`]), and the
//! result is *certified* against the serial value-log replay
//! ([`certified_recovery`]): byte-identical final state or an error.
//!
//! Correctness sketch: non-commuting pairs are ordered by graph edges
//! (conservatively — the unkeyed scans and the per-key cap only ever add
//! edges), so any two operations that may interleave during the parallel
//! replay commute under the synthesized relation, whose soundness is
//! verified exhaustively by `atomicity-lint`'s forward-commutativity
//! checker. Commuting interleavings reach the same final state, hence the
//! parallel result equals the serial one — and the certificate checks
//! exactly that equality on every run rather than trusting the argument.
//!
//! [`IntentionsStore::recover`]: atomicity_core::recovery::IntentionsStore::recover

use crate::kv::ShardKvSpec;
use atomicity_core::recovery::{IntentionsStore, StableLog};
use atomicity_core::{CommutesRel, ConflictTable, KeyFootprint, LogRecord, RecordKind};
use atomicity_lint::{synthesize_table, SynthConfig};
use atomicity_spec::{ActivityId, OpResult, Operation};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Per-key predecessor lists longer than this are folded into a single
/// ordering edge bundle (sound over-serialization that bounds graph
/// construction on pathologically hot keys).
const KEY_FRONTIER_CAP: usize = 32;

/// The synthesized conflict table for [`ShardKvSpec`], built once per
/// process from the spec itself (depth-bounded exhaustive
/// forward-commutativity checking — the same machinery experiment E13
/// certifies).
pub fn map_commutes() -> &'static ConflictTable {
    static TABLE: OnceLock<ConflictTable> = OnceLock::new();
    TABLE.get_or_init(|| {
        synthesize_table(
            "dist-map",
            "ShardKvSpec",
            &ShardKvSpec::new(),
            &ShardKvSpec::universe(),
            &SynthConfig::default(),
        )
        .table
    })
}

/// One committed transaction as recovery sees it: its staged operations
/// and its footprint (from the `CommitDep` record, or recomputed from the
/// operations when the log used plain value commits).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitRecord {
    /// The committed transaction.
    pub txn: ActivityId,
    /// Its staged (operation, result) pairs.
    pub ops: Vec<OpResult>,
    /// Its read/write key footprint.
    pub footprint: KeyFootprint,
    /// Whether the footprint was carried by the log (`CommitDep`) rather
    /// than recomputed here — recomputation is the extra cost value
    /// logging pays to recover in parallel.
    pub footprint_logged: bool,
}

/// Extracts the committed transactions of one object's log, in
/// commit-record order, pairing each with its staged intentions.
/// Duplicate outcome records apply once (first wins, matching
/// [`IntentionsStore::recover`]); aborted and in-doubt transactions are
/// skipped.
///
/// [`IntentionsStore::recover`]: atomicity_core::recovery::IntentionsStore::recover
pub fn committed_records(records: &[LogRecord]) -> Vec<CommitRecord> {
    let spec = ShardKvSpec::new();
    let mut staged: BTreeMap<ActivityId, Vec<OpResult>> = BTreeMap::new();
    let mut done: BTreeSet<ActivityId> = BTreeSet::new();
    let mut out = Vec::new();
    for r in records {
        match &r.kind {
            RecordKind::Prepare { ops } => {
                staged.insert(r.txn, ops.clone());
            }
            RecordKind::Abort => {
                done.insert(r.txn);
            }
            RecordKind::Commit | RecordKind::CommitDep { .. } => {
                if !done.insert(r.txn) {
                    continue;
                }
                let ops = staged.get(&r.txn).cloned().unwrap_or_default();
                let (footprint, footprint_logged) = match &r.kind {
                    RecordKind::CommitDep { footprint } => (footprint.clone(), true),
                    _ => (KeyFootprint::from_ops(&spec, &ops), false),
                };
                out.push(CommitRecord {
                    txn: r.txn,
                    ops,
                    footprint,
                    footprint_logged,
                });
            }
        }
    }
    out
}

/// Counters from dependency-graph construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DepGraphStats {
    /// Committed transactions (graph nodes).
    pub nodes: usize,
    /// Ordering edges kept.
    pub edges: usize,
    /// Candidate pairs whose operations were checked against the table.
    pub checked_pairs: usize,
    /// Candidate pairs pruned because every overlapping operation pair
    /// commutes — the data-dependent win over key-overlap-only analysis.
    pub pruned_commuting: usize,
    /// Unkeyed (whole-object) footprints handled as global barriers.
    pub barriers: usize,
    /// Per-key frontier overflows folded by `KEY_FRONTIER_CAP`.
    pub capped: usize,
}

/// The transaction dependency graph of one shard's committed log.
#[derive(Debug)]
pub struct DepGraph {
    records: Vec<CommitRecord>,
    succ: Vec<Vec<u32>>,
    indegree: Vec<u32>,
    stats: DepGraphStats,
}

/// The operations of one record touching one key.
fn ops_on_key(record: &CommitRecord, key: i64) -> Vec<&Operation> {
    record
        .ops
        .iter()
        .map(|(o, _)| o)
        .filter(|o| o.int_arg(0) == Some(key))
        .collect()
}

/// Whether any operation pair across the two records' slices on one key
/// fails the commutativity relation.
fn slices_conflict(rel: &dyn CommutesRel, a: &[&Operation], b: &[&Operation]) -> bool {
    a.iter().any(|p| b.iter().any(|q| !rel.commutes(p, q)))
}

impl DepGraph {
    /// Builds the graph: one pass over the commit order, keeping a
    /// per-key frontier of possible predecessors. An edge is added only
    /// when footprints overlap on a key and the overlapping operations
    /// fail `rel`; unkeyed footprints (scans) become global barriers.
    pub fn build(records: Vec<CommitRecord>, rel: &dyn CommutesRel) -> DepGraph {
        let n = records.len();
        let mut succ: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut indegree: Vec<u32> = vec![0; n];
        let mut stats = DepGraphStats {
            nodes: n,
            ..DepGraphStats::default()
        };
        let mut frontier: BTreeMap<i64, Vec<u32>> = BTreeMap::new();
        let mut last_barrier: Option<u32> = None;
        let mut since_barrier: Vec<u32> = Vec::new();

        for i in 0..n {
            let idx = i as u32;
            let fp = &records[i].footprint;
            let mut preds: BTreeSet<u32> = BTreeSet::new();

            if fp.unkeyed_reads || fp.unkeyed_writes || fp.is_empty() {
                // A whole-object scan (or an opaque empty footprint):
                // ordered after everything so far, and everything later
                // is ordered after it. Conservative for read-only scans
                // paired with other reads, sound always.
                stats.barriers += 1;
                if since_barrier.is_empty() {
                    preds.extend(last_barrier);
                } else {
                    preds.extend(since_barrier.iter().copied());
                }
                last_barrier = Some(idx);
                since_barrier.clear();
                frontier.clear();
            } else {
                let mut keys: Vec<i64> = fp.reads.iter().chain(fp.writes.iter()).copied().collect();
                keys.sort_unstable();
                keys.dedup();
                for key in keys {
                    let mine = ops_on_key(&records[i], key);
                    let entries = frontier.entry(key).or_default();
                    if entries.is_empty() {
                        preds.extend(last_barrier);
                    }
                    let mut conflicted_with_all = !entries.is_empty();
                    for &j in entries.iter() {
                        stats.checked_pairs += 1;
                        let theirs = ops_on_key(&records[j as usize], key);
                        if slices_conflict(rel, &theirs, &mine) {
                            preds.insert(j);
                        } else {
                            stats.pruned_commuting += 1;
                            conflicted_with_all = false;
                        }
                    }
                    if conflicted_with_all {
                        // Everything older on this key is now transitively
                        // ordered before us: the frontier collapses to us.
                        entries.clear();
                    } else if entries.len() >= KEY_FRONTIER_CAP {
                        // Bound the frontier: order the whole list before
                        // us (sound extra edges) and collapse.
                        stats.capped += 1;
                        preds.extend(entries.iter().copied());
                        entries.clear();
                    }
                    entries.push(idx);
                }
                since_barrier.push(idx);
            }

            for p in preds {
                succ[p as usize].push(idx);
                indegree[i] += 1;
                stats.edges += 1;
            }
        }

        DepGraph {
            records,
            succ,
            indegree,
            stats,
        }
    }

    /// Graph construction counters.
    pub fn stats(&self) -> DepGraphStats {
        self.stats
    }

    /// The committed transactions, in commit-record order.
    pub fn records(&self) -> &[CommitRecord] {
        &self.records
    }
}

/// Shared scheduling state of one parallel replay. Idle workers spin
/// with `yield_now` rather than parking on a condvar: a replay lasts
/// milliseconds, and it keeps the hold-a-lock-while-calling pattern out
/// of the crate entirely (the lock-order lint scans this directory).
struct ReplayQueue {
    ready: Mutex<VecDeque<u32>>,
    remaining: AtomicUsize,
}

/// Number of key stripes the replayed state is sharded into (one lock
/// each; an operation touches exactly one stripe at a time).
const STRIPES: usize = 64;

fn stripe_of(key: i64) -> usize {
    // splitmix64 finalizer, as in `ShardMap`.
    let mut z = key as u64;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) as usize % STRIPES
}

/// Applies one blind operation to the striped state. Reads and scans are
/// no-ops (redo recovery reinstalls effects; it answers no queries).
fn apply_op(stripes: &[Mutex<BTreeMap<i64, i64>>], op: &Operation) {
    let Some(key) = op.int_arg(0) else { return };
    match op.name() {
        "put" | "set" => {
            if let Some(v) = op.int_arg(1) {
                stripes[stripe_of(key)].lock().insert(key, v);
            }
        }
        "add" | "adjust" => {
            if let Some(d) = op.int_arg(1) {
                *stripes[stripe_of(key)].lock().entry(key).or_insert(0) += d;
            }
        }
        "remove" => {
            stripes[stripe_of(key)].lock().remove(&key);
        }
        _ => {}
    }
}

/// Replays the graph's transactions with `threads` workers: sources run
/// first, an edge's target only after its source, independent chains
/// concurrently. Returns the recovered key/value state.
///
/// The result is deterministic despite thread scheduling: operations
/// that may interleave commute (that is what the missing edge certifies),
/// and each is applied atomically under its key stripe's lock.
pub fn parallel_replay(graph: &DepGraph, threads: usize) -> BTreeMap<i64, i64> {
    let n = graph.records.len();
    let stripes: Vec<Mutex<BTreeMap<i64, i64>>> =
        (0..STRIPES).map(|_| Mutex::new(BTreeMap::new())).collect();
    let indegree: Vec<AtomicU32> = graph.indegree.iter().map(|&d| AtomicU32::new(d)).collect();
    let queue = ReplayQueue {
        ready: Mutex::new(
            (0..n as u32)
                .filter(|&i| graph.indegree[i as usize] == 0)
                .collect(),
        ),
        remaining: AtomicUsize::new(n),
    };

    let workers = threads.clamp(1, 64);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let node = queue.ready.lock().pop_front();
                let Some(node) = node else {
                    if queue.remaining.load(Ordering::Acquire) == 0 {
                        return;
                    }
                    std::thread::yield_now();
                    continue;
                };
                for (op, _) in &graph.records[node as usize].ops {
                    apply_op(&stripes, op);
                }
                for &s in &graph.succ[node as usize] {
                    if indegree[s as usize].fetch_sub(1, Ordering::AcqRel) == 1 {
                        queue.ready.lock().push_back(s);
                    }
                }
                queue.remaining.fetch_sub(1, Ordering::AcqRel);
            });
        }
    });

    let mut state = BTreeMap::new();
    for s in stripes {
        state.extend(s.into_inner());
    }
    state
}

/// The serial value-log baseline: recovery exactly as production runs it
/// — [`IntentionsStore::recover`] over a copy of the records, one commit
/// at a time — returning the recovered key/value state.
///
/// [`IntentionsStore::recover`]: atomicity_core::recovery::IntentionsStore::recover
pub fn serial_replay(records: &[LogRecord]) -> BTreeMap<i64, i64> {
    let Some(object) = records.first().map(|r| r.object) else {
        return BTreeMap::new();
    };
    let log = StableLog::new();
    for r in records {
        atomicity_core::DurableLog::append(&log, r.clone());
    }
    let store = IntentionsStore::new(ShardKvSpec::new(), object, log);
    store.crash();
    store.recover();
    store
        .committed_frontier()
        .into_iter()
        .next()
        .unwrap_or_default()
}

/// A certified parallel recovery: the recovered state plus the evidence
/// that it equals the serial value-log replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryCertificate {
    /// The recovered key/value state (identical under both strategies).
    pub state: BTreeMap<i64, i64>,
    /// Dependency-graph construction counters.
    pub graph: DepGraphStats,
    /// Commits whose footprint came from the log rather than being
    /// recomputed (all of them, when the shard ran dependency logging).
    pub footprints_logged: usize,
}

/// Runs dependency-graph parallel recovery over one shard's log and
/// certifies the result against the serial baseline. Returns an error
/// describing the first divergent key if the states differ (they cannot,
/// unless the conflict relation is unsound — which is exactly what this
/// check would catch).
pub fn certified_recovery(
    records: &[LogRecord],
    rel: &dyn CommutesRel,
    threads: usize,
) -> Result<RecoveryCertificate, String> {
    let commits = committed_records(records);
    let footprints_logged = commits.iter().filter(|c| c.footprint_logged).count();
    let graph = DepGraph::build(commits, rel);
    let parallel = parallel_replay(&graph, threads);
    let serial = serial_replay(records);
    if parallel != serial {
        let divergent = serial
            .iter()
            .find(|(k, v)| parallel.get(k) != Some(v))
            .map(|(k, v)| format!("key {k}: serial {v}, parallel {:?}", parallel.get(k)))
            .or_else(|| {
                parallel
                    .iter()
                    .find(|(k, _)| !serial.contains_key(*k))
                    .map(|(k, v)| format!("key {k}: parallel {v}, absent serially"))
            })
            .unwrap_or_else(|| "states differ".into());
        return Err(format!(
            "parallel dependency replay diverged from serial value replay: {divergent}"
        ));
    }
    Ok(RecoveryCertificate {
        state: parallel,
        graph: graph.stats(),
        footprints_logged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomicity_spec::{op, ObjectId, Value};

    fn log_commit_dep(log: &mut Vec<LogRecord>, txn: u32, ops: Vec<OpResult>) {
        let spec = ShardKvSpec::new();
        let footprint = KeyFootprint::from_ops(&spec, &ops);
        let txn = ActivityId::new(txn);
        let object = ObjectId::new(1);
        log.push(LogRecord {
            txn,
            object,
            kind: RecordKind::Prepare { ops },
        });
        log.push(LogRecord {
            txn,
            object,
            kind: RecordKind::CommitDep { footprint },
        });
    }

    fn adjust(key: i64, delta: i64) -> OpResult {
        (op("adjust", [key, delta]), Value::ok())
    }

    fn set(key: i64, v: i64) -> OpResult {
        (op("set", [key, v]), Value::ok())
    }

    #[test]
    fn commuting_adjusts_build_an_edgeless_graph() {
        let mut log = Vec::new();
        for i in 0..20 {
            log_commit_dep(&mut log, i + 1, vec![adjust(5, 1), adjust(6, -1)]);
        }
        let graph = DepGraph::build(committed_records(&log), map_commutes());
        assert_eq!(graph.stats().nodes, 20);
        assert_eq!(graph.stats().edges, 0, "blind increments all commute");
        assert!(graph.stats().pruned_commuting > 0);
    }

    #[test]
    fn conflicting_sets_stay_ordered_and_replay_correctly() {
        let mut log = Vec::new();
        // Ten last-writer-wins overwrites of one key: a serial chain.
        for i in 0..10 {
            log_commit_dep(&mut log, i + 1, vec![set(7, i64::from(i))]);
        }
        let graph = DepGraph::build(committed_records(&log), map_commutes());
        assert_eq!(graph.stats().edges, 9, "a chain of 10 has 9 edges");
        let cert = certified_recovery(&log, map_commutes(), 4).unwrap();
        assert_eq!(cert.state.get(&7), Some(&9), "last write wins");
        assert_eq!(cert.footprints_logged, 10);
    }

    #[test]
    fn scans_are_barriers() {
        let mut log = Vec::new();
        log_commit_dep(&mut log, 1, vec![adjust(1, 5)]);
        log_commit_dep(
            &mut log,
            2,
            vec![(op("sum", [] as [i64; 0]), Value::from(5))],
        );
        log_commit_dep(&mut log, 3, vec![adjust(1, 5)]);
        let graph = DepGraph::build(committed_records(&log), map_commutes());
        assert_eq!(graph.stats().barriers, 1);
        assert_eq!(graph.stats().edges, 2, "before → scan → after");
        let cert = certified_recovery(&log, map_commutes(), 2).unwrap();
        assert_eq!(cert.state.get(&1), Some(&10));
    }

    #[test]
    fn value_logged_commits_recover_with_recomputed_footprints() {
        let object = ObjectId::new(1);
        let mut log = Vec::new();
        for i in 0..5u32 {
            let txn = ActivityId::new(i + 1);
            log.push(LogRecord {
                txn,
                object,
                kind: RecordKind::Prepare {
                    ops: vec![adjust(i64::from(i), 10)],
                },
            });
            log.push(LogRecord {
                txn,
                object,
                kind: RecordKind::Commit,
            });
        }
        let cert = certified_recovery(&log, map_commutes(), 4).unwrap();
        assert_eq!(cert.footprints_logged, 0, "plain commits carry nothing");
        assert_eq!(cert.state.len(), 5);
    }

    #[test]
    fn aborted_and_in_doubt_transactions_are_not_replayed() {
        let object = ObjectId::new(1);
        let mut log = Vec::new();
        log_commit_dep(&mut log, 1, vec![adjust(1, 100)]);
        log.push(LogRecord {
            txn: ActivityId::new(2),
            object,
            kind: RecordKind::Prepare {
                ops: vec![adjust(1, 999)],
            },
        });
        log.push(LogRecord {
            txn: ActivityId::new(2),
            object,
            kind: RecordKind::Abort,
        });
        log.push(LogRecord {
            txn: ActivityId::new(3),
            object,
            kind: RecordKind::Prepare {
                ops: vec![adjust(1, 555)],
            },
        });
        let cert = certified_recovery(&log, map_commutes(), 2).unwrap();
        assert_eq!(cert.state.get(&1), Some(&100));
    }

    #[test]
    fn hot_key_frontier_cap_over_serializes_but_stays_correct() {
        let mut log = Vec::new();
        for i in 0..200 {
            log_commit_dep(&mut log, i + 1, vec![adjust(1, 1)]);
        }
        let graph = DepGraph::build(committed_records(&log), map_commutes());
        assert!(graph.stats().capped > 0, "200 commuting commits on one key");
        let cert = certified_recovery(&log, map_commutes(), 8).unwrap();
        assert_eq!(cert.state.get(&1), Some(&200));
    }

    #[test]
    fn divergence_is_reported_not_swallowed() {
        // An unsound relation that calls everything commuting must be
        // caught by the certificate on a last-writer-wins history.
        let mut log = Vec::new();
        log_commit_dep(&mut log, 1, vec![set(3, 10)]);
        log_commit_dep(&mut log, 2, vec![set(3, 20)]);
        let everything_commutes = |_: &Operation, _: &Operation| true;
        // With only two records the race may still land in order; force
        // determinism by replaying many conflicting writes.
        for i in 0..50 {
            log_commit_dep(&mut log, i + 3, vec![set(3, i64::from(i))]);
        }
        let result = certified_recovery(&log, &everything_commutes, 8);
        // Either the schedule happened to match serial order (rare) or
        // the certificate caught the divergence; what must never happen
        // is a wrong state with an Ok certificate.
        if let Ok(cert) = result {
            assert_eq!(cert.state.get(&3), Some(&49));
        }
    }
}
