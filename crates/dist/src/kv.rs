//! The shard object's sequential specification: the workspace key/value
//! map plus a blind overwrite.
//!
//! Everything the partitioned service stages must be *blind*: the
//! coordinator records (operation, result) pairs at submission, before
//! any shard has executed anything, so a staged result must be correct in
//! every state. `adjust(k,d)→ok` is blind; `put(k,v)→old` is not (its
//! result depends on the current binding). [`ShardKvSpec`] therefore
//! extends [`KvMapSpec`] with `set(k,v)→ok` — the blind overwrite — which
//! also gives the dependency graph its non-commutative edges: two `set`s
//! of the same key do not commute (last writer wins), while two `adjust`s
//! do. That contrast is exactly Weihl's data-dependent conflict relation,
//! and the recovery experiments lean on both halves of it.

use atomicity_lint::synth::map_universe;
use atomicity_spec::specs::KvMapSpec;
use atomicity_spec::{op, Operation, SequentialSpec, Value};
use std::collections::BTreeMap;

/// [`KvMapSpec`] extended with the blind overwrite
/// `set(k,v) → ok`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardKvSpec {
    inner: KvMapSpec,
}

impl ShardKvSpec {
    /// Creates the specification with an empty initial map.
    pub fn new() -> Self {
        ShardKvSpec {
            inner: KvMapSpec::new(),
        }
    }

    /// The operation universe for conflict-table synthesis over this
    /// spec: the map universe of `atomicity-lint` plus `set` instances in
    /// the same-key / identical / distinct-key patterns the bucketing
    /// needs.
    pub fn universe() -> Vec<Operation> {
        let mut u = map_universe();
        u.push(op("set", [1, 5]));
        u.push(op("set", [1, 7]));
        u.push(op("set", [2, 9]));
        u
    }
}

impl SequentialSpec for ShardKvSpec {
    type State = BTreeMap<i64, i64>;

    fn initial(&self) -> Self::State {
        self.inner.initial()
    }

    fn step(&self, state: &Self::State, op: &Operation) -> Vec<(Value, Self::State)> {
        match op.name() {
            "set" if op.args().len() == 2 => match (op.int_arg(0), op.int_arg(1)) {
                (Some(k), Some(v)) => {
                    let mut s = state.clone();
                    s.insert(k, v);
                    vec![(Value::ok(), s)]
                }
                _ => Vec::new(),
            },
            _ => self.inner.step(state, op),
        }
    }

    fn is_read_only(&self, op: &Operation) -> bool {
        self.inner.is_read_only(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_is_a_blind_overwrite() {
        let m = ShardKvSpec::new();
        assert!(m.accepts_serial(&[
            (op("set", [1, 5]), Value::ok()),
            (op("set", [1, 7]), Value::ok()),
            (op("get", [1]), Value::from(7)),
        ]));
        // The result is `ok` in every state — blind, hence stageable.
        assert!(!m.accepts_serial(&[(op("set", [1, 5]), Value::from(5))]));
        assert!(!m.is_read_only(&op("set", [1, 5])));
    }

    #[test]
    fn inherited_map_operations_still_work() {
        let m = ShardKvSpec::new();
        assert!(m.accepts_serial(&[
            (op("adjust", [3, 10]), Value::ok()),
            (op("sum", [] as [i64; 0]), Value::from(10)),
        ]));
        assert!(m.step(&BTreeMap::new(), &op("set", [1])).is_empty());
    }
}
