//! Messages and events of the partitioned service.
//!
//! Unlike the one-transaction-per-message protocol of `atomicity-sim`,
//! every coordinator↔shard message here carries a *batch*: the
//! coordinator accumulates per-shard prepare queues and decision queues
//! and flushes them on a window or when full, so a shard absorbs one
//! network round and one log force for many transactions — the batching
//! that lets the service sustain open-loop load.

use atomicity_sim::{Endpoint, NodeId};
use atomicity_spec::{ActivityId, OpResult};

/// One transaction's slice of work at one shard: the (operation, result)
/// pairs whose keys the shard owns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnPrepare {
    /// The distributed transaction.
    pub txn: ActivityId,
    /// Its operations homed at the receiving shard, in execution order.
    pub ops: Vec<OpResult>,
}

/// A network message of the batched two-phase-commit protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistMessage {
    /// Coordinator → shard: durably stage each transaction's intentions
    /// and vote for the whole batch at once.
    PrepareBatch {
        /// Batch sequence number (for retransmission bookkeeping).
        batch: u64,
        /// The transactions' per-shard slices.
        txns: Vec<TxnPrepare>,
    },
    /// Shard → coordinator: the listed transactions are durably prepared
    /// here (one yes-vote each).
    VoteBatch {
        /// The voting shard.
        shard: NodeId,
        /// The transactions voted for.
        txns: Vec<ActivityId>,
    },
    /// Coordinator → shard: durable outcomes (`true` = commit).
    DecisionBatch {
        /// The decided transactions.
        decisions: Vec<(ActivityId, bool)>,
    },
}

/// An event in the service's deterministic queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistEvent {
    /// A client wakes up and submits its next open-loop request burst.
    ClientTick {
        /// Index of the client stream.
        client: usize,
    },
    /// The coordinator flushes one shard's pending prepare queue.
    FlushPrepares {
        /// The shard whose queue flushes.
        shard: NodeId,
    },
    /// The coordinator flushes one shard's pending decision queue.
    FlushDecisions {
        /// The shard whose queue flushes.
        shard: NodeId,
    },
    /// Deliver a message to an endpoint (dropped if the shard is down).
    Deliver {
        /// Destination endpoint.
        dst: Endpoint,
        /// Payload.
        message: DistMessage,
    },
    /// The coordinator's vote-collection timeout for one transaction.
    TxnTimeout {
        /// The transaction whose votes may never complete.
        txn: ActivityId,
    },
    /// A shard crashes, losing volatile state (its log survives).
    ShardCrash {
        /// The crashing shard.
        shard: NodeId,
    },
    /// A crashed shard restarts and runs log recovery.
    ShardRecover {
        /// The restarting shard.
        shard: NodeId,
    },
    /// A prepared shard that has seen no decision for a transaction asks
    /// again (re-votes), bounded by an attempt counter — the liveness
    /// path across lost decisions and crash-recovered in-doubt state.
    ResolveNudge {
        /// The asking shard.
        shard: NodeId,
        /// The undecided transaction.
        txn: ActivityId,
        /// Retransmission attempt number (bounded).
        attempt: u32,
    },
}
