//! One shard of the partitioned service.
//!
//! A [`ShardNode`] owns its partition of the keyspace behind an
//! intentions-list recoverable store
//! ([`atomicity_core::recovery::IntentionsStore`]) over simulated stable
//! storage, plus a simple service-time model: processing a batch costs
//! `per_batch + per_op · |ops|` simulated microseconds and the node works
//! through batches one at a time (`busy_until`). The model is what turns
//! "more shards" into a real throughput curve — a saturated shard queues,
//! an idle shard does not.

use crate::kv::ShardKvSpec;
use crate::message::TxnPrepare;
use atomicity_core::recovery::{IntentionsStore, RecoveryOutcome, StableLog};
use atomicity_sim::NodeId;
use atomicity_spec::{ActivityId, ObjectId};
use std::collections::BTreeMap;

/// A shard: recoverable store, durable log handle, liveness flag, and
/// the service-time model.
#[derive(Debug)]
pub struct ShardNode {
    id: NodeId,
    log: StableLog,
    store: IntentionsStore<ShardKvSpec>,
    /// Commit with dependency footprints ([`RecordKind::CommitDep`]) when
    /// set; plain value-log commits otherwise.
    ///
    /// [`RecordKind::CommitDep`]: atomicity_core::RecordKind::CommitDep
    dep_logging: bool,
    up: bool,
    /// Simulated time until which the node is busy with earlier batches.
    busy_until: u64,
}

impl ShardNode {
    /// Creates an empty, live shard.
    pub fn new(id: NodeId, dep_logging: bool) -> Self {
        let log = StableLog::new();
        // Object ids are 1-based (0 is reserved by convention elsewhere
        // in the workspace), one object per shard.
        let store =
            IntentionsStore::new(ShardKvSpec::new(), ObjectId::new(id.raw() + 1), log.clone());
        ShardNode {
            id,
            log,
            store,
            dep_logging,
            up: true,
            busy_until: 0,
        }
    }

    /// The shard's node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Whether the shard is live (a crashed shard drops deliveries).
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Books `ops` operations of batch work arriving at `now` into the
    /// service-time model and returns the simulated time at which the
    /// batch finishes processing.
    pub fn book_work(&mut self, now: u64, ops: usize, per_batch: u64, per_op: u64) -> u64 {
        let start = self.busy_until.max(now);
        self.busy_until = start + per_batch + per_op * ops as u64;
        self.busy_until
    }

    /// Durably stages every transaction slice in the batch (one log force
    /// for the batch; `IntentionsStore::prepare` forces per record, which
    /// over [`StableLog`] is free — the service-time model charges the
    /// batch cost instead).
    pub fn stage_batch(&self, txns: &[TxnPrepare]) {
        for t in txns {
            self.store.prepare(t.txn, t.ops.clone());
        }
    }

    /// Applies a durable outcome: commit (dependency-logged or plain,
    /// per construction) or abort. Idempotent.
    pub fn learn_outcome(&self, txn: ActivityId, commit: bool) {
        if !commit {
            self.store.abort(txn);
        } else if self.dep_logging {
            self.store.commit_dependency_logged(txn);
        } else {
            self.store.commit(txn);
        }
    }

    /// The durable outcome of `txn` at this shard, if any.
    pub fn outcome_of(&self, txn: ActivityId) -> Option<bool> {
        self.store.outcome(txn)
    }

    /// Whether `txn` is durably prepared here.
    pub fn has_staged(&self, txn: ActivityId) -> bool {
        self.store.prepared(txn)
    }

    /// Crashes the shard: volatile state is lost, the log survives, and
    /// deliveries are dropped until [`ShardNode::restart`].
    pub fn crash(&mut self) {
        self.up = false;
        self.store.crash();
    }

    /// Restarts the shard and replays its log; returns the recovery
    /// outcome (notably the in-doubt transactions that must be resolved
    /// against the coordinator's decision log).
    pub fn restart(&mut self) -> RecoveryOutcome {
        self.up = true;
        self.store.recover()
    }

    /// The committed key/value state of the shard's partition.
    ///
    /// # Panics
    ///
    /// Panics if the shard is crashed (recover first).
    pub fn state(&self) -> BTreeMap<i64, i64> {
        self.store
            .committed_frontier()
            .into_iter()
            .next()
            .unwrap_or_default()
    }

    /// A handle onto the shard's durable log (clones share storage) —
    /// the input to the offline recovery experiments in [`crate::deplog`].
    pub fn stable_log(&self) -> StableLog {
        self.log.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomicity_spec::{op, Value};

    fn slice(txn: u32, key: i64, delta: i64) -> TxnPrepare {
        TxnPrepare {
            txn: ActivityId::new(txn),
            ops: vec![(op("adjust", [key, delta]), Value::ok())],
        }
    }

    #[test]
    fn stage_commit_crash_recover_round_trip() {
        let mut node = ShardNode::new(NodeId::new(0), true);
        node.stage_batch(&[slice(1, 10, 5), slice(2, 10, 7), slice(3, 11, -2)]);
        node.learn_outcome(ActivityId::new(1), true);
        node.learn_outcome(ActivityId::new(2), true);
        node.learn_outcome(ActivityId::new(3), false);
        assert_eq!(node.state().get(&10), Some(&12));
        assert_eq!(node.state().get(&11), None);

        node.crash();
        assert!(!node.is_up());
        let outcome = node.restart();
        assert_eq!(outcome.redone.len(), 2);
        assert_eq!(outcome.discarded.len(), 1);
        assert_eq!(node.state().get(&10), Some(&12));
    }

    #[test]
    fn in_doubt_survives_crash() {
        let mut node = ShardNode::new(NodeId::new(1), false);
        node.stage_batch(&[slice(9, 1, 1)]);
        node.crash();
        let outcome = node.restart();
        assert_eq!(outcome.in_doubt, vec![ActivityId::new(9)]);
        node.learn_outcome(ActivityId::new(9), true);
        assert_eq!(node.state().get(&1), Some(&1));
    }

    #[test]
    fn service_time_model_queues() {
        let mut node = ShardNode::new(NodeId::new(2), true);
        assert_eq!(node.book_work(100, 10, 50, 2), 170);
        // Arrives while busy: queues behind the first batch.
        assert_eq!(node.book_work(120, 10, 50, 2), 240);
        // Arrives after an idle gap: starts at its arrival time.
        assert_eq!(node.book_work(1000, 1, 50, 2), 1052);
    }
}
