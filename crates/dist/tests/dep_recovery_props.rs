//! Property tests: dependency-log recovery is equivalent to serial
//! value-log replay, for arbitrary multi-shard histories with injected
//! faults and crashes.
//!
//! Each case runs a full [`DistService`] — random topology, workload
//! mix, contention, network faults, and scheduled shard crashes — to
//! quiescence, then recovers every shard's durable log twice: in
//! parallel from the dependency graph, and serially through the
//! production [`IntentionsStore::recover`] path. The states must match
//! each other *and* the shard's live state. A second property checks
//! that dependency logging is observationally free at runtime: a run
//! with `CommitDep` records and a run with plain value commits, same
//! seed, end in identical states and decisions.
//!
//! [`IntentionsStore::recover`]: atomicity_core::recovery::IntentionsStore::recover

use atomicity_dist::deplog::{certified_recovery, map_commutes};
use atomicity_dist::{CrashPlan, DistConfig, DistService, WorkloadKind};
use atomicity_sim::FaultConfig;
use proptest::prelude::*;

#[allow(clippy::too_many_arguments)]
fn config(
    seed: u64,
    shards: u32,
    clients: usize,
    ticks: u64,
    marketplace: bool,
    accounts: u64,
    hot_permille: u32,
    drop_permille: u32,
    dup_permille: u32,
    crashes: Vec<CrashPlan>,
    dep_logging: bool,
) -> DistConfig {
    DistConfig {
        seed,
        shards,
        clients,
        requests_per_tick: 2,
        ticks,
        accounts,
        hot_fraction: f64::from(hot_permille) / 1000.0,
        hot_accounts: 8,
        listings: 16,
        workload: if marketplace {
            WorkloadKind::Marketplace
        } else {
            WorkloadKind::Bank
        },
        faults: FaultConfig {
            drop_probability: f64::from(drop_permille) / 1000.0,
            duplicate_probability: f64::from(dup_permille) / 1000.0,
            ..FaultConfig::reliable(50, 500)
        },
        crashes,
        dep_logging,
        ..DistConfig::default()
    }
}

fn crash_plans(raw: Vec<(u64, u32, u64)>, shards: u32) -> Vec<CrashPlan> {
    raw.into_iter()
        .map(|(at, shard, downtime)| CrashPlan {
            at: 1 + at,
            shard: shard % shards,
            downtime: 1 + downtime,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For every shard of every run — whatever the contention, faults,
    /// and crash schedule — parallel dependency-graph recovery certifies
    /// equal to the serial value-log baseline, and both equal the
    /// shard's live committed state.
    #[test]
    fn dependency_recovery_equals_serial_value_replay(
        seed in any::<u64>(),
        shards in 1u32..9,
        clients in 1usize..4,
        ticks in 1u64..6,
        marketplace in any::<bool>(),
        accounts in 4u64..2_000,
        hot_permille in 0u32..900,
        drop_permille in 0u32..120,
        dup_permille in 0u32..120,
        raw_crashes in prop::collection::vec((0u64..20_000, 0u32..16, 0u64..6_000), 0..3),
        dep_logging in any::<bool>(),
    ) {
        let crashes = crash_plans(raw_crashes, shards);
        let mut service = DistService::new(config(
            seed, shards, clients, ticks, marketplace, accounts,
            hot_permille, drop_permille, dup_permille, crashes, dep_logging,
        ));
        service.run_to_quiescence();
        prop_assert!(service.verify().is_ok(), "{:?}", service.verify());

        let mut committed_seen = false;
        for shard in 0..shards {
            let records = service.shard_log(shard).records();
            let cert = certified_recovery(&records, map_commutes(), 4)
                .map_err(|e| TestCaseError::fail(format!("shard {shard}: {e}")))?;
            // Offline recovery must agree with the shard's live state.
            prop_assert_eq!(&cert.state, &service.shard_state(shard));
            committed_seen |= cert.graph.nodes > 0;
            if dep_logging {
                // Every commit record must have carried its footprint.
                prop_assert_eq!(cert.footprints_logged, cert.graph.nodes);
            } else {
                prop_assert_eq!(cert.footprints_logged, 0);
            }
        }
        let stats = service.stats();
        prop_assert_eq!(stats.committed + stats.aborted, stats.submitted);
        prop_assert_eq!(committed_seen, stats.committed > 0);
    }

    /// Dependency logging is observationally free at runtime: same seed,
    /// same run — identical trace, states, and decisions — whether
    /// commits are `CommitDep` or plain value commits.
    #[test]
    fn dep_logging_does_not_change_the_run(
        seed in any::<u64>(),
        shards in 1u32..9,
        marketplace in any::<bool>(),
        drop_permille in 0u32..120,
        raw_crashes in prop::collection::vec((0u64..15_000, 0u32..16, 0u64..4_000), 0..2),
    ) {
        let run = |dep_logging: bool| {
            let crashes = crash_plans(raw_crashes.clone(), shards);
            let mut service = DistService::new(config(
                seed, shards, 2, 4, marketplace, 500, 300,
                drop_permille, 0, crashes, dep_logging,
            ));
            service.run_to_quiescence();
            prop_assert!(service.verify().is_ok(), "{:?}", service.verify());
            Ok((service.trace_hash(), service.state_digest(), service.stats()))
        };
        prop_assert_eq!(run(true)?, run(false)?);
    }
}
