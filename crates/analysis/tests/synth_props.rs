//! Property tests of the conflict-table synthesis: every `commutes`
//! verdict a generated table hands the engines must agree with a direct
//! forward-commutativity check on randomly sampled reachable states.
//!
//! States are sampled by random walks through the specification of the
//! same length as the synthesis depth, so every state the walk can reach
//! is one the synthesis proved its verdicts over — the property failing
//! would mean the bucket generalization or the rule lookup (not the
//! bounded exploration) is wrong.

use atomicity_lint::audit::{bank_universe, queue_universe, semiqueue_universe, set_universe};
use atomicity_lint::synth::{escrow_universe, map_universe};
use atomicity_lint::{forward_commute_in_state, standard_syntheses, SynthConfig, SynthSuite};
use atomicity_spec::specs::{
    BankAccountSpec, EscrowCounterSpec, FifoQueueSpec, IntSetSpec, KvMapSpec, SemiqueueSpec,
};
use atomicity_spec::{Operation, SequentialSpec};
use proptest::prelude::*;
use std::sync::OnceLock;

fn suite() -> &'static SynthSuite {
    static SUITE: OnceLock<SynthSuite> = OnceLock::new();
    SUITE.get_or_init(|| standard_syntheses(&SynthConfig::default()))
}

/// Replays a random walk from the initial state: each step applies one
/// universe operation (skipped if disabled there) and follows one of its
/// nondeterministic outcome branches.
fn random_state<S: SequentialSpec>(
    spec: &S,
    universe: &[Operation],
    walk: &[(usize, usize)],
) -> S::State {
    let mut state = spec.initial();
    for &(op_i, branch) in walk {
        let outcomes = spec.step(&state, &universe[op_i % universe.len()]);
        if !outcomes.is_empty() {
            state = outcomes[branch % outcomes.len()].1.clone();
        }
    }
    state
}

/// The property: whenever the generated table admits a pair, the pair
/// forward-commutes in the sampled state; and whenever the per-instance
/// synthesis evidence says a pair commutes everywhere, the direct check
/// agrees too.
fn check_adt<S>(
    adt: &str,
    spec: &S,
    universe: &[Operation],
    walk: &[(usize, usize)],
    i: usize,
    j: usize,
) -> Result<(), TestCaseError>
where
    S: SequentialSpec,
{
    let synth = suite().synthesis(adt).expect("adt synthesized");
    let state = random_state(spec, universe, walk);
    let p = &universe[i % universe.len()];
    let q = &universe[j % universe.len()];
    let direct = forward_commute_in_state(spec, &state, p, q);
    if synth.table.commutes(p, q) {
        prop_assert!(
            direct,
            "{adt}: table admits ({p}, {q}) but they conflict in {state:?}"
        );
    }
    if let Some(v) = synth.instance(p, q) {
        if v.commutes_everywhere() {
            prop_assert!(
                direct,
                "{adt}: instance evidence says ({p}, {q}) commute everywhere but not in {state:?}"
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bank_table_agrees_with_direct_checks(
        walk in prop::collection::vec((any::<usize>(), any::<usize>()), 0..4),
        i in any::<usize>(),
        j in any::<usize>(),
    ) {
        check_adt("bank", &BankAccountSpec::new(), &bank_universe(), &walk, i, j)?;
    }

    #[test]
    fn queue_table_agrees_with_direct_checks(
        walk in prop::collection::vec((any::<usize>(), any::<usize>()), 0..4),
        i in any::<usize>(),
        j in any::<usize>(),
    ) {
        check_adt("queue", &FifoQueueSpec::new(), &queue_universe(), &walk, i, j)?;
    }

    #[test]
    fn set_table_agrees_with_direct_checks(
        walk in prop::collection::vec((any::<usize>(), any::<usize>()), 0..4),
        i in any::<usize>(),
        j in any::<usize>(),
    ) {
        check_adt("set", &IntSetSpec::new(), &set_universe(), &walk, i, j)?;
    }

    #[test]
    fn semiqueue_table_agrees_with_direct_checks(
        walk in prop::collection::vec((any::<usize>(), any::<usize>()), 0..4),
        i in any::<usize>(),
        j in any::<usize>(),
    ) {
        check_adt("semiqueue", &SemiqueueSpec::new(), &semiqueue_universe(), &walk, i, j)?;
    }

    #[test]
    fn map_table_agrees_with_direct_checks(
        walk in prop::collection::vec((any::<usize>(), any::<usize>()), 0..4),
        i in any::<usize>(),
        j in any::<usize>(),
    ) {
        check_adt("map", &KvMapSpec::new(), &map_universe(), &walk, i, j)?;
    }

    #[test]
    fn escrow_table_agrees_with_direct_checks(
        walk in prop::collection::vec((any::<usize>(), any::<usize>()), 0..4),
        i in any::<usize>(),
        j in any::<usize>(),
    ) {
        check_adt("escrow", &EscrowCounterSpec::new(), &escrow_universe(), &walk, i, j)?;
    }
}
