//! The linear-time certifier packaged as a reusable invariant-checker
//! hook.
//!
//! Deterministic simulation (and any other harness that accumulates a
//! [`History`] while running) wants to ask, at arbitrary checkpoints,
//! "is the history so far still certifiably atomic?" without knowing the
//! certifier's internals. [`CertifierHook`] owns the property and the
//! system specification and exposes a single [`CertifierHook::check`]
//! call mapping the certifier's three-valued verdict onto the
//! pass/violation shape checkpoint hooks expect: `Refuted` is a
//! violation, `Certified` passes, and `Unknown` (the certifier declining
//! to decide, e.g. on a malformed prefix) passes by default but is
//! available verbatim via [`CertifierHook::certify_now`] for callers
//! that want to treat it as suspicious.

use crate::certify::{certify, Certificate, Property, Verdict};
use atomicity_spec::{History, SystemSpec};
use std::fmt;

/// A reusable "certify this history" checkpoint hook.
#[derive(Clone)]
pub struct CertifierHook {
    property: Property,
    spec: SystemSpec,
}

impl fmt::Debug for CertifierHook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // `SystemSpec` holds trait objects and is not `Debug`; the
        // property is the identity that matters.
        f.debug_struct("CertifierHook")
            .field("property", &self.property)
            .finish_non_exhaustive()
    }
}

impl CertifierHook {
    /// Builds a hook certifying `property` against `spec`.
    pub fn new(property: Property, spec: SystemSpec) -> Self {
        CertifierHook { property, spec }
    }

    /// The property this hook certifies.
    pub fn property(&self) -> Property {
        self.property
    }

    /// Runs the certifier and returns the raw certificate.
    pub fn certify_now(&self, history: &History) -> Certificate {
        certify(self.property, history, &self.spec)
    }

    /// Checkpoint form: `Err` with the refutation text when the certifier
    /// refutes the history, `Ok` otherwise (including `Unknown`).
    pub fn check(&self, history: &History) -> Result<(), String> {
        match self.certify_now(history).verdict {
            Verdict::Refuted(reason) => Err(format!("certifier refuted history: {reason}")),
            Verdict::Certified | Verdict::Unknown(_) => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomicity_spec::specs::KvMapSpec;
    use atomicity_spec::{op, ActivityId, Event, History, ObjectId, Value};

    fn spec_with(object: ObjectId, entries: &[(i64, i64)]) -> SystemSpec {
        SystemSpec::new().with_object(object, KvMapSpec::with_initial(entries.iter().copied()))
    }

    #[test]
    fn empty_history_certifies() {
        let obj = ObjectId::new(1);
        let hook = CertifierHook::new(Property::Hybrid, spec_with(obj, &[(1, 100)]));
        assert!(hook.check(&History::new()).is_ok());
        assert!(hook.certify_now(&History::new()).is_certified());
    }

    #[test]
    fn committed_transfer_certifies_and_property_is_exposed() {
        let obj = ObjectId::new(1);
        let hook = CertifierHook::new(Property::Hybrid, spec_with(obj, &[(1, 100), (2, 100)]));
        assert_eq!(hook.property(), Property::Hybrid);
        let a = ActivityId::new(1);
        let mut h = History::new();
        h.push(Event::invoke(a, obj, op("adjust", [1, -30])));
        h.push(Event::respond(a, obj, Value::ok()));
        h.push(Event::commit_ts(a, obj, 1));
        assert!(hook.check(&h).is_ok(), "{:?}", hook.certify_now(&h));
    }

    #[test]
    fn refuted_history_is_reported_as_a_violation() {
        let obj = ObjectId::new(1);
        let hook = CertifierHook::new(Property::Hybrid, spec_with(obj, &[(1, 100)]));
        let a = ActivityId::new(1);
        let mut h = History::new();
        // A response the sequential spec cannot produce: reading a balance
        // that was never there.
        h.push(Event::invoke(a, obj, op("get", [1])));
        h.push(Event::respond(a, obj, Value::Int(999)));
        h.push(Event::commit_ts(a, obj, 1));
        let res = hook.check(&h);
        assert!(res.is_err(), "expected refutation, got {res:?}");
    }
}
