//! Static analysis for the atomicity workspace (`atomicity-lint`).
//!
//! The paper's central claim is that commutativity-based locking is
//! *sub-optimal* yet must remain *sound* (§5, §6). This crate turns both
//! halves of that claim into machine-checked artifacts that are cheap
//! enough to run on every commit:
//!
//! 1. [`audit`] — the **conflict-table audit**. Each hand-written lock
//!    table is diffed against the commutativity relation derived by
//!    exhaustive bounded-state enumeration over the corresponding
//!    sequential specification. A table entry that *permits* a
//!    non-commuting pair is **unsound** (hard error, with a concrete
//!    state/result counterexample certificate); an entry that *forbids* a
//!    pair which commutes in every reachable state is **over-conservative**
//!    (warning — the paper's sub-optimality examples, bank
//!    `withdraw/withdraw` and semiqueue interleaved `enq`, land here).
//!
//! 2. [`certify()`] — **linear-time history certification**. The exhaustive
//!    dynamic-atomicity checker enumerates every total order consistent
//!    with `precedes(h)` and is exponential in the number of activities.
//!    The certifier exploits the *watermark* structure of `precedes`
//!    (`⟨a,b⟩ ∈ precedes(h)` iff `a`'s first commit comes before `b`'s
//!    last response) to certify well-formed histories in `O(n)` per
//!    object, falling back to bounded enumeration only where the order is
//!    genuinely partial.
//!
//! 3. [`lockorder`] — the **lock-order audit**. A static scan of the
//!    engine sources recovers the lock-acquisition graph (which locks are
//!    taken while which others are held, including through calls) and
//!    flags cycles — the implementation-level deadlocks the wait-graph
//!    machinery of `core::deadlock` cannot see because they live *under*
//!    it, in the engines' own mutexes.
//!
//! 4. [`synth`] — **conflict-table synthesis**. The auditor inverted: the
//!    commutativity relation is *derived* from the specification (pairwise
//!    forward commutativity over an exhaustive bounded state universe,
//!    generalized into argument-shape buckets) and shipped to the engines
//!    as a generated [`atomicity_core::ConflictTable`], replacing the
//!    hand-written tables. The pass re-proves its own output
//!    ([`verify_table`]), certifies where each hand table is minimal or
//!    provably over-conservative ([`gap_against`]), and reports the
//!    right-mover/recoverability asymmetries of Malta & Martinez.
//!
//! 5. [`nondet`] — the **nondeterminism lint**, generalizing the
//!    simulator's wall-clock scan: a configurable source scan for
//!    nondeterminism escape hatches (wall clocks in deterministic code,
//!    unseeded RNG anywhere) with a per-rule allowlist.
//!
//! 6. [`footprint`] — the **dependency-footprint extractor**: a static
//!    read/write-set analysis of the transaction programs in the bench
//!    workloads, the seed format for dependency-logged parallel recovery.
//!
//! The `experiments lint` subcommand in `atomicity-bench` runs passes 1,
//! 3 and 5 as a CI gate (any unsound table entry, lock-order cycle, or
//! nondeterminism finding makes it exit non-zero); `experiments lint
//! --synth` additionally runs pass 4 end-to-end and writes the gap-report
//! JSON artifact.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod certify;
pub mod footprint;
pub mod hook;
pub mod lockorder;
pub mod nondet;
pub mod synth;

pub use audit::{audit_table, standard_audits, AuditConfig, Counterexample, PairClass, TableAudit};
pub use certify::{
    certify, certify_with_relation, Certificate, Method, Property, Verdict, Violation,
};
pub use footprint::{extract_footprints, FnFootprint, FootprintReport, OpClass};
pub use hook::CertifierHook;
pub use lockorder::{audit_lock_order, LockOrderReport, SourceFile};
pub use nondet::{scan_nondeterminism, NondetConfig, NondetFinding, NondetRule};
pub use synth::{
    forward_commute_in_state, gap_against, right_mover_in_state, standard_syntheses,
    synthesize_table, verify_table, Asymmetry, ForwardCounterexample, GapEntry, HandTableGap,
    InstanceVerdict, SoundnessViolation, SynthConfig, SynthSuite, TableSynthesis,
};
