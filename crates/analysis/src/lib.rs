//! Static analysis for the atomicity workspace (`atomicity-lint`).
//!
//! The paper's central claim is that commutativity-based locking is
//! *sub-optimal* yet must remain *sound* (§5, §6). This crate turns both
//! halves of that claim into machine-checked artifacts that are cheap
//! enough to run on every commit:
//!
//! 1. [`audit`] — the **conflict-table audit**. Each hand-written lock
//!    table is diffed against the commutativity relation derived by
//!    exhaustive bounded-state enumeration over the corresponding
//!    sequential specification. A table entry that *permits* a
//!    non-commuting pair is **unsound** (hard error, with a concrete
//!    state/result counterexample certificate); an entry that *forbids* a
//!    pair which commutes in every reachable state is **over-conservative**
//!    (warning — the paper's sub-optimality examples, bank
//!    `withdraw/withdraw` and semiqueue interleaved `enq`, land here).
//!
//! 2. [`certify()`] — **linear-time history certification**. The exhaustive
//!    dynamic-atomicity checker enumerates every total order consistent
//!    with `precedes(h)` and is exponential in the number of activities.
//!    The certifier exploits the *watermark* structure of `precedes`
//!    (`⟨a,b⟩ ∈ precedes(h)` iff `a`'s first commit comes before `b`'s
//!    last response) to certify well-formed histories in `O(n)` per
//!    object, falling back to bounded enumeration only where the order is
//!    genuinely partial.
//!
//! 3. [`lockorder`] — the **lock-order audit**. A static scan of the
//!    engine sources recovers the lock-acquisition graph (which locks are
//!    taken while which others are held, including through calls) and
//!    flags cycles — the implementation-level deadlocks the wait-graph
//!    machinery of `core::deadlock` cannot see because they live *under*
//!    it, in the engines' own mutexes.
//!
//! The `experiments lint` subcommand in `atomicity-bench` runs passes 1
//! and 3 as a CI gate: any unsound table entry or lock-order cycle makes
//! it exit non-zero.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod certify;
pub mod hook;
pub mod lockorder;

pub use audit::{audit_table, standard_audits, AuditConfig, Counterexample, PairClass, TableAudit};
pub use certify::{certify, Certificate, Method, Property, Verdict};
pub use hook::CertifierHook;
pub use lockorder::{audit_lock_order, LockOrderReport, SourceFile};
