//! Pass 5: the nondeterminism lint — a configurable source scan for
//! nondeterminism escape hatches.
//!
//! Generalizes the simulator's original `no_wall_clock.rs` test: the
//! deterministic simulation contract ("bit-for-bit replay by seed") only
//! holds if no code path reads a wall clock or an OS entropy source, and
//! the reproducibility of every benchmark table only holds if no workload
//! draws from an unseeded RNG. Rather than one hard-coded test per crate,
//! this pass scans any set of sources against a configurable rule set with
//! a per-file allowlist, and is run by `experiments lint` over the whole
//! workspace on every CI run.
//!
//! Patterns are assembled from fragments at runtime so the lint's own
//! source (and this documentation) never matches itself.

use crate::lockorder::SourceFile;
use std::path::Path;

/// One forbidden-pattern rule.
#[derive(Debug, Clone)]
pub struct NondetRule {
    /// Substring that must not appear in a scanned line.
    pub pattern: String,
    /// Why the pattern is forbidden (shown in findings).
    pub reason: String,
}

impl NondetRule {
    /// Creates a rule from pattern fragments (joined) and a reason.
    pub fn new(fragments: &[&str], reason: &str) -> Self {
        NondetRule {
            pattern: fragments.concat(),
            reason: reason.to_string(),
        }
    }
}

/// A rule set plus an allowlist of file-label substrings to skip.
#[derive(Debug, Clone, Default)]
pub struct NondetConfig {
    /// The forbidden patterns.
    pub rules: Vec<NondetRule>,
    /// Findings in files whose label contains any of these substrings are
    /// suppressed.
    pub allow: Vec<String>,
}

impl NondetConfig {
    /// The rule set for **deterministic-simulation** code (`crates/sim`):
    /// no wall clocks, no OS entropy. Any hit breaks the bit-for-bit
    /// replay-by-seed contract.
    pub fn deterministic_sim() -> Self {
        NondetConfig {
            rules: vec![
                NondetRule::new(
                    &["Instant", "::", "now"],
                    "wall-clock read in deterministic code",
                ),
                NondetRule::new(&["System", "Time"], "wall-clock read in deterministic code"),
                NondetRule::new(
                    &["std::time::", "Instant"],
                    "wall-clock type in deterministic code",
                ),
                NondetRule::new(
                    &["UNIX_", "EPOCH"],
                    "wall-clock epoch in deterministic code",
                ),
                NondetRule::new(&["thread_", "rng"], "unseeded RNG in deterministic code"),
                NondetRule::new(
                    &["from_", "entropy"],
                    "OS entropy source in deterministic code",
                ),
                NondetRule::new(&["rand::", "random"], "unseeded RNG in deterministic code"),
            ],
            allow: Vec::new(),
        }
    }

    /// The workspace-wide rule set: unseeded RNG only (wall clocks are
    /// legitimate outside the simulator — latency histograms, benches).
    /// Every randomized workload must derive from an explicit seed, or no
    /// benchmark table is reproducible.
    pub fn workspace() -> Self {
        NondetConfig {
            rules: vec![
                NondetRule::new(&["thread_", "rng"], "unseeded RNG breaks reproduce-by-seed"),
                NondetRule::new(&["from_", "entropy"], "OS entropy breaks reproduce-by-seed"),
                NondetRule::new(
                    &["rand::", "random"],
                    "unseeded RNG breaks reproduce-by-seed",
                ),
            ],
            allow: Vec::new(),
        }
    }

    /// Adds an allowlist entry (file-label substring).
    pub fn allowing(mut self, label_substring: &str) -> Self {
        self.allow.push(label_substring.to_string());
        self
    }
}

/// One forbidden-pattern hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NondetFinding {
    /// Label of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The pattern that matched.
    pub pattern: String,
    /// The rule's reason.
    pub reason: String,
}

impl std::fmt::Display for NondetFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: forbidden pattern `{}` ({})",
            self.file, self.line, self.pattern, self.reason
        )
    }
}

/// Scans `files` against `config`, returning every non-allowlisted hit.
pub fn scan_nondeterminism(files: &[SourceFile], config: &NondetConfig) -> Vec<NondetFinding> {
    let mut findings = Vec::new();
    for file in files {
        if config.allow.iter().any(|a| file.label.contains(a.as_str())) {
            continue;
        }
        for (i, line) in file.text.lines().enumerate() {
            for rule in &config.rules {
                if line.contains(rule.pattern.as_str()) {
                    findings.push(NondetFinding {
                        file: file.label.clone(),
                        line: i + 1,
                        pattern: rule.pattern.clone(),
                        reason: rule.reason.clone(),
                    });
                }
            }
        }
    }
    findings
}

/// Recursively reads every `*.rs` file under `root`, labelling each with
/// `label_prefix` plus its path relative to `root` — the labels the
/// allowlist matches against.
pub fn read_sources_recursive(root: &Path, label_prefix: &str) -> std::io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<_> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .collect();
        entries.sort();
        for path in entries {
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|x| x == "rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .display()
                    .to_string();
                out.push(SourceFile {
                    label: format!("{label_prefix}{rel}"),
                    text: std::fs::read_to_string(&path)?,
                });
            }
        }
    }
    out.sort_by(|a, b| a.label.cmp(&b.label));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(label: &str, text: &str) -> SourceFile {
        SourceFile {
            label: label.to_string(),
            text: text.to_string(),
        }
    }

    #[test]
    fn clean_source_passes() {
        let files = [file("sim/a.rs", "let t = self.clock.now_logical();\n")];
        assert!(scan_nondeterminism(&files, &NondetConfig::deterministic_sim()).is_empty());
    }

    #[test]
    fn wall_clock_flagged_in_sim_rules() {
        let text = format!("let t = {}{}();\n", "Instant::", "now");
        let files = [file("sim/bad.rs", &text)];
        let findings = scan_nondeterminism(&files, &NondetConfig::deterministic_sim());
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 1);
        assert!(findings[0].to_string().contains("sim/bad.rs:1"));
    }

    #[test]
    fn unseeded_rng_flagged_by_workspace_rules() {
        let text = format!("let mut r = rand::{}();\n", "random::<u64>");
        let files = [file("bench/w.rs", &text)];
        let findings = scan_nondeterminism(&files, &NondetConfig::workspace());
        assert_eq!(findings.len(), 1);
        // Wall clocks are fine outside the simulator.
        let timed = format!("let t = {}{}();\n", "Instant::", "now");
        assert!(
            scan_nondeterminism(&[file("core/t.rs", &timed)], &NondetConfig::workspace())
                .is_empty()
        );
    }

    #[test]
    fn allowlist_suppresses_by_label() {
        let text = format!("let t = {}{}();\n", "Instant::", "now");
        let files = [file("sim/timing_shim.rs", &text)];
        let cfg = NondetConfig::deterministic_sim().allowing("timing_shim");
        assert!(scan_nondeterminism(&files, &cfg).is_empty());
    }
}
