//! Pass 6: the dependency-footprint extractor — static read/write-set
//! analysis of transaction programs.
//!
//! Dependency-logged recovery (Yao et al., the ROADMAP's parallel-recovery
//! item) replays a crashed log in parallel by consulting each transaction's
//! *dependency footprint*: which objects it read and which it wrote. This
//! pass computes the static over-approximation of those footprints for the
//! workload programs in `atomicity-bench`: every `op("name", …)`
//! invocation site is attributed to its enclosing function and classified
//! read/write through the sequential specifications' own
//! [`atomicity_spec::SequentialSpec::is_read_only`] — the same source of
//! truth the synthesis pass derives conflict tables from.
//!
//! The JSON rendering of [`FootprintReport`] is the seed format for the
//! per-transaction dependency records the future recovery subsystem will
//! log at runtime.

use crate::lockorder::{fn_definition_name, SourceFile};
use atomicity_spec::specs::{
    BankAccountSpec, BoundedBufferSpec, CounterSpec, EscrowCounterSpec, FifoQueueSpec, IntSetSpec,
    KvMapSpec, RegisterSpec, SemiqueueSpec,
};
use atomicity_spec::{op, SequentialSpec};
use serde::Serialize;
use std::collections::BTreeMap;

/// Whether an operation reads or mutates its object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum OpClass {
    /// Read-only per the owning specification.
    Read,
    /// Mutating per the owning specification.
    Write,
    /// Not in any shipped specification's vocabulary.
    Unknown,
}

/// Classifies an operation name through the shipped specifications.
///
/// Every specification's `is_read_only` branches on the name alone, so a
/// nullary probe suffices. Names in no specification's vocabulary are
/// [`OpClass::Unknown`] — the extractor surfaces them rather than guessing.
pub fn classify_op(name: &str) -> OpClass {
    fn probe<S: SequentialSpec>(spec: &S, vocab: &[&str], name: &str) -> Option<OpClass> {
        if !vocab.contains(&name) {
            return None;
        }
        let o = op(name, [] as [i64; 0]);
        Some(if spec.is_read_only(&o) {
            OpClass::Read
        } else {
            OpClass::Write
        })
    }
    let checks: [Option<OpClass>; 9] = [
        probe(
            &BankAccountSpec::new(),
            &["deposit", "withdraw", "balance"],
            name,
        ),
        probe(
            &FifoQueueSpec::new(),
            &["enqueue", "dequeue", "front", "len"],
            name,
        ),
        probe(
            &IntSetSpec::new(),
            &["insert", "delete", "member", "size"],
            name,
        ),
        probe(&SemiqueueSpec::new(), &["enq", "deq", "count"], name),
        probe(
            &KvMapSpec::new(),
            &["put", "get", "remove", "add", "adjust", "sum", "size"],
            name,
        ),
        probe(
            &EscrowCounterSpec::new(),
            &["credit", "debit", "available"],
            name,
        ),
        probe(&CounterSpec::new(), &["increment"], name),
        probe(&RegisterSpec::new(), &["read", "write"], name),
        probe(
            &BoundedBufferSpec::with_capacity(2),
            &["put", "take", "count"],
            name,
        ),
    ];
    checks
        .into_iter()
        .flatten()
        .next()
        .unwrap_or(OpClass::Unknown)
}

/// The static footprint of one function: the operations it invokes,
/// partitioned by [`OpClass`].
#[derive(Debug, Clone, Serialize)]
pub struct FnFootprint {
    /// Label of the source file.
    pub file: String,
    /// Enclosing function name.
    pub function: String,
    /// Read-only operation names invoked (sorted, deduplicated).
    pub reads: Vec<String>,
    /// Mutating operation names invoked.
    pub writes: Vec<String>,
    /// Names outside every specification's vocabulary.
    pub unknown: Vec<String>,
}

/// The dependency footprints of every scanned transaction program.
#[derive(Debug, Clone, Serialize)]
pub struct FootprintReport {
    /// One entry per function that invokes at least one operation.
    pub functions: Vec<FnFootprint>,
}

impl FootprintReport {
    /// Number of functions with a non-empty write set.
    pub fn writers(&self) -> usize {
        self.functions
            .iter()
            .filter(|f| !f.writes.is_empty())
            .count()
    }

    /// Number of functions whose footprint is read-only — the transactions
    /// dependency-logged recovery can skip entirely.
    pub fn read_only(&self) -> usize {
        self.functions
            .iter()
            .filter(|f| f.writes.is_empty() && f.unknown.is_empty())
            .count()
    }
}

/// Extracts per-function read/write sets from `files` by scanning for
/// `op("name", …)` invocation sites.
pub fn extract_footprints(files: &[SourceFile]) -> FootprintReport {
    // (file, function) -> (reads, writes, unknown)
    type Sets = (Vec<String>, Vec<String>, Vec<String>);
    let mut map: BTreeMap<(String, String), Sets> = BTreeMap::new();
    for file in files {
        let mut current = String::from("<toplevel>");
        for line in file.text.lines() {
            if let Some(name) = fn_definition_name(line) {
                current = name;
            }
            for name in op_names_in(line) {
                let sets = map
                    .entry((file.label.clone(), current.clone()))
                    .or_default();
                let bucket = match classify_op(&name) {
                    OpClass::Read => &mut sets.0,
                    OpClass::Write => &mut sets.1,
                    OpClass::Unknown => &mut sets.2,
                };
                if !bucket.contains(&name) {
                    bucket.push(name);
                }
            }
        }
    }
    let functions = map
        .into_iter()
        .map(|((file, function), (mut reads, mut writes, mut unknown))| {
            reads.sort();
            writes.sort();
            unknown.sort();
            FnFootprint {
                file,
                function,
                reads,
                writes,
                unknown,
            }
        })
        .collect();
    FootprintReport { functions }
}

/// Every `op("…"` operation name on a line.
fn op_names_in(line: &str) -> Vec<String> {
    let mut names = Vec::new();
    let mut search = 0;
    while let Some(pos) = line[search..].find("op(\"") {
        let start = search + pos + 4;
        if let Some(end) = line[start..].find('"') {
            let name = &line[start..start + end];
            if !name.is_empty() && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                names.push(name.to_string());
            }
            search = start + end + 1;
        } else {
            break;
        }
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_follows_the_specs() {
        assert_eq!(classify_op("balance"), OpClass::Read);
        assert_eq!(classify_op("withdraw"), OpClass::Write);
        assert_eq!(classify_op("get"), OpClass::Read);
        assert_eq!(classify_op("adjust"), OpClass::Write);
        assert_eq!(classify_op("available"), OpClass::Read);
        assert_eq!(classify_op("debit"), OpClass::Write);
        assert_eq!(classify_op("frobnicate"), OpClass::Unknown);
    }

    #[test]
    fn footprints_attribute_ops_to_functions() {
        let src = SourceFile {
            label: "bank.rs".to_string(),
            text: r#"
fn transfer(a: &H, b: &H) {
    a.invoke(op("withdraw", [5]));
    b.invoke(op("deposit", [5]));
}
fn audit(a: &H) {
    a.invoke(op("balance", [] as [i64; 0]));
}
"#
            .to_string(),
        };
        let report = extract_footprints(&[src]);
        assert_eq!(report.functions.len(), 2);
        let transfer = report
            .functions
            .iter()
            .find(|f| f.function == "transfer")
            .unwrap();
        assert_eq!(transfer.writes, ["deposit", "withdraw"]);
        assert!(transfer.reads.is_empty());
        let audit = report
            .functions
            .iter()
            .find(|f| f.function == "audit")
            .unwrap();
        assert_eq!(audit.reads, ["balance"]);
        assert_eq!(report.writers(), 1);
        assert_eq!(report.read_only(), 1);
    }

    #[test]
    fn duplicate_sites_dedup_and_json_renders() {
        let src = SourceFile {
            label: "w.rs".to_string(),
            text: "fn w() { op(\"deposit\", [1]); op(\"deposit\", [2]); }".to_string(),
        };
        let report = extract_footprints(&[src]);
        assert_eq!(report.functions[0].writes, ["deposit"]);
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"function\":\"w\""));
    }
}
