//! Linear-time certification of atomicity properties (pass 2).
//!
//! The exhaustive checker in [`atomicity_spec::atomicity`] decides dynamic
//! atomicity by enumerating *every* total order consistent with
//! `precedes(h)` — exponential in the number of committed activities. This
//! module certifies the same property in `O(n)` per object for the
//! histories real engines produce, by exploiting the structure of the
//! `precedes` relation rather than materializing it.
//!
//! # The watermark argument
//!
//! `⟨a,b⟩ ∈ precedes(h)` iff some response of `b` comes after a commit of
//! `a` — equivalently, `firstcommit(a) < lastresponse(b)` in event
//! positions. For histories under the paper's basic discipline every
//! committed activity's responses all precede its first commit, which
//! gives the relation a *watermark* shape:
//!
//! - **transitive**: `firstcommit(a) < lastresp(b) < firstcommit(b) <
//!   lastresp(c)`;
//! - **acyclic**: `⟨a,b⟩` implies `firstcommit(a) < firstcommit(b)`;
//! - **prefix-structured**: each activity's predecessor set is a prefix of
//!   the commit order, so the relation restricted to any subset of
//!   activities is *total* iff each adjacent pair (in commit order) is
//!   related.
//!
//! Restricting to one object's activities: when the induced order is total
//! there is exactly one consistent serial order, checked by a single
//! replay; when it is partial (activities whose commits genuinely overlap
//! their responses' concurrency window) the certifier enumerates the
//! induced suborder's linear extensions — sound because projections of the
//! global order's extensions onto an object's activities are exactly the
//! extensions of the induced suborder. Past the enumeration bound,
//! [`certify_with_relation`] can still decide genuinely partial orders by
//! the *table reduction*: when every incomparable pair of activities
//! holds pairwise-commuting operations per a [`CommutesRel`] (e.g. the
//! synthesized conflict tables), all linear extensions replay to the
//! same behavior and checking the commit-order extension decides them
//! all — the certified direction then trusts the table, which the
//! [`Method::TableReduction`] tag records. Only when a history falls
//! outside the basic discipline entirely (arbitrary event soup, as the
//! proptest generators produce) does the certifier fall back to the
//! exhaustive checker, and only for small activity counts; otherwise it
//! answers [`Verdict::Unknown`] rather than guess.
//!
//! Static and hybrid atomicity need no such machinery: serializability in
//! *timestamp order* is already a single-order check, and the certifier
//! simply packages it with the same [`Certificate`] interface.

use atomicity_core::CommutesRel;
use atomicity_spec::atomicity::{is_dynamic_atomic, timestamp_order};
use atomicity_spec::serial::is_serializable_in_order;
use atomicity_spec::{ActivityId, EventKind, History, ObjectId, OpResult, Operation, SystemSpec};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Maximum activities per object for which a genuinely partial induced
/// order is resolved by enumerating its linear extensions (at most `6! =
/// 720` replays).
const MAX_LOCAL_ENUM: usize = 6;

/// Maximum committed activities for which a history outside the basic
/// discipline is handed to the exhaustive checker instead of answering
/// [`Verdict::Unknown`].
const MAX_FALLBACK_ACTIVITIES: usize = 7;

/// The atomicity property being certified.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum Property {
    /// Dynamic atomicity (§4.1): serializable in every order consistent
    /// with `precedes(h)`.
    Dynamic,
    /// Static atomicity (§4.2): serializable in initiation-timestamp order.
    Static,
    /// Hybrid atomicity (§4.3): serializable in timestamp order with
    /// commit-assigned update timestamps.
    Hybrid,
}

impl Property {
    /// Human-readable name.
    pub fn label(self) -> &'static str {
        match self {
            Property::Dynamic => "dynamic",
            Property::Static => "static",
            Property::Hybrid => "hybrid",
        }
    }
}

impl fmt::Display for Property {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// How the verdict was reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum Method {
    /// The watermark fast path (with bounded local enumeration where the
    /// induced per-object order is partial).
    Watermark,
    /// The single timestamp-order check (static/hybrid).
    TimestampOrder,
    /// The commutativity reduction: a genuinely partial induced order
    /// past the enumeration bound, decided by checking ONE linear
    /// extension because every incomparable pair of activities holds
    /// pairwise-commuting operations per the supplied [`CommutesRel`].
    /// Unlike the other methods this one *trusts the table* for the
    /// certified direction (refutations remain table-independent).
    TableReduction,
    /// Full fallback to the exhaustive checker (history outside the basic
    /// discipline).
    #[serde(rename = "exhaustive-fallback")]
    Exhaustive,
    /// The streaming vector-clock monitor (`atomicity-certify`): the
    /// verdict was reached incrementally over the live stamp stream with
    /// watermark retirement, instead of post hoc over a merged history.
    /// Decisions mirror the post-hoc methods above; this tag records
    /// *how* the history was consumed.
    #[serde(rename = "online-monitor")]
    Online,
}

impl Method {
    /// Human-readable name — also the serde wire name, so BENCH JSON and
    /// failure messages agree.
    pub fn label(self) -> &'static str {
        match self {
            Method::Watermark => "watermark",
            Method::TimestampOrder => "timestamp-order",
            Method::TableReduction => "table-reduction",
            Method::Exhaustive => "exhaustive-fallback",
            Method::Online => "online-monitor",
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The certifier's answer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum Verdict {
    /// The history satisfies the property.
    Certified,
    /// The history violates the property; the string is the witness
    /// (object and serial order rejected by its specification).
    Refuted(String),
    /// The certifier declines to answer (history outside the basic
    /// discipline with too many activities for the exhaustive fallback).
    Unknown(String),
}

impl Verdict {
    /// Whether two verdicts agree in kind (certified / refuted /
    /// unknown), ignoring witness message text. The online monitor and
    /// the post-hoc certifier produce identical kinds but word their
    /// witnesses differently (stream positions vs. merged indices).
    pub fn agrees_with(&self, other: &Verdict) -> bool {
        matches!(
            (self, other),
            (Verdict::Certified, Verdict::Certified)
                | (Verdict::Refuted(_), Verdict::Refuted(_))
                | (Verdict::Unknown(_), Verdict::Unknown(_))
        )
    }

    /// Short kind name: `"certified"`, `"refuted"`, or `"unknown"`.
    pub fn kind(&self) -> &'static str {
        match self {
            Verdict::Certified => "certified",
            Verdict::Refuted(_) => "refuted",
            Verdict::Unknown(_) => "unknown",
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Certified => f.write_str("certified"),
            Verdict::Refuted(why) => write!(f, "refuted: {why}"),
            Verdict::Unknown(why) => write!(f, "undecided: {why}"),
        }
    }
}

/// One live violation flagged by a streaming monitor mid-run: the point
/// in the stamp stream at which atomicity became unsatisfiable.
///
/// Where a [`Certificate`] is the end-of-run summary, a `Violation` is
/// the incremental artifact — `OnlineCertifier::observe` in
/// `atomicity-certify` returns one the moment a committed serial prefix
/// is rejected by an object's specification. Shared here so bench
/// reports, the simulator's invariant hooks, and the monitor itself all
/// speak the same type.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Violation {
    /// Stamp (stream position) of the event that triggered the flag.
    pub stamp: u64,
    /// The object whose serial order became unacceptable, if one.
    pub object: Option<ObjectId>,
    /// The activity whose event triggered the flag, if one.
    pub activity: Option<ActivityId>,
    /// What the monitor saw.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[stamp {}] ", self.stamp)?;
        if let Some(x) = self.object {
            write!(f, "object {x:?}: ")?;
        }
        f.write_str(&self.detail)
    }
}

/// The outcome of certifying one history against one property.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Certificate {
    /// The property that was checked.
    pub property: Property,
    /// How the verdict was reached.
    pub method: Method,
    /// The verdict itself.
    pub verdict: Verdict,
    /// Number of committed activities in the history.
    pub committed: usize,
    /// Number of objects touched by committed activities.
    pub objects: usize,
}

impl Certificate {
    /// Whether the history was certified to satisfy the property.
    pub fn is_certified(&self) -> bool {
        self.verdict == Verdict::Certified
    }

    /// Whether the certifier reached a definite answer (certified or
    /// refuted, as opposed to unknown).
    pub fn is_decisive(&self) -> bool {
        !matches!(self.verdict, Verdict::Unknown(_))
    }
}

impl fmt::Display for Certificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.verdict {
            Verdict::Certified => write!(
                f,
                "{} atomicity certified via {} ({} committed activities, {} objects)",
                self.property.label(),
                self.method.label(),
                self.committed,
                self.objects
            ),
            Verdict::Refuted(why) => {
                write!(f, "{} atomicity refuted: {}", self.property.label(), why)
            }
            Verdict::Unknown(why) => {
                write!(f, "{} atomicity undecided: {}", self.property.label(), why)
            }
        }
    }
}

/// Certifies `h` against `property`. Dispatches to the watermark
/// certifier for dynamic atomicity and to the timestamp-order check for
/// static/hybrid.
pub fn certify(property: Property, h: &History, spec: &SystemSpec) -> Certificate {
    match property {
        Property::Dynamic => certify_dynamic(h, spec),
        Property::Static | Property::Hybrid => certify_timestamped(property, h, spec),
    }
}

/// [`certify`] with a commutativity relation available for the dynamic
/// table reduction: when the per-object induced order is genuinely
/// partial with more activities than the enumeration bound — precisely
/// the histories contended commuting workloads produce — but every
/// incomparable pair of activities holds pairwise-commuting operations
/// per `rel`, all linear extensions yield equivalent serial behaviors
/// and checking the commit-order extension decides them all. Static and
/// hybrid certification are unchanged (already single-order checks).
pub fn certify_with_relation(
    property: Property,
    h: &History,
    spec: &SystemSpec,
    rel: &dyn CommutesRel,
) -> Certificate {
    match property {
        Property::Dynamic => certify_dynamic_impl(h, spec, Some(rel)),
        Property::Static | Property::Hybrid => certify_timestamped(property, h, spec),
    }
}

/// Certifies dynamic atomicity via the watermark fast path.
///
/// Agrees exactly with [`is_dynamic_atomic`] whenever the verdict is
/// decisive (proptested in `tests/checker_vc.rs`); answers
/// [`Verdict::Unknown`] only for histories outside the basic discipline
/// with more than `MAX_FALLBACK_ACTIVITIES` committed activities, or for
/// partial induced orders past the enumeration bound (which
/// [`certify_with_relation`] can often still decide).
pub fn certify_dynamic(h: &History, spec: &SystemSpec) -> Certificate {
    certify_dynamic_impl(h, spec, None)
}

fn certify_dynamic_impl(
    h: &History,
    spec: &SystemSpec,
    rel: Option<&dyn CommutesRel>,
) -> Certificate {
    let committed = h.committed_activities();

    // One pass: commit/response watermarks and per-object committed ops
    // (mirroring `History::ops_by_object`'s pending-invocation rules).
    let mut first_commit: BTreeMap<ActivityId, usize> = BTreeMap::new();
    let mut last_resp: BTreeMap<ActivityId, usize> = BTreeMap::new();
    let mut pending: BTreeMap<(ActivityId, ObjectId), Operation> = BTreeMap::new();
    let mut ops: BTreeMap<ObjectId, BTreeMap<ActivityId, Vec<OpResult>>> = BTreeMap::new();
    let mut objects: BTreeSet<ObjectId> = BTreeSet::new();
    for (pos, e) in h.events().iter().enumerate() {
        if committed.contains(&e.activity) {
            objects.insert(e.object);
        }
        match &e.kind {
            EventKind::Invoke(op) => {
                pending.insert((e.activity, e.object), op.clone());
            }
            EventKind::Respond(v) => {
                last_resp.insert(e.activity, pos);
                if let Some(op) = pending.remove(&(e.activity, e.object)) {
                    if committed.contains(&e.activity) {
                        ops.entry(e.object)
                            .or_default()
                            .entry(e.activity)
                            .or_default()
                            .push((op, v.clone()));
                    }
                }
            }
            EventKind::Commit | EventKind::CommitTs(_) => {
                first_commit.entry(e.activity).or_insert(pos);
            }
            _ => {}
        }
    }

    // Basic-discipline check: a committed activity whose responses spill
    // past its first commit breaks the watermark structure.
    let anomalous = committed.iter().any(|a| {
        matches!(
            (first_commit.get(a), last_resp.get(a)),
            (Some(c), Some(r)) if r > c
        )
    });
    if anomalous {
        return exhaustive_fallback(h, spec, committed.len(), objects.len());
    }

    let done = |method: Method, verdict: Verdict| Certificate {
        property: Property::Dynamic,
        method,
        verdict,
        committed: committed.len(),
        objects: objects.len(),
    };
    // Whether any object's verdict leaned on the commutativity relation.
    let mut used_table = false;
    // An undecidable object does not end the scan: a later object may
    // hold a definite refutation, and `Refuted` dominates `Unknown` (the
    // history is non-atomic regardless of what the undecided object would
    // have said). The first Unknown is reported only when no object
    // refutes.
    let mut pending_unknown: Option<(Method, Verdict)> = None;

    // `⟨a,b⟩ ∈ precedes(h)` restricted to committed activities.
    let prec = |a: ActivityId, b: ActivityId| match last_resp.get(&b) {
        Some(r) => first_commit[&a] < *r,
        None => false,
    };

    let no_ops = BTreeMap::new();
    for x in &objects {
        let by_act = ops.get(x).unwrap_or(&no_ops);
        let obj_spec = match spec.get(*x) {
            Some(s) => s,
            None => {
                if by_act.values().any(|v| !v.is_empty()) {
                    return done(
                        Method::Watermark,
                        Verdict::Refuted(format!(
                            "object {x:?} has committed operations but no specification"
                        )),
                    );
                }
                continue;
            }
        };
        let mut acts: Vec<ActivityId> = by_act.keys().copied().collect();
        acts.sort_by_key(|a| first_commit[a]);
        let serial = |order: &[ActivityId]| -> Vec<OpResult> {
            order
                .iter()
                .flat_map(|a| by_act[a].iter().cloned())
                .collect()
        };
        if acts.windows(2).all(|w| prec(w[0], w[1])) {
            // Total induced order: exactly one consistent serial order.
            if !obj_spec.accepts(&serial(&acts)) {
                return done(
                    Method::Watermark,
                    Verdict::Refuted(format!(
                        "object {x:?}: the only precedes-consistent order {acts:?} \
                         is rejected by the specification"
                    )),
                );
            }
        } else if acts.len() <= MAX_LOCAL_ENUM {
            for order in local_extensions(&acts, &prec) {
                if !obj_spec.accepts(&serial(&order)) {
                    return done(
                        Method::Watermark,
                        Verdict::Refuted(format!(
                            "object {x:?}: precedes-consistent order {order:?} \
                             is rejected by the specification"
                        )),
                    );
                }
            }
        } else if let Some(rel) = rel {
            // Table reduction. Two linear extensions of the induced order
            // differ by adjacent transpositions of incomparable
            // activities; when every such pair's operations pairwise
            // commute per `rel`, every extension replays to the same
            // responses and final state, so the commit-order extension
            // (acts is sorted by first commit, and `⟨a,b⟩ ∈ precedes`
            // implies `firstcommit(a) < firstcommit(b)`) decides them all.
            if let Some((a, b)) = non_commuting_concurrent_pair(&acts, by_act, &prec, rel) {
                pending_unknown.get_or_insert((
                    Method::TableReduction,
                    Verdict::Unknown(format!(
                        "object {x:?}: {} committed activities with a genuinely \
                         partial precedes order exceed the enumeration bound \
                         {MAX_LOCAL_ENUM}, and concurrent activities {a:?} and \
                         {b:?} hold non-commuting operations",
                        acts.len()
                    )),
                ));
                continue;
            }
            used_table = true;
            if !obj_spec.accepts(&serial(&acts)) {
                // Table-independent refutation: commit order is itself a
                // precedes-consistent order.
                return done(
                    Method::TableReduction,
                    Verdict::Refuted(format!(
                        "object {x:?}: the commit-order extension {acts:?} \
                         is rejected by the specification"
                    )),
                );
            }
        } else {
            pending_unknown.get_or_insert((
                Method::Watermark,
                Verdict::Unknown(format!(
                    "object {x:?}: {} committed activities with a genuinely partial \
                     precedes order exceed the enumeration bound {MAX_LOCAL_ENUM}",
                    acts.len()
                )),
            ));
            continue;
        }
    }
    if let Some((method, verdict)) = pending_unknown {
        return done(method, verdict);
    }
    let method = if used_table {
        Method::TableReduction
    } else {
        Method::Watermark
    };
    done(method, Verdict::Certified)
}

/// Searches the incomparable (genuinely concurrent) activity pairs of
/// `acts` for one holding operations the relation does not declare
/// commutative. `acts` is sorted by first commit, so for `i < j` only
/// `⟨acts[i], acts[j]⟩` can be in `precedes`; incomparability reduces to
/// the one test. Commutes lookups are memoized over the (tiny) distinct
/// operation universe.
fn non_commuting_concurrent_pair<F>(
    acts: &[ActivityId],
    by_act: &BTreeMap<ActivityId, Vec<OpResult>>,
    prec: &F,
    rel: &dyn CommutesRel,
) -> Option<(ActivityId, ActivityId)>
where
    F: Fn(ActivityId, ActivityId) -> bool,
{
    let mut universe: Vec<Operation> = Vec::new();
    let mut op_ids: BTreeMap<ActivityId, Vec<usize>> = BTreeMap::new();
    for &a in acts {
        let ids = op_ids.entry(a).or_default();
        for (operation, _) in &by_act[&a] {
            let id = universe
                .iter()
                .position(|u| u == operation)
                .unwrap_or_else(|| {
                    universe.push(operation.clone());
                    universe.len() - 1
                });
            if !ids.contains(&id) {
                ids.push(id);
            }
        }
    }
    let n = universe.len();
    let commutes: Vec<bool> = (0..n * n)
        .map(|k| rel.commutes(&universe[k / n], &universe[k % n]))
        .collect();
    for i in 0..acts.len() {
        for j in i + 1..acts.len() {
            if prec(acts[i], acts[j]) {
                continue;
            }
            let conflict = op_ids[&acts[i]]
                .iter()
                .any(|&p| op_ids[&acts[j]].iter().any(|&q| !commutes[p * n + q]));
            if conflict {
                return Some((acts[i], acts[j]));
            }
        }
    }
    None
}

/// Static/hybrid certification: a single serializability check in
/// timestamp order, mirroring `is_static_atomic`/`is_hybrid_atomic`.
fn certify_timestamped(property: Property, h: &History, spec: &SystemSpec) -> Certificate {
    let committed = h.committed_activities().len();
    let objects = h.objects().len();
    let verdict = match timestamp_order(h) {
        None => Verdict::Refuted("a committed activity has no timestamp event".to_string()),
        Some(order) => {
            if is_serializable_in_order(&h.perm(), spec, &order) {
                Verdict::Certified
            } else {
                Verdict::Refuted(format!(
                    "perm(h) is not serializable in timestamp order {order:?}"
                ))
            }
        }
    };
    Certificate {
        property,
        method: Method::TimestampOrder,
        verdict,
        committed,
        objects,
    }
}

/// Full exhaustive fallback for histories outside the basic discipline.
fn exhaustive_fallback(
    h: &History,
    spec: &SystemSpec,
    committed: usize,
    objects: usize,
) -> Certificate {
    let verdict = if committed <= MAX_FALLBACK_ACTIVITIES {
        if is_dynamic_atomic(h, spec) {
            Verdict::Certified
        } else {
            Verdict::Refuted(
                "exhaustive check rejected the history (responses after commit)".to_string(),
            )
        }
    } else {
        Verdict::Unknown(format!(
            "history outside the basic discipline with {committed} committed \
             activities exceeds the exhaustive-fallback bound {MAX_FALLBACK_ACTIVITIES}"
        ))
    };
    Certificate {
        property: Property::Dynamic,
        method: Method::Exhaustive,
        verdict,
        committed,
        objects,
    }
}

/// All linear extensions of the order `prec` restricted to `acts`.
fn local_extensions<F>(acts: &[ActivityId], prec: &F) -> Vec<Vec<ActivityId>>
where
    F: Fn(ActivityId, ActivityId) -> bool,
{
    let mut out = Vec::new();
    let mut used = vec![false; acts.len()];
    let mut placed = Vec::with_capacity(acts.len());
    extend(acts, prec, &mut used, &mut placed, &mut out);
    out
}

fn extend<F>(
    acts: &[ActivityId],
    prec: &F,
    used: &mut [bool],
    placed: &mut Vec<ActivityId>,
    out: &mut Vec<Vec<ActivityId>>,
) where
    F: Fn(ActivityId, ActivityId) -> bool,
{
    if placed.len() == acts.len() {
        out.push(placed.clone());
        return;
    }
    for i in 0..acts.len() {
        if used[i] {
            continue;
        }
        let ready = acts
            .iter()
            .enumerate()
            .all(|(j, &d)| used[j] || j == i || !prec(d, acts[i]));
        if ready {
            used[i] = true;
            placed.push(acts[i]);
            extend(acts, prec, used, placed, out);
            placed.pop();
            used[i] = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomicity_spec::atomicity::{is_hybrid_atomic, is_static_atomic};
    use atomicity_spec::paper;
    use atomicity_spec::{op, Event, Value};

    #[test]
    fn paper_dynamic_examples_certify() {
        let spec = paper::bank_system();
        let h = paper::bank_concurrent_withdraws();
        let cert = certify(Property::Dynamic, &h, &spec);
        assert!(cert.is_certified(), "{cert}");
        assert_eq!(cert.method, Method::Watermark);
        assert!(is_dynamic_atomic(&h, &spec));

        let spec = paper::queue_system();
        let h = paper::queue_interleaved_enqueues();
        let cert = certify(Property::Dynamic, &h, &spec);
        assert!(cert.is_certified(), "{cert}");
        assert!(is_dynamic_atomic(&h, &spec));
    }

    #[test]
    fn non_atomic_history_is_refuted() {
        let spec = paper::set_system();
        let h = paper::non_atomic_member();
        let cert = certify(Property::Dynamic, &h, &spec);
        assert!(!cert.is_certified());
        assert!(cert.is_decisive());
        assert_eq!(cert.is_certified(), is_dynamic_atomic(&h, &spec));
    }

    #[test]
    fn atomic_but_not_dynamic_is_refuted() {
        let spec = paper::set_system();
        let h = paper::atomic_not_dynamic();
        let cert = certify(Property::Dynamic, &h, &spec);
        assert!(cert.is_decisive());
        assert_eq!(cert.is_certified(), is_dynamic_atomic(&h, &spec));
        assert!(!cert.is_certified());
    }

    #[test]
    fn static_and_hybrid_delegate_to_timestamp_order() {
        let spec = paper::set_system();
        for h in [paper::static_example(), paper::atomic_not_static()] {
            let c = certify(Property::Static, &h, &spec);
            assert_eq!(c.is_certified(), is_static_atomic(&h, &spec), "{c}");
            assert_eq!(c.method, Method::TimestampOrder);
        }
        let h = paper::hybrid_example();
        let c = certify(Property::Hybrid, &h, &spec);
        assert_eq!(c.is_certified(), is_hybrid_atomic(&h, &spec), "{c}");
    }

    #[test]
    fn anomalous_history_uses_exhaustive_fallback() {
        // A response *after* the activity's commit: outside the basic
        // discipline, so the watermark argument does not apply.
        let (a, x) = (paper::A, paper::X);
        let h = History::from_events(vec![
            Event::invoke(a, x, op("insert", [1])),
            Event::commit(a, x),
            Event::respond(a, x, Value::ok()),
        ]);
        let spec = paper::set_system();
        let cert = certify(Property::Dynamic, &h, &spec);
        assert_eq!(cert.method, Method::Exhaustive);
        assert_eq!(cert.is_certified(), is_dynamic_atomic(&h, &spec));
    }

    /// Twenty deposit activities whose responses all precede every
    /// commit: every pair is incomparable under `precedes`, far past the
    /// enumeration bound.
    fn contended_deposits() -> History {
        let x = paper::Y;
        let mut events = Vec::new();
        for i in 1..=20u32 {
            let a = ActivityId::new(i);
            events.push(Event::invoke(a, x, op("deposit", [5])));
            events.push(Event::respond(a, x, Value::ok()));
        }
        for i in 1..=20u32 {
            events.push(Event::commit(ActivityId::new(i), x));
        }
        History::from_events(events)
    }

    #[test]
    fn table_reduction_decides_past_the_enumeration_bound() {
        let spec = paper::bank_system();
        let h = contended_deposits();

        // Without a relation the partial order is undecidable.
        let cert = certify(Property::Dynamic, &h, &spec);
        assert!(!cert.is_decisive(), "{cert}");

        // With a relation declaring deposits commutative, one extension
        // decides all of them.
        let deposits =
            |p: &Operation, q: &Operation| p.name() == "deposit" && q.name() == "deposit";
        let cert = certify_with_relation(Property::Dynamic, &h, &spec, &deposits);
        assert!(cert.is_certified(), "{cert}");
        assert_eq!(cert.method, Method::TableReduction);
        assert_eq!(cert.committed, 20);
    }

    #[test]
    fn table_reduction_declines_on_non_commuting_concurrency() {
        let spec = paper::bank_system();
        let h = contended_deposits();
        let nothing = |_: &Operation, _: &Operation| false;
        let cert = certify_with_relation(Property::Dynamic, &h, &spec, &nothing);
        assert!(!cert.is_decisive(), "{cert}");
        assert!(
            matches!(&cert.verdict, Verdict::Unknown(why) if why.contains("non-commuting")),
            "{cert}"
        );
    }

    #[test]
    fn refutation_dominates_an_earlier_undecidable_object() {
        use atomicity_spec::specs::IntSetSpec;
        // Object Y (id 2) is undecidable (contended past the enumeration
        // bound, no relation); object 3 holds a definite spec violation.
        // The refutation must win even though the undecidable object is
        // scanned first.
        let spec = paper::bank_system().with_object(ObjectId::new(3), IntSetSpec::new());
        let mut h = contended_deposits();
        let liar = ActivityId::new(100);
        let obj = ObjectId::new(3);
        h.push(Event::invoke(liar, obj, op("member", [5])));
        h.push(Event::respond(liar, obj, Value::from(true)));
        h.push(Event::commit(liar, obj));
        let cert = certify(Property::Dynamic, &h, &spec);
        assert!(
            matches!(&cert.verdict, Verdict::Refuted(why) if why.contains("ObjectId(3)")),
            "{cert}"
        );
    }

    #[test]
    fn long_serial_history_stays_on_the_fast_path() {
        // 50 committed activities in commit order: the induced order is
        // total, so no enumeration happens regardless of activity count.
        let x = paper::X;
        let mut events = Vec::new();
        for i in 1..=50u32 {
            let a = ActivityId::new(i);
            events.push(Event::invoke(a, x, op("insert", [i64::from(i)])));
            events.push(Event::respond(a, x, Value::ok()));
            events.push(Event::commit(a, x));
        }
        let h = History::from_events(events);
        let spec = paper::set_system();
        let cert = certify(Property::Dynamic, &h, &spec);
        assert!(cert.is_certified(), "{cert}");
        assert_eq!(cert.method, Method::Watermark);
        assert_eq!(cert.committed, 50);
    }

    #[test]
    fn methods_and_verdicts_round_trip_through_serde() {
        for method in [
            Method::Watermark,
            Method::Exhaustive,
            Method::TableReduction,
            Method::TimestampOrder,
            Method::Online,
        ] {
            let json = serde_json::to_string(&method).unwrap();
            assert_eq!(serde_json::from_str::<Method>(&json).unwrap(), method);
        }
        assert_eq!(
            serde_json::to_string(&Method::Online).unwrap(),
            "\"online-monitor\""
        );
        assert_eq!(
            serde_json::to_string(&Method::Exhaustive).unwrap(),
            "\"exhaustive-fallback\""
        );
        for verdict in [
            Verdict::Certified,
            Verdict::Refuted("no serial order".into()),
            Verdict::Unknown("partial order too wide".into()),
        ] {
            let json = serde_json::to_string(&verdict).unwrap();
            let back: Verdict = serde_json::from_str(&json).unwrap();
            assert!(back.agrees_with(&verdict));
            assert_eq!(back, verdict);
        }
    }
}
