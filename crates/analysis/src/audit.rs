//! The conflict-table audit (pass 1).
//!
//! Each hand-written lock table (a `fn(&Operation, &Operation) -> bool`
//! commutativity relation) is diffed against the relation *derived* from
//! the object's sequential specification by exhaustive bounded-state
//! enumeration ([`atomicity_baselines::derive`]). For every unordered pair
//! of operations from a finite universe:
//!
//! - the table **permits** a pair that fails to commute in some reachable
//!   state → [`PairClass::Unsound`], a hard error carrying a
//!   [`Counterexample`] certificate (the state plus the result-pair sets
//!   of both execution orders);
//! - the table **forbids** a pair that commutes in some or all reachable
//!   states → [`PairClass::Conservative`], a warning. The paper's
//!   sub-optimality examples land here: bank `withdraw/withdraw` commutes
//!   whenever funds suffice (§5.1), and the semiqueue's interleaved `enq`s
//!   always commute;
//! - an asymmetric table (`table(p,q) ≠ table(q,p)`) is an error in its
//!   own right — commutativity is symmetric;
//! - agreement in either direction is recorded for the audit table the
//!   `experiments` binary prints.
//!
//! When the state enumeration is truncated by the state cap, verdicts are
//! sampling-based and the audit says so ([`TableAudit::truncated`]);
//! for the shipped universes the enumeration is exhaustive (`truncated ==
//! 0`), making `Unsound`/`Conservative` certificates definitive for the
//! explored depth.

use atomicity_baselines::derive::{commute_in_state, ordered_outcomes, sample_states};
use atomicity_baselines::{bank_commutativity, queue_commutativity, set_commutativity};
use atomicity_spec::specs::{BankAccountSpec, FifoQueueSpec, IntSetSpec, SemiqueueSpec};
use atomicity_spec::{op, Operation, SequentialSpec, Value};
use std::fmt;

/// Bounds for the state enumeration behind an audit.
#[derive(Debug, Clone, Copy)]
pub struct AuditConfig {
    /// Maximum number of operations applied from the initial state.
    pub depth: usize,
    /// Cap on explored states (the audit reports if it truncates).
    pub max_states: usize,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            depth: 4,
            max_states: 512,
        }
    }
}

/// A concrete witness that a table-permitted pair does not commute.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The reachable state in which the orders diverge (debug-rendered).
    pub state: String,
    /// Result pairs `(result-of-p, result-of-q)` achievable running `p`
    /// then `q`.
    pub pq_outcomes: Vec<(Value, Value)>,
    /// The same pairs achievable running `q` then `p`.
    pub qp_outcomes: Vec<(Value, Value)>,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.pq_outcomes == self.qp_outcomes {
            write!(
                f,
                "in state {} both orders agree on results {:?} but reach \
                 different final states",
                self.state, self.pq_outcomes
            )
        } else {
            write!(
                f,
                "in state {} order p;q yields result pairs {:?} but order \
                 q;p yields {:?}",
                self.state, self.pq_outcomes, self.qp_outcomes
            )
        }
    }
}

/// How one operation pair's table entry compares to the derived relation.
#[derive(Debug, Clone)]
pub enum PairClass {
    /// Table and derivation agree the pair commutes.
    AgreeCommute,
    /// Table and derivation agree the pair conflicts.
    AgreeConflict,
    /// **Error**: the table permits the pair but it fails to commute in
    /// some reachable state (certificate attached).
    Unsound(Counterexample),
    /// **Warning**: the table forbids the pair although it commutes in
    /// `commuting_states` of the `total_states` explored states (all of
    /// them for state-independent over-conservatism, like the semiqueue's
    /// `enq/enq`; a strict subset for data-dependent cases, like bank
    /// `withdraw/withdraw`, which commutes exactly when funds suffice).
    Conservative {
        /// States in which the pair commutes.
        commuting_states: usize,
        /// Total explored states.
        total_states: usize,
    },
    /// **Error**: `table(p,q) != table(q,p)` — commutativity is symmetric.
    Asymmetric,
    /// The pair involves an operation the specification never accepts in
    /// any explored state, so no verdict is possible (kept out of both
    /// agreement and warning counts).
    Unsupported,
}

impl PairClass {
    /// Short label for report tables.
    pub fn label(&self) -> &'static str {
        match self {
            PairClass::AgreeCommute => "agree-commute",
            PairClass::AgreeConflict => "agree-conflict",
            PairClass::Unsound(_) => "UNSOUND",
            PairClass::Conservative { .. } => "conservative",
            PairClass::Asymmetric => "ASYMMETRIC",
            PairClass::Unsupported => "unsupported",
        }
    }
}

/// One operation pair's audit outcome.
#[derive(Debug, Clone)]
pub struct PairFinding {
    /// First operation of the pair.
    pub p: Operation,
    /// Second operation of the pair.
    pub q: Operation,
    /// The classification.
    pub class: PairClass,
}

impl PairFinding {
    /// Whether this finding is a hard error (unsound or asymmetric entry).
    pub fn is_error(&self) -> bool {
        matches!(self.class, PairClass::Unsound(_) | PairClass::Asymmetric)
    }

    /// Whether this finding is an over-conservatism warning.
    pub fn is_warning(&self) -> bool {
        matches!(self.class, PairClass::Conservative { .. })
    }
}

/// The full audit of one lock table against one specification.
#[derive(Debug, Clone)]
pub struct TableAudit {
    /// Name of the audited table (e.g. `bank_commutativity`).
    pub table: String,
    /// Name of the specification the derivation ran against.
    pub spec_name: String,
    /// Number of states explored.
    pub states_explored: usize,
    /// Distinct states cut by the cap (0 = enumeration exhaustive for the
    /// configured depth, so verdicts are definitive).
    pub truncated: usize,
    /// Per-pair classifications (unordered pairs, `p <= q` in universe
    /// order).
    pub findings: Vec<PairFinding>,
}

impl TableAudit {
    /// The hard errors (unsound or asymmetric entries).
    pub fn errors(&self) -> impl Iterator<Item = &PairFinding> {
        self.findings.iter().filter(|f| f.is_error())
    }

    /// The over-conservatism warnings.
    pub fn warnings(&self) -> impl Iterator<Item = &PairFinding> {
        self.findings.iter().filter(|f| f.is_warning())
    }

    /// Whether the table is sound (no errors; warnings allowed).
    pub fn is_sound(&self) -> bool {
        self.errors().next().is_none()
    }

    /// The finding for an unordered pair of operation *names* (first match
    /// in universe order), if any.
    pub fn finding(&self, p: &str, q: &str) -> Option<&PairFinding> {
        self.findings
            .iter()
            .find(|f| (f.p.name() == p && f.q.name() == q) || (f.p.name() == q && f.q.name() == p))
    }
}

/// Audits `table` against the relation derived from `spec` by enumerating
/// states reachable with operations from `universe`.
pub fn audit_table<S, F>(
    table_name: &str,
    spec_name: &str,
    spec: &S,
    universe: &[Operation],
    table: F,
    config: &AuditConfig,
) -> TableAudit
where
    S: SequentialSpec,
    S::State: Ord,
    F: Fn(&Operation, &Operation) -> bool,
{
    let sample = sample_states(spec, universe, config.depth, config.max_states);
    // An operation the spec never accepts anywhere would "commute"
    // vacuously; flag it instead of certifying nonsense.
    let supported: Vec<bool> = universe
        .iter()
        .map(|p| sample.states.iter().any(|s| !spec.step(s, p).is_empty()))
        .collect();
    let mut findings = Vec::new();
    for i in 0..universe.len() {
        for j in i..universe.len() {
            let (p, q) = (&universe[i], &universe[j]);
            let class = if !supported[i] || !supported[j] {
                PairClass::Unsupported
            } else if table(p, q) != table(q, p) {
                PairClass::Asymmetric
            } else {
                let mut commuting = 0usize;
                let mut witness = None;
                for s in &sample.states {
                    if commute_in_state(spec, s, p, q) {
                        commuting += 1;
                    } else if witness.is_none() {
                        witness = Some(s);
                    }
                }
                match (table(p, q), witness) {
                    (true, Some(s)) => PairClass::Unsound(counterexample(spec, s, p, q)),
                    (true, None) => PairClass::AgreeCommute,
                    (false, None) | (false, Some(_)) if commuting > 0 => PairClass::Conservative {
                        commuting_states: commuting,
                        total_states: sample.states.len(),
                    },
                    (false, _) => PairClass::AgreeConflict,
                }
            };
            findings.push(PairFinding {
                p: p.clone(),
                q: q.clone(),
                class,
            });
        }
    }
    TableAudit {
        table: table_name.to_string(),
        spec_name: spec_name.to_string(),
        states_explored: sample.states.len(),
        truncated: sample.truncated,
        findings,
    }
}

fn counterexample<S: SequentialSpec>(
    spec: &S,
    state: &S::State,
    p: &Operation,
    q: &Operation,
) -> Counterexample {
    let pq = ordered_outcomes(spec, state, p, q);
    // `ordered_outcomes(q, p)` reports `(result-of-q, result-of-p)`; flip
    // so both sides of the certificate read `(result-of-p, result-of-q)`.
    let mut qp: Vec<(Value, Value)> = ordered_outcomes(spec, state, q, p)
        .into_iter()
        .map(|(vq, vp)| (vp, vq))
        .collect();
    qp.sort();
    Counterexample {
        state: format!("{state:?}"),
        pq_outcomes: pq,
        qp_outcomes: qp,
    }
}

/// The operation universe used to audit [`bank_commutativity`].
pub fn bank_universe() -> Vec<Operation> {
    vec![
        op("deposit", [5]),
        op("deposit", [3]),
        op("withdraw", [5]),
        op("withdraw", [3]),
        op("balance", [] as [i64; 0]),
    ]
}

/// The operation universe used to audit [`queue_commutativity`].
pub fn queue_universe() -> Vec<Operation> {
    vec![
        op("enqueue", [1]),
        op("enqueue", [2]),
        op("dequeue", [] as [i64; 0]),
        op("front", [] as [i64; 0]),
        op("len", [] as [i64; 0]),
    ]
}

/// The operation universe used to audit [`set_commutativity`].
pub fn set_universe() -> Vec<Operation> {
    vec![
        op("insert", [1]),
        op("insert", [2]),
        op("delete", [1]),
        op("member", [1]),
        op("size", [] as [i64; 0]),
    ]
}

/// The semiqueue operation universe (audited against the FIFO table to
/// exhibit the paper's interleaved-`enq` over-conservatism).
pub fn semiqueue_universe() -> Vec<Operation> {
    vec![
        op("enq", [1]),
        op("enq", [2]),
        op("deq", [] as [i64; 0]),
        op("count", [] as [i64; 0]),
    ]
}

/// Audits every shipped lock table against its specification, plus the
/// semiqueue universe against the (name-mismatched, hence fully
/// conservative) FIFO table — the paper's §5.1 sub-optimality showcase.
pub fn standard_audits(config: &AuditConfig) -> Vec<TableAudit> {
    vec![
        audit_table(
            "bank_commutativity",
            "BankAccountSpec",
            &BankAccountSpec::new(),
            &bank_universe(),
            bank_commutativity,
            config,
        ),
        audit_table(
            "queue_commutativity",
            "FifoQueueSpec",
            &FifoQueueSpec::new(),
            &queue_universe(),
            queue_commutativity,
            config,
        ),
        audit_table(
            "set_commutativity",
            "IntSetSpec",
            &IntSetSpec::new(),
            &set_universe(),
            set_commutativity,
            config,
        ),
        audit_table(
            "queue_commutativity (on semiqueue)",
            "SemiqueueSpec",
            &SemiqueueSpec::new(),
            &semiqueue_universe(),
            queue_commutativity,
            config,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn default_audits() -> Vec<TableAudit> {
        standard_audits(&AuditConfig::default())
    }

    #[test]
    fn shipped_tables_are_sound_and_exhaustively_explored() {
        for audit in default_audits() {
            assert!(
                audit.is_sound(),
                "{} audited against {} has errors: {:?}",
                audit.table,
                audit.spec_name,
                audit.errors().collect::<Vec<_>>()
            );
            assert_eq!(
                audit.truncated, 0,
                "{} enumeration truncated — raise max_states",
                audit.table
            );
        }
    }

    #[test]
    fn bank_withdraw_withdraw_is_a_conservative_warning() {
        let audits = default_audits();
        let bank = &audits[0];
        let f = bank.finding("withdraw", "withdraw").unwrap();
        assert!(f.is_warning(), "got {:?}", f.class);
        assert!(!f.is_error());
        // Identical withdrawals commute in every state; distinct amounts
        // commute only where funds suffice for both orders.
        match bank
            .findings
            .iter()
            .find(|f| {
                f.p.name() == "withdraw"
                    && f.q.name() == "withdraw"
                    && f.p.int_arg(0) != f.q.int_arg(0)
            })
            .map(|f| &f.class)
            .unwrap()
        {
            PairClass::Conservative {
                commuting_states,
                total_states,
            } => {
                assert!(commuting_states > &0);
                assert!(commuting_states < total_states);
            }
            other => panic!("expected data-dependent conservatism, got {other:?}"),
        }
    }

    #[test]
    fn semiqueue_interleaved_enq_is_a_conservative_warning() {
        let audits = default_audits();
        let semi = &audits[3];
        let f = semi
            .findings
            .iter()
            .find(|f| f.p.name() == "enq" && f.q.name() == "enq" && f.p != f.q)
            .unwrap();
        match &f.class {
            PairClass::Conservative {
                commuting_states,
                total_states,
            } => assert_eq!(
                commuting_states, total_states,
                "semiqueue enq/enq commutes unconditionally"
            ),
            other => panic!("expected a warning, got {other:?}"),
        }
        assert!(!f.is_error());
    }

    #[test]
    fn corrupted_table_is_reported_unsound_with_a_counterexample() {
        // Deliberately permit withdraw/withdraw: unsound, since two
        // withdrawals only commute when funds cover both.
        let corrupt = |p: &Operation, q: &Operation| {
            (p.name() == "withdraw" && q.name() == "withdraw") || bank_commutativity(p, q)
        };
        let audit = audit_table(
            "bank_commutativity (corrupted)",
            "BankAccountSpec",
            &BankAccountSpec::new(),
            &bank_universe(),
            corrupt,
            &AuditConfig::default(),
        );
        assert!(!audit.is_sound());
        let err = audit.errors().next().unwrap();
        match &err.class {
            PairClass::Unsound(cex) => {
                assert_ne!(cex.pq_outcomes, cex.qp_outcomes, "{cex}");
                assert!(!cex.state.is_empty());
            }
            other => panic!("expected unsound, got {other:?}"),
        }
    }

    #[test]
    fn asymmetric_table_is_an_error() {
        let asym = |p: &Operation, q: &Operation| p.name() == "deposit" && q.name() == "balance";
        let audit = audit_table(
            "asymmetric",
            "BankAccountSpec",
            &BankAccountSpec::new(),
            &bank_universe(),
            asym,
            &AuditConfig::default(),
        );
        assert!(audit
            .errors()
            .any(|f| matches!(f.class, PairClass::Asymmetric)));
    }

    #[test]
    fn unknown_operations_are_flagged_unsupported() {
        let audit = audit_table(
            "bank_commutativity",
            "BankAccountSpec",
            &BankAccountSpec::new(),
            &[op("deposit", [1]), op("frobnicate", [] as [i64; 0])],
            bank_commutativity,
            &AuditConfig::default(),
        );
        assert!(audit
            .findings
            .iter()
            .any(|f| matches!(f.class, PairClass::Unsupported)));
        assert!(audit.is_sound());
    }
}
