//! Pass 4: conflict-table **synthesis** — machine-derive commutativity
//! tables from sequential specifications.
//!
//! The audit pass (pass 1) checks hand-written tables after the fact; this
//! pass makes them unnecessary. For every pair of operation instances in a
//! bounded universe it decides **pairwise forward commutativity** over an
//! exhaustively enumerated bounded state space, generalizes the
//! per-instance verdicts into [`ConflictTable`] rules bucketed by
//! [`ArgRelation`], and ships the result to the engines. Three artifacts
//! ride along:
//!
//! - **Soundness self-check** ([`verify_table`]): every commuting rule is
//!   re-proven instance-by-instance, state-by-state; a violation carries a
//!   [`ForwardCounterexample`] certificate. This is the `lint --synth` CI
//!   gate (and what catches the `--demo-unsound` injected corruption).
//! - **Minimality / gap report** ([`gap_against`]): each hand-table entry
//!   stricter than the synthesized relation gets a witness-state
//!   certificate quantifying the lost concurrency; conversely each
//!   hand-table conflict that the synthesis also proves necessary gets a
//!   concrete conflicting state, so "the hand table is minimal" is a
//!   checked claim, not an assumption.
//! - **Right-mover asymmetries** ([`Asymmetry`]), the recoverability
//!   relations of Malta & Martinez: ordered pairs where `p;q` can always
//!   be reordered to `q;p` but not conversely — constraints on log
//!   ordering during recovery that plain commutativity cannot express.
//!
//! # Why *forward* commutativity
//!
//! The observational relation used by the audit (`commute_in_state` in
//! `atomicity-baselines`) compares the outcome sets of the two sequential
//! orders `p;q` and `q;p`. That matches how a *scheduler* observes a serial
//! history, but it is **unsound** as a locking relation for
//! non-deterministic operations: semiqueue `deq`/`deq` observationally
//! "commute" in the state `{1,2}` (both orders can yield `{1 then 2}` or
//! `{2 then 1}`), yet two concurrent holders would each independently take
//! the *same* element. The commutativity-locking engine executes each
//! holder against its own frontier — results are computed **independently
//! from the same base state** — so the sound relation is: for every result
//! `vp` of `p` at `s` and every result `vq` of `q` at `s`, *both*
//! interleavings `[(p,vp),(q,vq)]` and `[(q,vq),(p,vp)]` replay from `s`
//! and reach identical state sets. That is
//! [`forward_commute_in_state`]. On deterministic operations it coincides
//! with the observational relation; on non-deterministic ones it is
//! strictly stronger exactly where locking needs it to be.

use atomicity_baselines::derive::sample_states;
use atomicity_baselines::{bank_commutativity, queue_commutativity, set_commutativity};
use atomicity_core::conflict::{
    arg_relation, ArgRelation, CommutesRel, ConflictRule, ConflictTable,
};
use atomicity_spec::specs::{
    BankAccountSpec, EscrowCounterSpec, FifoQueueSpec, IntSetSpec, KvMapSpec, SemiqueueSpec,
};
use atomicity_spec::{op, Operation, SequentialSpec, Value};
use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt;

use crate::audit::{bank_universe, queue_universe, semiqueue_universe, set_universe};

/// Bounds for the synthesis state enumeration.
#[derive(Debug, Clone, Copy)]
pub struct SynthConfig {
    /// Maximum number of operations applied from the initial state.
    pub depth: usize,
    /// Cap on distinct states explored; the shipped universes stay well
    /// under it, so synthesis is exhaustive (`truncated == 0`).
    pub max_states: usize,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            depth: 4,
            max_states: 4096,
        }
    }
}

/// A certificate that two operations do **not** forward-commute: a state
/// plus independently achievable results for which the two interleavings
/// disagree (or one fails to replay at all).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ForwardCounterexample {
    /// The conflicting state (debug rendering).
    pub state: String,
    /// A result `p` can produce at that state.
    pub p_result: String,
    /// A result `q` can independently produce at that state.
    pub q_result: String,
    /// Final states reached replaying `p` then `q` with those results
    /// (empty = the order cannot replay).
    pub pq_states: Vec<String>,
    /// Final states reached replaying `q` then `p` with those results.
    pub qp_states: Vec<String>,
}

impl fmt::Display for ForwardCounterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "in state {} independent results ({}, {}) replay to {:?} under p;q but {:?} under q;p",
            self.state, self.p_result, self.q_result, self.pq_states, self.qp_states
        )
    }
}

/// The synthesized verdict for one unordered pair of operation instances.
#[derive(Debug, Clone)]
pub struct InstanceVerdict {
    /// First operation of the pair.
    pub p: Operation,
    /// Second operation of the pair.
    pub q: Operation,
    /// Argument bucket the pair falls in.
    pub relation: ArgRelation,
    /// States in which the pair forward-commutes.
    pub commuting_states: usize,
    /// States examined.
    pub total_states: usize,
    /// Certificate for the first conflicting state, if any.
    pub counterexample: Option<ForwardCounterexample>,
    /// A state in which the pair forward-commutes with both operations
    /// enabled (debug rendering), if one exists — the witness used by the
    /// gap report.
    pub commuting_witness: Option<String>,
}

impl InstanceVerdict {
    /// Whether the pair forward-commutes in every examined state.
    pub fn commutes_everywhere(&self) -> bool {
        self.counterexample.is_none()
    }
}

/// An ordered pair with a one-directional reordering guarantee: every
/// execution of `first; second` can be reordered to `second; first` with
/// identical results and final states, but not conversely.
///
/// These are the recoverability asymmetries of Malta & Martinez: the log
/// may move `first` after `second` during replay, never the other way.
#[derive(Debug, Clone)]
pub struct Asymmetry {
    /// The operation that can always be pushed later (a right mover with
    /// respect to `past`).
    pub mover: Operation,
    /// The operation it moves past.
    pub past: Operation,
}

impl fmt::Display for Asymmetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ; {} always reorders to {} ; {}, but not conversely",
            self.mover, self.past, self.past, self.mover
        )
    }
}

/// A rule the soundness self-check could not re-prove.
#[derive(Debug, Clone)]
pub struct SoundnessViolation {
    /// First operation of the offending pair.
    pub p: Operation,
    /// Second operation.
    pub q: Operation,
    /// What went wrong.
    pub detail: String,
}

impl fmt::Display for SoundnessViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}): {}", self.p, self.q, self.detail)
    }
}

/// The full output of synthesizing one ADT's table.
#[derive(Debug, Clone)]
pub struct TableSynthesis {
    /// The generated table (what the engines consume).
    pub table: ConflictTable,
    /// Per-instance verdicts backing the rules.
    pub instances: Vec<InstanceVerdict>,
    /// Right-mover asymmetries among universe instances.
    pub asymmetries: Vec<Asymmetry>,
}

impl TableSynthesis {
    /// The verdict for a specific unordered instance pair, if in universe.
    pub fn instance(&self, p: &Operation, q: &Operation) -> Option<&InstanceVerdict> {
        self.instances
            .iter()
            .find(|v| (&v.p == p && &v.q == q) || (&v.p == q && &v.q == p))
    }
}

/// Whether `p` and `q` **forward-commute** in `state`: for every result of
/// `p` and every result of `q`, each achievable *independently* at `state`,
/// both interleavings replay and reach identical final-state sets.
///
/// If either operation has no outcome at `state` (ill-typed or undefined),
/// the pair vacuously commutes there — the engines never hold an
/// inadmissible operation.
pub fn forward_commute_in_state<S: SequentialSpec>(
    spec: &S,
    state: &S::State,
    p: &Operation,
    q: &Operation,
) -> bool {
    forward_conflict_witness(spec, state, p, q).is_none()
}

/// `(p_result, q_result, pq_replay_states, qp_replay_states)` of one
/// independent result pair whose two interleavings diverge.
type ConflictWitness<S> = (
    Value,
    Value,
    Vec<<S as SequentialSpec>::State>,
    Vec<<S as SequentialSpec>::State>,
);

fn forward_conflict_witness<S: SequentialSpec>(
    spec: &S,
    state: &S::State,
    p: &Operation,
    q: &Operation,
) -> Option<ConflictWitness<S>> {
    let ps = spec.step(state, p);
    let qs = spec.step(state, q);
    if ps.is_empty() || qs.is_empty() {
        return None;
    }
    for (vp, _) in &ps {
        for (vq, _) in &qs {
            let pq = spec.replay(state, &[(p.clone(), vp.clone()), (q.clone(), vq.clone())]);
            let qp = spec.replay(state, &[(q.clone(), vq.clone()), (p.clone(), vp.clone())]);
            if !same_state_set(&pq, &qp) {
                return Some((vp.clone(), vq.clone(), pq, qp));
            }
        }
    }
    None
}

/// Whether every execution of `p` then `q` from `state` can be reordered to
/// `q` then `p` with identical results and final states — `p` is a *right
/// mover* past `q` at `state`.
///
/// Unlike [`forward_commute_in_state`], the second operation's result is
/// taken from the state *after* the first — this is reordering of a
/// sequential log, the recovery-time question, not the concurrent-holders
/// question.
pub fn right_mover_in_state<S: SequentialSpec>(
    spec: &S,
    state: &S::State,
    p: &Operation,
    q: &Operation,
) -> bool {
    for (vp, sp) in spec.step(state, p) {
        for (vq, _) in spec.step(&sp, q) {
            let pq = spec.replay(state, &[(p.clone(), vp.clone()), (q.clone(), vq.clone())]);
            let qp = spec.replay(state, &[(q.clone(), vq.clone()), (p.clone(), vp.clone())]);
            if !same_state_set(&pq, &qp) {
                return false;
            }
        }
    }
    true
}

fn same_state_set<T: PartialEq>(a: &[T], b: &[T]) -> bool {
    !a.is_empty()
        && a.len() == b.len()
        && a.iter().all(|x| b.contains(x))
        && b.iter().all(|x| a.contains(x))
}

/// Synthesizes a conflict table for `spec` over `universe`.
///
/// Every unordered instance pair (including an instance with itself — two
/// transactions may issue identical invocations) is decided in every
/// explored state; verdicts are generalized into rules keyed by name pair
/// plus [`ArgRelation`], a rule commuting only if **all** its instance
/// pairs commute in **all** states.
pub fn synthesize_table<S: SequentialSpec>(
    adt: &str,
    spec_name: &str,
    spec: &S,
    universe: &[Operation],
    config: &SynthConfig,
) -> TableSynthesis
where
    S::State: Ord + fmt::Debug,
{
    let sample = sample_states(spec, universe, config.depth, config.max_states);
    let states = &sample.states;

    let mut instances = Vec::new();
    let mut asymmetries = Vec::new();
    for i in 0..universe.len() {
        for j in i..universe.len() {
            let (p, q) = (&universe[i], &universe[j]);
            let mut commuting = 0usize;
            let mut counterexample = None;
            let mut commuting_witness = None;
            for s in states {
                match forward_conflict_witness(spec, s, p, q) {
                    None => {
                        commuting += 1;
                        let both_enabled =
                            !spec.step(s, p).is_empty() && !spec.step(s, q).is_empty();
                        if commuting_witness.is_none() && both_enabled {
                            commuting_witness = Some(format!("{s:?}"));
                        }
                    }
                    Some((vp, vq, pq, qp)) => {
                        if counterexample.is_none() {
                            counterexample = Some(ForwardCounterexample {
                                state: format!("{s:?}"),
                                p_result: vp.to_string(),
                                q_result: vq.to_string(),
                                pq_states: pq.iter().map(|x| format!("{x:?}")).collect(),
                                qp_states: qp.iter().map(|x| format!("{x:?}")).collect(),
                            });
                        }
                    }
                }
            }
            instances.push(InstanceVerdict {
                p: p.clone(),
                q: q.clone(),
                relation: arg_relation(p, q),
                commuting_states: commuting,
                total_states: states.len(),
                counterexample,
                commuting_witness,
            });
            if i != j {
                let pq_mover = states.iter().all(|s| right_mover_in_state(spec, s, p, q));
                let qp_mover = states.iter().all(|s| right_mover_in_state(spec, s, q, p));
                if pq_mover && !qp_mover {
                    asymmetries.push(Asymmetry {
                        mover: p.clone(),
                        past: q.clone(),
                    });
                } else if qp_mover && !pq_mover {
                    asymmetries.push(Asymmetry {
                        mover: q.clone(),
                        past: p.clone(),
                    });
                }
            }
        }
    }

    // Generalize instance verdicts into bucketed rules: commute only if
    // every instance pair in the bucket commutes everywhere.
    let mut buckets: BTreeMap<(String, String, ArgRelation), (bool, usize)> = BTreeMap::new();
    for v in &instances {
        let (a, b) = if v.p.name() <= v.q.name() {
            (v.p.name().to_string(), v.q.name().to_string())
        } else {
            (v.q.name().to_string(), v.p.name().to_string())
        };
        let entry = buckets.entry((a, b, v.relation)).or_insert((true, 0));
        entry.0 &= v.commutes_everywhere();
        entry.1 += 1;
    }
    let rules = buckets
        .into_iter()
        .map(
            |((p_name, q_name, relation), (commutes, instance_pairs))| ConflictRule {
                p_name,
                q_name,
                relation,
                commutes,
                instance_pairs,
            },
        )
        .collect();

    TableSynthesis {
        table: ConflictTable {
            adt: adt.to_string(),
            spec: spec_name.to_string(),
            depth: config.depth,
            states_explored: states.len(),
            truncated: sample.truncated,
            universe: universe.iter().map(|o| o.to_string()).collect(),
            rules,
        },
        instances,
        asymmetries,
    }
}

/// Re-proves every commuting rule of `table` against `spec` from scratch:
/// each universe instance pair the table admits must forward-commute in
/// every explored state, and the table must be symmetric. Returns all
/// violations (empty = sound).
///
/// This deliberately re-runs the underlying decision procedure rather than
/// trusting the synthesis that produced the table, so it also catches
/// tables corrupted after generation (the `--demo-unsound` path) and any
/// future generalization bug.
pub fn verify_table<S: SequentialSpec>(
    spec: &S,
    universe: &[Operation],
    config: &SynthConfig,
    table: &ConflictTable,
) -> Vec<SoundnessViolation>
where
    S::State: Ord + fmt::Debug,
{
    let sample = sample_states(spec, universe, config.depth, config.max_states);
    let mut violations = Vec::new();
    for i in 0..universe.len() {
        for j in i..universe.len() {
            let (p, q) = (&universe[i], &universe[j]);
            if table.commutes(p, q) != table.commutes(q, p) {
                violations.push(SoundnessViolation {
                    p: p.clone(),
                    q: q.clone(),
                    detail: "asymmetric table entry".to_string(),
                });
                continue;
            }
            if !table.commutes(p, q) {
                continue;
            }
            for s in &sample.states {
                if let Some((vp, vq, pq, qp)) = forward_conflict_witness(spec, s, p, q) {
                    let ce = ForwardCounterexample {
                        state: format!("{s:?}"),
                        p_result: vp.to_string(),
                        q_result: vq.to_string(),
                        pq_states: pq.iter().map(|x| format!("{x:?}")).collect(),
                        qp_states: qp.iter().map(|x| format!("{x:?}")).collect(),
                    };
                    violations.push(SoundnessViolation {
                        p: p.clone(),
                        q: q.clone(),
                        detail: format!("admitted pair does not forward-commute: {ce}"),
                    });
                    break;
                }
            }
        }
    }
    violations
}

/// One hand-table entry stricter (or looser) than the synthesized relation.
#[derive(Debug, Clone, Serialize)]
pub struct GapEntry {
    /// First operation (display form).
    pub p: String,
    /// Second operation.
    pub q: String,
    /// Argument bucket label.
    pub relation: String,
    /// States in which the pair forward-commutes.
    pub commuting_states: usize,
    /// States examined.
    pub total_states: usize,
    /// The witness certificate: a commuting state (for over-conservative
    /// entries) or the conflicting state with its diverging replays (for
    /// unsound or justified entries).
    pub witness: String,
}

/// The comparison of one hand-written table against the synthesized
/// relation for the same ADT.
#[derive(Debug, Clone, Serialize)]
pub struct HandTableGap {
    /// ADT name.
    pub adt: String,
    /// Name of the hand-written table compared against.
    pub hand_table: String,
    /// Hand-table conflicts the synthesized table *admits*: concurrency the
    /// hand table provably gives away, each with a witness state where both
    /// operations run and commute.
    pub over_conservative: Vec<GapEntry>,
    /// Hand-table *commutes* that the synthesis refutes — soundness bugs in
    /// the hand table (always empty for the shipped tables).
    pub unsound: Vec<GapEntry>,
    /// Hand-table conflicts that are justified in general but commute in
    /// some states — the data-dependent residue only dynamic admission can
    /// exploit (§5.1's headroom), with the commuting-state counts.
    pub data_dependent: Vec<GapEntry>,
    /// Hand-table conflicts the synthesis proves necessary, with a concrete
    /// conflicting state each — the minimality certificates.
    pub justified: Vec<GapEntry>,
    /// Whether the hand table is minimal: no over-conservative and no
    /// unsound entries.
    pub minimal: bool,
}

/// Compares a hand-written commutativity relation against the synthesis.
///
/// Classification is per universe instance pair: `over_conservative` /
/// `data_dependent` / `justified` for hand-conflicts (depending on whether
/// the *generated table* admits the pair, and on whether any state
/// conflicts), `unsound` for hand-commutes refuted by a per-instance
/// counterexample.
pub fn gap_against(
    synth: &TableSynthesis,
    hand_name: &str,
    hand: &dyn CommutesRel,
) -> HandTableGap {
    let mut gap = HandTableGap {
        adt: synth.table.adt.clone(),
        hand_table: hand_name.to_string(),
        over_conservative: Vec::new(),
        unsound: Vec::new(),
        data_dependent: Vec::new(),
        justified: Vec::new(),
        minimal: true,
    };
    for v in &synth.instances {
        let hand_commutes = hand.commutes(&v.p, &v.q);
        let entry = |witness: String| GapEntry {
            p: v.p.to_string(),
            q: v.q.to_string(),
            relation: v.relation.label().to_string(),
            commuting_states: v.commuting_states,
            total_states: v.total_states,
            witness,
        };
        if hand_commutes {
            if let Some(ce) = &v.counterexample {
                gap.unsound.push(entry(ce.to_string()));
            }
        } else if synth.table.commutes(&v.p, &v.q) {
            let witness = v
                .commuting_witness
                .clone()
                .unwrap_or_else(|| "<never co-enabled>".to_string());
            gap.over_conservative.push(entry(format!(
                "forward-commutes in all {} explored states (e.g. from state {witness})",
                v.total_states
            )));
        } else if let Some(ce) = &v.counterexample {
            let witness = ce.to_string();
            if v.commuting_states > 0 {
                gap.data_dependent.push(entry(witness));
            } else {
                gap.justified.push(entry(witness));
            }
        } else {
            // The instance commutes everywhere but its bucket conflicts:
            // generalization loss, reported as data-dependent residue.
            gap.data_dependent.push(entry(format!(
                "instance commutes everywhere but its {} bucket conflicts",
                v.relation
            )));
        }
    }
    gap.minimal = gap.over_conservative.is_empty() && gap.unsound.is_empty();
    gap
}

/// The operation universe for the key/value map synthesis: keyed writes on
/// two keys (with same-key and identical variants), keyed reads, and the
/// whole-map scans.
pub fn map_universe() -> Vec<Operation> {
    vec![
        op("put", [1, 5]),
        op("put", [1, 7]),
        op("put", [2, 9]),
        op("adjust", [1, 1]),
        op("adjust", [1, 2]),
        op("adjust", [2, 1]),
        op("remove", [1]),
        op("get", [1]),
        op("get", [2]),
        op("sum", [] as [i64; 0]),
        op("size", [] as [i64; 0]),
    ]
}

/// The operation universe for the escrow-counter synthesis.
pub fn escrow_universe() -> Vec<Operation> {
    vec![
        op("credit", [5]),
        op("credit", [3]),
        op("debit", [5]),
        op("debit", [3]),
        op("available", [] as [i64; 0]),
    ]
}

/// The synthesized tables and hand-table gap reports for the whole
/// workspace.
#[derive(Debug, Clone)]
pub struct SynthSuite {
    /// One synthesis per ADT (bank, queue, set, semiqueue, map, escrow).
    pub syntheses: Vec<TableSynthesis>,
    /// Gap reports for the ADTs that have hand-written tables in
    /// `atomicity-baselines` (the bench crate appends its own map table's
    /// report). The escrow counter has none: its table is 100%
    /// machine-derived.
    pub gaps: Vec<HandTableGap>,
}

impl SynthSuite {
    /// The generated table for `adt`, if synthesized.
    pub fn table(&self, adt: &str) -> Option<&ConflictTable> {
        self.synthesis(adt).map(|s| &s.table)
    }

    /// The full synthesis for `adt`.
    pub fn synthesis(&self, adt: &str) -> Option<&TableSynthesis> {
        self.syntheses.iter().find(|s| s.table.adt == adt)
    }
}

/// Synthesizes tables for every shipped ADT and diffs them against the
/// hand-written baselines.
pub fn standard_syntheses(config: &SynthConfig) -> SynthSuite {
    let bank = synthesize_table(
        "bank",
        "BankAccountSpec",
        &BankAccountSpec::new(),
        &bank_universe(),
        config,
    );
    let queue = synthesize_table(
        "queue",
        "FifoQueueSpec",
        &FifoQueueSpec::new(),
        &queue_universe(),
        config,
    );
    let set = synthesize_table(
        "set",
        "IntSetSpec",
        &IntSetSpec::new(),
        &set_universe(),
        config,
    );
    let semiqueue = synthesize_table(
        "semiqueue",
        "SemiqueueSpec",
        &SemiqueueSpec::new(),
        &semiqueue_universe(),
        config,
    );
    let map = synthesize_table(
        "map",
        "KvMapSpec",
        &KvMapSpec::new(),
        &map_universe(),
        config,
    );
    let escrow = synthesize_table(
        "escrow",
        "EscrowCounterSpec",
        &EscrowCounterSpec::new(),
        &escrow_universe(),
        config,
    );

    let gaps = vec![
        gap_against(&bank, "bank_commutativity", &bank_commutativity),
        gap_against(&queue, "queue_commutativity", &queue_commutativity),
        gap_against(&set, "set_commutativity", &set_commutativity),
        // The semiqueue never had its own table: the baseline borrows the
        // FIFO queue's (and doesn't even share operation names) — the gap
        // report quantifies exactly how much that borrowing costs.
        gap_against(
            &semiqueue,
            "queue_commutativity (borrowed)",
            &queue_commutativity,
        ),
    ];

    SynthSuite {
        syntheses: vec![bank, queue, set, semiqueue, map, escrow],
        gaps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn suite() -> SynthSuite {
        standard_syntheses(&SynthConfig::default())
    }

    #[test]
    fn synthesis_is_exhaustive_for_shipped_universes() {
        for s in &suite().syntheses {
            assert_eq!(s.table.truncated, 0, "{} truncated", s.table.adt);
            assert!(s.table.states_explored > 0);
        }
    }

    #[test]
    fn generated_tables_pass_their_own_soundness_check() {
        let cfg = SynthConfig::default();
        let suite = suite();
        let v = verify_table(
            &BankAccountSpec::new(),
            &bank_universe(),
            &cfg,
            suite.table("bank").unwrap(),
        );
        assert!(v.is_empty(), "{v:?}");
        let v = verify_table(
            &EscrowCounterSpec::new(),
            &escrow_universe(),
            &cfg,
            suite.table("escrow").unwrap(),
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn corrupted_table_fails_verification() {
        let cfg = SynthConfig::default();
        let mut table = suite().table("bank").unwrap().clone();
        for r in &mut table.rules {
            if r.p_name == "withdraw" && r.q_name == "withdraw" {
                r.commutes = true; // inject the unsound entry
            }
        }
        let v = verify_table(&BankAccountSpec::new(), &bank_universe(), &cfg, &table);
        assert!(
            v.iter()
                .any(|x| x.p.name() == "withdraw" && x.q.name() == "withdraw"),
            "{v:?}"
        );
    }

    #[test]
    fn bank_verdicts_match_the_paper() {
        let suite = suite();
        let t = suite.table("bank").unwrap();
        assert!(t.commutes(&op("deposit", [5]), &op("deposit", [5])));
        assert!(t.commutes(&op("deposit", [5]), &op("deposit", [3])));
        assert!(!t.commutes(&op("withdraw", [5]), &op("withdraw", [3])));
        assert!(!t.commutes(&op("withdraw", [5]), &op("withdraw", [5])));
        assert!(!t.commutes(&op("deposit", [5]), &op("withdraw", [3])));
        assert!(!t.commutes(&op("balance", [] as [i64; 0]), &op("deposit", [5])));
        assert!(t.commutes(
            &op("balance", [] as [i64; 0]),
            &op("balance", [] as [i64; 0])
        ));
        // withdraw/withdraw is data-dependent: conflicts, but commutes in
        // most explored states — the §5.1 headroom only dynamic admission
        // can exploit.
        let s = suite.synthesis("bank").unwrap();
        let v = s
            .instance(&op("withdraw", [5]), &op("withdraw", [3]))
            .unwrap();
        assert!(v.commuting_states > 0 && v.commuting_states < v.total_states);
    }

    #[test]
    fn identical_fifo_enqueues_commute_but_distinct_ones_do_not() {
        let suite = suite();
        let t = suite.table("queue").unwrap();
        assert!(t.commutes(&op("enqueue", [1]), &op("enqueue", [1])));
        assert!(!t.commutes(&op("enqueue", [1]), &op("enqueue", [2])));
        assert!(!t.commutes(&op("enqueue", [1]), &op("dequeue", [] as [i64; 0])));
        assert!(t.commutes(&op("front", [] as [i64; 0]), &op("len", [] as [i64; 0])));
    }

    #[test]
    fn semiqueue_enqueues_commute_unlike_fifo() {
        let suite = suite();
        let t = suite.table("semiqueue").unwrap();
        assert!(t.commutes(&op("enq", [1]), &op("enq", [2])));
        assert!(t.commutes(&op("enq", [1]), &op("enq", [1])));
        // Two concurrent deqs could independently take the same element:
        // forward-conflict even though the orders are observationally
        // symmetric.
        assert!(!t.commutes(&op("deq", [] as [i64; 0]), &op("deq", [] as [i64; 0])));
        assert!(!t.commutes(&op("enq", [1]), &op("deq", [] as [i64; 0])));
    }

    #[test]
    fn forward_is_strictly_stronger_than_observational_on_the_semiqueue() {
        use atomicity_baselines::derive::commute_in_state;
        let spec = SemiqueueSpec::new();
        // State {1,2}: observationally deq/deq commute (either order can
        // produce either pair), but they do not forward-commute: both
        // holders can independently take 1.
        let state: std::collections::BTreeMap<i64, u32> = [(1, 1), (2, 1)].into_iter().collect();
        let deq = op("deq", [] as [i64; 0]);
        assert!(commute_in_state(&spec, &state, &deq, &deq));
        assert!(!forward_commute_in_state(&spec, &state, &deq, &deq));
    }

    #[test]
    fn map_verdicts() {
        let suite = suite();
        let t = suite.table("map").unwrap();
        assert!(!t.commutes(&op("put", [1, 5]), &op("put", [1, 5]))); // old-value returns
        assert!(!t.commutes(&op("put", [1, 5]), &op("put", [1, 7])));
        assert!(t.commutes(&op("put", [1, 5]), &op("put", [2, 9])));
        assert!(t.commutes(&op("adjust", [1, 1]), &op("adjust", [1, 2])));
        assert!(t.commutes(&op("get", [1]), &op("get", [2])));
        assert!(!t.commutes(&op("sum", [] as [i64; 0]), &op("adjust", [1, 1])));
        assert!(t.commutes(&op("sum", [] as [i64; 0]), &op("size", [] as [i64; 0])));
    }

    #[test]
    fn escrow_table_is_maximally_concurrent_between_credits_and_debits() {
        let suite = suite();
        let t = suite.table("escrow").unwrap();
        // Credits and debits commute in EVERY state: refusal always
        // replays, so a debit never constrains a concurrent credit.
        assert!(t.commutes(&op("credit", [5]), &op("debit", [5])));
        assert!(t.commutes(&op("credit", [5]), &op("debit", [3])));
        assert!(t.commutes(&op("credit", [5]), &op("credit", [3])));
        assert!(t.commutes(&op("credit", [5]), &op("credit", [5])));
        // Two ok-debits from a tight state would double-spend.
        assert!(!t.commutes(&op("debit", [5]), &op("debit", [3])));
        assert!(!t.commutes(&op("available", [] as [i64; 0]), &op("credit", [5])));
    }

    #[test]
    fn escrow_has_the_recoverability_asymmetry() {
        let suite = suite();
        let s = suite.synthesis("escrow").unwrap();
        // debit;credit always reorders to credit;debit (refusal replays),
        // but credit;debit-ok may be unreplayable before the credit.
        assert!(
            s.asymmetries
                .iter()
                .any(|a| a.mover.name() == "debit" && a.past.name() == "credit"),
            "{:?}",
            s.asymmetries
        );
    }

    #[test]
    fn gap_report_finds_the_known_over_conservative_entries() {
        let suite = suite();
        let bank = suite.gaps.iter().find(|g| g.adt == "bank").unwrap();
        assert!(bank.minimal, "{bank:?}");
        assert!(!bank.justified.is_empty());
        // The FIFO hand table conflicts identical enqueues, which commute.
        let queue = suite.gaps.iter().find(|g| g.adt == "queue").unwrap();
        assert!(!queue.minimal);
        assert!(queue
            .over_conservative
            .iter()
            .any(|e| e.p == "enqueue(1)" && e.q == "enqueue(1)"));
        assert!(queue.unsound.is_empty());
        // The borrowed table costs the semiqueue its headline concurrency.
        let semi = suite.gaps.iter().find(|g| g.adt == "semiqueue").unwrap();
        assert!(!semi.minimal);
        assert!(semi
            .over_conservative
            .iter()
            .any(|e| e.p == "enq(1)" && e.q == "enq(2)"));
    }

    #[test]
    fn set_hand_table_is_minimal() {
        let suite = suite();
        let set = suite.gaps.iter().find(|g| g.adt == "set").unwrap();
        assert!(set.minimal, "{set:?}");
        assert!(set.unsound.is_empty());
    }

    #[test]
    fn tables_serialize_to_json() {
        let suite = suite();
        let json = serde_json::to_string(&suite.table("escrow").unwrap()).unwrap();
        assert!(json.contains("\"adt\":\"escrow\""));
        let json = serde_json::to_string(&suite.gaps).unwrap();
        assert!(json.contains("over_conservative"));
    }
}
