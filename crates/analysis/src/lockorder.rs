//! The lock-order audit (pass 3).
//!
//! The wait-graph machinery in `core::deadlock` handles deadlocks between
//! *transactions*. Underneath it, the engines synchronize with ordinary
//! mutexes — object locks (`mu`, `state`), the manager's transaction-table
//! shards, the wait graph, the hybrid commit gate, the recorder shards —
//! and a cycle among *those* would hang the process no matter what the
//! transaction-level policy says. This pass recovers the lock-acquisition
//! order actually used from the sources and flags cycles.
//!
//! # How the scan works
//!
//! A deliberately simple line-oriented scan (no full parser, no syntax
//! tree), tuned to the workspace's lock idiom:
//!
//! - an acquisition is a `.lock()` call; the lock's identity is
//!   `file_stem.receiver` (`manager.commit_gate`, `dynamic.mu`, …), so
//!   same-named fields in different modules stay distinct;
//! - `let g = recv.lock();` binds a **guard** that lives to the end of its
//!   brace scope (or an explicit `drop(g)`); any other `.lock()` form is a
//!   temporary that dies at the end of its statement and therefore never
//!   *holds* anything;
//! - while a guard is held, every further acquisition adds an edge
//!   `held → acquired`. Calls are followed one level deep in spirit:
//!   each scanned function's transitively acquired lock set is computed by
//!   fixpoint over the (name-resolved) call graph, and a call made while
//!   holding a guard adds edges to everything the callee may acquire.
//!   Name resolution over-approximates dynamic dispatch (`p.commit(…)`
//!   reaches every scanned `fn commit`), which is exactly what trait
//!   objects call for; the self-edges this over-approximation manufactures
//!   are suppressed;
//! - `#[cfg(test)]` modules are skipped — test-only lock nesting is not
//!   part of the shipped ordering.
//!
//! The result is an [`LockOrderReport`]: the acquisition edges with
//! example sites, the strongly connected components with more than one
//! lock (cycles — hard errors for the lint gate), and a topological order
//! of the locks when the graph is clean, which *is* the documented lock
//! ordering of the system.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// One source file to scan: a display label (used in sites and lock
/// names) plus its text.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Display label; the portion before the first `.` (the file stem)
    /// prefixes lock names.
    pub label: String,
    /// The file's contents.
    pub text: String,
}

impl SourceFile {
    /// Reads a file from disk, labelling it with its file name.
    pub fn read(path: &Path) -> std::io::Result<SourceFile> {
        Ok(SourceFile {
            label: path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| path.display().to_string()),
            text: std::fs::read_to_string(path)?,
        })
    }
}

/// Reads every `*.rs` file directly inside each of `dirs`.
pub fn read_sources(dirs: &[&Path]) -> std::io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    for dir in dirs {
        let mut entries: Vec<_> = std::fs::read_dir(dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "rs"))
            .collect();
        entries.sort();
        for path in entries {
            out.push(SourceFile::read(&path)?);
        }
    }
    Ok(out)
}

/// A directed acquisition edge: `acquired` was (possibly transitively)
/// taken while `held` was held.
#[derive(Debug, Clone)]
pub struct AcquisitionEdge {
    /// The lock already held.
    pub held: String,
    /// The lock acquired under it.
    pub acquired: String,
    /// Example sites (`file:line`, capped at 3).
    pub sites: Vec<String>,
}

/// The derived lock-ordering structure of the scanned sources.
#[derive(Debug, Clone, Default)]
pub struct LockOrderReport {
    /// Every lock that was acquired anywhere.
    pub locks: Vec<String>,
    /// The acquisition edges.
    pub edges: Vec<AcquisitionEdge>,
    /// Strongly connected components with more than one lock: each is a
    /// potential deadlock cycle (hard error).
    pub cycles: Vec<Vec<String>>,
    /// A topological order of the locks (the system's lock ordering);
    /// empty when the graph has cycles.
    pub order: Vec<String>,
}

impl LockOrderReport {
    /// Whether the scan found no ordering cycles.
    pub fn is_clean(&self) -> bool {
        self.cycles.is_empty()
    }
}

/// Scans `files` and derives the lock-order report.
pub fn audit_lock_order(files: &[SourceFile]) -> LockOrderReport {
    let functions = parse_functions(files);
    let transitive = transitive_lock_sets(&functions);
    let mut edges: BTreeMap<(String, String), Vec<String>> = BTreeMap::new();
    let mut locks: BTreeSet<String> = BTreeSet::new();
    for f in &functions {
        for acq in &f.acquisitions {
            locks.insert(acq.lock.clone());
            for held in &acq.held {
                add_edge(&mut edges, held, &acq.lock, &acq.site);
            }
        }
        for call in &f.calls {
            if call.held.is_empty() {
                continue;
            }
            if let Some(acquired) = transitive.get(&call.callee) {
                for lock in acquired {
                    locks.insert(lock.clone());
                    for held in &call.held {
                        add_edge(&mut edges, held, lock, &call.site);
                    }
                }
            }
        }
    }
    let edges: Vec<AcquisitionEdge> = edges
        .into_iter()
        .map(|((held, acquired), sites)| AcquisitionEdge {
            held,
            acquired,
            sites,
        })
        .collect();
    let cycles = find_cycles(&locks, &edges);
    let order = if cycles.is_empty() {
        topo_order(&locks, &edges)
    } else {
        Vec::new()
    };
    LockOrderReport {
        locks: locks.into_iter().collect(),
        edges,
        cycles,
        order,
    }
}

fn add_edge(
    edges: &mut BTreeMap<(String, String), Vec<String>>,
    held: &str,
    acquired: &str,
    site: &str,
) {
    if held == acquired {
        // Self-edges come from name-resolved dynamic dispatch
        // over-approximation; suppress rather than cry wolf.
        return;
    }
    let sites = edges
        .entry((held.to_string(), acquired.to_string()))
        .or_default();
    if sites.len() < 3 && !sites.iter().any(|s| s == site) {
        sites.push(site.to_string());
    }
}

/// One `.lock()` acquisition inside a function.
#[derive(Debug)]
struct Acquisition {
    lock: String,
    held: Vec<String>,
    site: String,
}

/// One call made inside a function, with the guards held at the call.
#[derive(Debug)]
struct Call {
    callee: String,
    held: Vec<String>,
    site: String,
}

#[derive(Debug)]
struct FnInfo {
    name: String,
    acquisitions: Vec<Acquisition>,
    calls: Vec<Call>,
}

/// A live guard: variable name, lock it protects, brace depth it lives at.
struct Guard {
    var: String,
    lock: String,
    depth: i32,
}

fn parse_functions(files: &[SourceFile]) -> Vec<FnInfo> {
    let mut out = Vec::new();
    for file in files {
        let stem = file.label.split('.').next().unwrap_or(&file.label);
        let mut current: Option<FnInfo> = None;
        let mut guards: Vec<Guard> = Vec::new();
        let mut depth: i32 = 0;
        for (lineno, raw) in file.text.lines().enumerate() {
            if raw.contains("#[cfg(test)]") {
                break; // test modules sit at the end of each file
            }
            let line = sanitize(raw);
            let site = format!("{}:{}", file.label, lineno + 1);
            if let Some(name) = fn_definition_name(&line) {
                if let Some(f) = current.take() {
                    out.push(f);
                }
                current = Some(FnInfo {
                    name,
                    acquisitions: Vec::new(),
                    calls: Vec::new(),
                });
                guards.clear();
            }
            let depth_after = depth + brace_delta(&line);
            if let Some(f) = current.as_mut() {
                let held: Vec<String> = guards.iter().map(|g| g.lock.clone()).collect();
                for recv in lock_receivers(&line) {
                    let lock = format!("{stem}.{recv}");
                    f.acquisitions.push(Acquisition {
                        lock,
                        held: held.clone(),
                        site: site.clone(),
                    });
                }
                for callee in call_names(&line) {
                    f.calls.push(Call {
                        callee,
                        held: held.clone(),
                        site: site.clone(),
                    });
                }
                if let Some((var, recv)) = guard_binding(&line) {
                    guards.push(Guard {
                        var,
                        lock: format!("{stem}.{recv}"),
                        depth: depth_after,
                    });
                }
                for dropped in drop_targets(&line) {
                    guards.retain(|g| g.var != dropped);
                }
            }
            depth = depth_after;
            guards.retain(|g| g.depth <= depth);
        }
        if let Some(f) = current.take() {
            out.push(f);
        }
    }
    out
}

/// Fixpoint: for each function name, every lock it may acquire directly
/// or through calls to scanned functions (names merged across files, which
/// over-approximates dynamic dispatch).
fn transitive_lock_sets(functions: &[FnInfo]) -> BTreeMap<String, BTreeSet<String>> {
    let mut sets: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut callees: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for f in functions {
        let set = sets.entry(f.name.clone()).or_default();
        set.extend(f.acquisitions.iter().map(|a| a.lock.clone()));
        callees
            .entry(f.name.clone())
            .or_default()
            .extend(f.calls.iter().map(|c| c.callee.clone()));
    }
    loop {
        let mut changed = false;
        let names: Vec<String> = sets.keys().cloned().collect();
        for name in &names {
            let mut add = BTreeSet::new();
            for callee in callees.get(name).into_iter().flatten() {
                if let Some(their) = sets.get(callee) {
                    add.extend(their.iter().cloned());
                }
            }
            let mine = sets.get_mut(name).expect("seeded above");
            let before = mine.len();
            mine.extend(add);
            changed |= mine.len() != before;
        }
        if !changed {
            return sets;
        }
    }
}

/// Strips line comments and blanks out string/char literal contents so
/// brace counting and token scans are not fooled.
fn sanitize(line: &str) -> String {
    let bytes = line.as_bytes();
    let mut out = String::with_capacity(line.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => break,
            b'"' => {
                out.push(' ');
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
            }
            b'\'' => {
                // Char literal ('x', '\n') vs lifetime ('a): literals close
                // with a quote one or two characters on.
                if i + 2 < bytes.len() && bytes[i + 1] == b'\\' {
                    i += 4; // '\x'
                    out.push(' ');
                } else if i + 2 < bytes.len() && bytes[i + 2] == b'\'' {
                    i += 3; // 'x'
                    out.push(' ');
                } else {
                    out.push('\'');
                    i += 1;
                }
            }
            c => {
                out.push(c as char);
                i += 1;
            }
        }
    }
    out
}

fn brace_delta(line: &str) -> i32 {
    let mut d = 0;
    for c in line.chars() {
        match c {
            '{' => d += 1,
            '}' => d -= 1,
            _ => {}
        }
    }
    d
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// The name in a `fn name(...)` definition line, if any.
pub(crate) fn fn_definition_name(line: &str) -> Option<String> {
    let bytes = line.as_bytes();
    let mut search = 0;
    while let Some(pos) = line[search..].find("fn ") {
        let at = search + pos;
        // Must be the keyword, not a suffix of another identifier.
        if at > 0 && is_ident_byte(bytes[at - 1]) {
            search = at + 3;
            continue;
        }
        let rest = &line[at + 3..];
        let name: String = rest
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if name.is_empty() {
            return None;
        }
        return Some(name);
    }
    None
}

/// Receivers of every `.lock()` call on the line, in textual order.
fn lock_receivers(line: &str) -> Vec<String> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut search = 0;
    while let Some(pos) = line[search..].find(".lock()") {
        let dot = search + pos;
        if let Some(recv) = receiver_before(bytes, dot) {
            // Single-letter receivers are closure parameters
            // (`shards.iter().map(|s| s.lock()…)`) — no stable identity.
            if recv.len() > 1 {
                out.push(recv);
            }
        }
        search = dot + ".lock()".len();
    }
    out
}

/// Walks backwards from the `.` of `.lock()` over one trailing call or
/// index group to the receiver identifier (`self.inner.txn_shard(id)` →
/// `txn_shard`, `self.mu` → `mu`).
fn receiver_before(bytes: &[u8], dot: usize) -> Option<String> {
    let mut i = dot;
    loop {
        if i == 0 {
            return None;
        }
        let c = bytes[i - 1];
        if c == b')' || c == b']' {
            let (open, close) = if c == b')' {
                (b'(', b')')
            } else {
                (b'[', b']')
            };
            let mut depth = 0;
            while i > 0 {
                i -= 1;
                if bytes[i] == close {
                    depth += 1;
                } else if bytes[i] == open {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
            }
            continue;
        }
        break;
    }
    let end = i;
    let mut start = i;
    while start > 0 && is_ident_byte(bytes[start - 1]) {
        start -= 1;
    }
    if start == end {
        return None;
    }
    Some(String::from_utf8_lossy(&bytes[start..end]).into_owned())
}

/// The guard binding on the line, if it has the shape
/// `let [mut] name = receiver.lock();`.
fn guard_binding(line: &str) -> Option<(String, String)> {
    let trimmed = line.trim();
    let rest = trimmed.strip_prefix("let ")?;
    if !trimmed.ends_with(".lock();") {
        return None;
    }
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let var: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    if var.is_empty() {
        return None;
    }
    let bytes = trimmed.as_bytes();
    let dot = trimmed.len() - ".lock();".len();
    let recv = receiver_before(bytes, dot)?;
    Some((var, recv))
}

/// Variables released by `drop(...)` calls on the line.
fn drop_targets(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = line.as_bytes();
    let mut search = 0;
    while let Some(pos) = line[search..].find("drop(") {
        let at = search + pos;
        if at == 0 || !is_ident_byte(bytes[at - 1]) {
            let inner: String = line[at + "drop(".len()..]
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !inner.is_empty() {
                out.push(inner);
            }
        }
        search = at + "drop(".len();
    }
    out
}

const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "fn", "return", "in", "as", "move", "drop",
];

/// Method names too generic to resolve through the name-merged call
/// graph: `intentions.len()` must not inherit `HistoryLog::len`'s lock
/// set just because the names coincide, and `hasher.finish()` must not
/// inherit `TxnManager::finish`'s. Covers the ubiquitous container
/// methods plus std trait-protocol names. Lock-relevant chains in this
/// workspace (`record`, `request_wait`, `commit`, `prepare`, …) all have
/// distinctive names and stay resolvable.
const GENERIC_METHODS: &[&str] = &[
    "new",
    "default",
    "len",
    "is_empty",
    "clear",
    "clone",
    "fmt",
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "entry",
    "extend",
    "contains",
    "iter",
    "next",
    "sort",
    "to_string",
    "hash",
    "finish",
    "with",
    "eq",
    "cmp",
    "from",
    "into",
    "borrow",
    "deref",
    "index",
];

/// Names of functions *called* on the line (identifier followed by `(`,
/// excluding definitions, keywords, macros, `.lock()` itself,
/// type-qualified constructors like `Event::invoke(…)` — associated
/// functions never participate in the lock chains this pass tracks — and
/// the [`GENERIC_METHODS`] that would resolve to unrelated same-named
/// functions).
fn call_names(line: &str) -> Vec<String> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if !is_ident_byte(bytes[i]) {
            i += 1;
            continue;
        }
        let start = i;
        while i < bytes.len() && is_ident_byte(bytes[i]) {
            i += 1;
        }
        let name = &line[start..i];
        if i < bytes.len() && bytes[i] == b'(' && !name.as_bytes()[0].is_ascii_digit() {
            let is_def = line[..start].trim_end().ends_with("fn");
            if !is_def
                && name != "lock"
                && !KEYWORDS.contains(&name)
                && !GENERIC_METHODS.contains(&name)
                && !type_qualified(bytes, start)
            {
                out.push(name.to_string());
            }
        } else if i < bytes.len() && bytes[i] == b'!' {
            i += 1; // macro: skip the bang so `vec!(` is not a call
        }
    }
    out
}

/// Whether the identifier starting at `start` is preceded by
/// `SomeType::` (an associated-function call, e.g. `Event::invoke(`).
fn type_qualified(bytes: &[u8], start: usize) -> bool {
    if start < 3 || bytes[start - 1] != b':' || bytes[start - 2] != b':' {
        return false;
    }
    let end = start - 2;
    let mut s = end;
    while s > 0 && is_ident_byte(bytes[s - 1]) {
        s -= 1;
    }
    s < end && bytes[s].is_ascii_uppercase()
}

fn adjacency(locks: &BTreeSet<String>, edges: &[AcquisitionEdge]) -> BTreeMap<String, Vec<String>> {
    let mut adj: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for l in locks {
        adj.entry(l.clone()).or_default();
    }
    for e in edges {
        adj.entry(e.held.clone())
            .or_default()
            .push(e.acquired.clone());
    }
    adj
}

/// Tarjan's strongly connected components; returns the components with
/// more than one lock (every such component contains a cycle).
fn find_cycles(locks: &BTreeSet<String>, edges: &[AcquisitionEdge]) -> Vec<Vec<String>> {
    let adj = adjacency(locks, edges);
    let names: Vec<&String> = adj.keys().collect();
    let index_of: BTreeMap<&String, usize> =
        names.iter().enumerate().map(|(i, n)| (*n, i)).collect();
    let n = names.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack = Vec::new();
    let mut next_index = 0usize;
    let mut components = Vec::new();

    // Iterative Tarjan (explicit work stack, resumable frames).
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut work: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some((v, pi)) = work.pop() {
            if pi == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            let succs = &adj[names[v]];
            if pi < succs.len() {
                work.push((v, pi + 1));
                let w = index_of[&succs[pi]];
                if index[w] == usize::MAX {
                    work.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp.push(names[w].clone());
                        if w == v {
                            break;
                        }
                    }
                    if comp.len() > 1 {
                        comp.sort();
                        components.push(comp);
                    }
                }
                if let Some(&(parent, _)) = work.last() {
                    low[parent] = low[parent].min(low[v]);
                }
            }
        }
    }
    components.sort();
    components
}

/// Kahn's algorithm with alphabetical tie-breaking: a deterministic
/// topological order of the locks (callers check `cycles` first).
fn topo_order(locks: &BTreeSet<String>, edges: &[AcquisitionEdge]) -> Vec<String> {
    let adj = adjacency(locks, edges);
    let mut indegree: BTreeMap<String, usize> = adj.keys().map(|k| (k.clone(), 0)).collect();
    for succs in adj.values() {
        for s in succs {
            *indegree.get_mut(s).expect("edge endpoints seeded") += 1;
        }
    }
    let mut ready: BTreeSet<String> = indegree
        .iter()
        .filter(|(_, d)| **d == 0)
        .map(|(k, _)| k.clone())
        .collect();
    let mut out = Vec::new();
    while let Some(next) = ready.iter().next().cloned() {
        ready.remove(&next);
        for s in &adj[&next] {
            let d = indegree.get_mut(s).expect("edge endpoints seeded");
            *d -= 1;
            if *d == 0 {
                ready.insert(s.clone());
            }
        }
        out.push(next);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(label: &str, text: &str) -> SourceFile {
        SourceFile {
            label: label.to_string(),
            text: text.to_string(),
        }
    }

    #[test]
    fn direct_nesting_produces_an_edge() {
        let src = file(
            "engine.rs",
            r#"
            fn step(&self) {
                let g = self.outer.lock();
                self.inner.lock().push(1);
            }
            "#,
        );
        let report = audit_lock_order(&[src]);
        assert!(report.is_clean());
        assert_eq!(report.edges.len(), 1);
        assert_eq!(report.edges[0].held, "engine.outer");
        assert_eq!(report.edges[0].acquired, "engine.inner");
        assert_eq!(report.order, vec!["engine.outer", "engine.inner"]);
    }

    #[test]
    fn opposite_nesting_is_a_cycle() {
        let src = file(
            "engine.rs",
            r#"
            fn ab(&self) {
                let g = self.alpha.lock();
                self.beta.lock().touch();
            }
            fn ba(&self) {
                let g = self.beta.lock();
                self.alpha.lock().touch();
            }
            "#,
        );
        let report = audit_lock_order(&[src]);
        assert!(!report.is_clean());
        assert_eq!(
            report.cycles,
            vec![vec!["engine.alpha".to_string(), "engine.beta".to_string()]]
        );
    }

    #[test]
    fn scope_end_and_drop_release_guards() {
        let src = file(
            "engine.rs",
            r#"
            fn scoped(&self) {
                {
                    let g = self.alpha.lock();
                }
                self.beta.lock().touch();
            }
            fn dropped(&self) {
                let g = self.gamma.lock();
                drop(g);
                self.alpha.lock().touch();
            }
            "#,
        );
        let report = audit_lock_order(&[src]);
        assert!(report.edges.is_empty(), "edges: {:?}", report.edges);
    }

    #[test]
    fn temporaries_do_not_hold() {
        let src = file(
            "engine.rs",
            r#"
            fn peek(&self) -> usize {
                let n = self.alpha.lock().len();
                self.beta.lock().len() + n
            }
            "#,
        );
        let report = audit_lock_order(&[src]);
        assert!(report.edges.is_empty());
    }

    #[test]
    fn calls_are_followed_transitively() {
        let a = file(
            "manager.rs",
            r#"
            fn commit_gateway(&self) {
                let gate = self.commit_gate.lock();
                self.apply_all();
            }
            fn apply_all(&self) {
                self.install();
            }
            "#,
        );
        let b = file(
            "engine.rs",
            r#"
            fn install(&self) {
                let g = self.mu.lock();
            }
            "#,
        );
        let report = audit_lock_order(&[a, b]);
        assert!(report.is_clean());
        assert!(report
            .edges
            .iter()
            .any(|e| e.held == "manager.commit_gate" && e.acquired == "engine.mu"));
    }

    #[test]
    fn shipped_engine_sources_are_cycle_free() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let dirs = [
            root.join("crates/core/src"),
            root.join("crates/core/src/engine"),
            root.join("crates/baselines/src"),
            root.join("crates/sim/src"),
            root.join("crates/dist/src"),
        ];
        let dir_refs: Vec<&Path> = dirs.iter().map(|p| p.as_path()).collect();
        let sources = read_sources(&dir_refs).expect("workspace sources readable");
        assert!(!sources.is_empty());
        let report = audit_lock_order(&sources);
        assert!(
            report.is_clean(),
            "lock-order cycles in shipped sources: {:?}\nedges: {:?}",
            report.cycles,
            report.edges
        );
        // The narrow hybrid commit gate sits above the engine object
        // locks, which in turn sit above the wait graph.
        assert!(!report.edges.is_empty());
    }
}
