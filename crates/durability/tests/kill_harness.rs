//! The kill-based crash harness: SIGKILL a committing child process at
//! hundreds of randomized points and certify what recovery hands back.
//!
//! Each iteration spawns the `crash_child` binary (see its module docs
//! for the workload contract) against a fresh WAL directory, sleeps a
//! pseudo-random slice of the child's commit stream, and kills it with
//! SIGKILL — no atexit, no buffered-writer flush, no mercy. The directory
//! is then reopened and recovery is held to the durability contract:
//!
//! 1. **No lost committed transaction**: every transaction the child
//!    *acknowledged* (it only acks after `commit` — and therefore the log
//!    force — returned) is redone by recovery.
//! 2. **No resurrected loser**: aborted and merely-prepared transactions
//!    never appear in the redone set; in-doubt transactions are reported
//!    for the coordinator, never silently applied.
//! 3. **Exact state**: the recovered frontier equals the oracle fold of
//!    the redone set — no double-applied intention, no missing deposit.
//! 4. **Atomicity**: the history equivalent to what recovery reinstalled
//!    is certified dynamic-atomic by the linear-time certifier from
//!    `atomicity-lint`.
//! 5. **Idempotence**: reopening and recovering a second time yields the
//!    identical log and state.
//!
//! Knobs (environment): `CRASH_KILL_POINTS` (default 200 kill points) and
//! `CRASH_HARNESS_BUDGET_SECS` (default 60; the sweep stops early once
//! the budget is spent, but never before 25 points).

#![cfg(unix)]

use atomicity_core::recovery::{DurableLog, IntentionsStore};
use atomicity_durable::{SyncPolicy, Wal, WalOptions};
use atomicity_lint::certify::certify_dynamic;
use atomicity_spec::specs::BankAccountSpec;
use atomicity_spec::{op, Event, History, ObjectId, SystemSpec, Value};
use std::collections::BTreeSet;
use std::io::Read;
use std::process::{Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// The workload contract, mirrored from `src/bin/crash_child.rs` (both
// sides compute it from the transaction id alone — no side channel).

fn amount(t: u32) -> i64 {
    i64::from(t % 97 + 1)
}

fn is_in_doubt(t: u32) -> bool {
    t % 11 == 5
}

fn is_loser(t: u32) -> bool {
    !is_in_doubt(t) && t % 7 == 3
}

/// splitmix64: deterministic per-kill-point randomness.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Acked transaction ids: complete (newline-terminated) lines only. A
/// SIGKILL can tear the final line mid-write; a torn line is an ack that
/// was never fully issued, so it carries no durability promise.
fn read_acks(path: &std::path::Path) -> BTreeSet<u32> {
    let mut buf = String::new();
    match std::fs::File::open(path) {
        Ok(mut f) => {
            f.read_to_string(&mut buf).expect("read acks");
        }
        Err(_) => return BTreeSet::new(),
    }
    buf.split_inclusive('\n')
        .filter(|line| line.ends_with('\n'))
        .map(|line| line.trim().parse().expect("ack line"))
        .collect()
}

struct KillOutcome {
    acked: usize,
    redone: usize,
    in_doubt: usize,
    torn_bytes: u64,
}

/// One kill point: spawn, kill, recover, certify.
fn kill_once(point: u64) -> KillOutcome {
    let dir = std::env::temp_dir().join(format!("atomicity-kill-{}-{point}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let r = mix(point);
    let mode = if point.is_multiple_of(2) {
        "group"
    } else {
        "sync"
    };
    let window_us = (50 + (r % 4) * 150).to_string(); // 50..500µs windows
    let mut child = Command::new(env!("CARGO_BIN_EXE_crash_child"))
        .arg(&dir)
        .arg(mode)
        .arg(&window_us)
        .arg("4") // committer threads
        .arg("1000000") // per-thread limit: far beyond the kill delay
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn crash_child");

    // Sleep into the commit stream, then SIGKILL. The low end lands
    // during startup / the first commits; the high end lands well into
    // checkpoint territory.
    let delay = Duration::from_micros(500 + mix(r) % 45_000);
    std::thread::sleep(delay);
    child.kill().expect("SIGKILL crash_child");
    child.wait().expect("reap crash_child");

    // --- Recover. ---
    let opts = WalOptions {
        sync: SyncPolicy::SyncEach,
        ..WalOptions::default()
    };
    let (wal, info) = Wal::open(&dir, opts.clone()).expect("recovery open must not fail");
    let store = IntentionsStore::shared(
        BankAccountSpec::new(),
        ObjectId::new(1),
        Arc::new(wal.clone()),
    );
    let outcome = store.recover();
    let redone: BTreeSet<u32> = outcome.redone.iter().map(|t| t.raw()).collect();
    let in_doubt: BTreeSet<u32> = outcome.in_doubt.iter().map(|t| t.raw()).collect();
    let acked = read_acks(&dir.join("acks.log"));

    // 1. No lost committed transaction.
    for &t in &acked {
        assert!(
            redone.contains(&t),
            "point {point} ({mode}, delay {delay:?}): acked txn {t} lost by recovery \
             (redone={redone:?})"
        );
    }
    // 2. No resurrected loser.
    for &t in &redone {
        assert!(
            !is_loser(t) && !is_in_doubt(t),
            "point {point}: recovery redid txn {t}, which never committed"
        );
    }
    for &t in &in_doubt {
        assert!(
            !acked.contains(&t),
            "point {point}: acked txn {t} reported in doubt"
        );
    }
    // 3. Exact state: the oracle fold of the redone set.
    let oracle: i64 = redone.iter().map(|&t| amount(t)).sum();
    assert_eq!(
        store.committed_frontier(),
        vec![oracle],
        "point {point}: recovered balance diverges from oracle"
    );

    // 4. Certify dynamic atomicity of the recovered committed history.
    let x = ObjectId::new(1);
    let mut h = History::new();
    for t in &outcome.redone {
        h.push(Event::invoke(*t, x, op("deposit", [amount(t.raw())])));
        h.push(Event::respond(*t, x, Value::ok()));
        h.push(Event::commit(*t, x));
    }
    let spec = SystemSpec::new().with_object(x, BankAccountSpec::new());
    let cert = certify_dynamic(&h, &spec);
    assert!(
        cert.is_certified(),
        "point {point}: recovered history refused certification: {cert:?}"
    );

    // 5. Idempotent recovery: a second open sees the identical log.
    let records = wal.records();
    drop(store);
    drop(wal);
    let (wal2, info2) = Wal::open(&dir, opts).expect("second open");
    assert_eq!(info2.torn_bytes, 0, "point {point}: tail not repaired");
    assert_eq!(
        wal2.records(),
        records,
        "point {point}: reopen changed the log"
    );
    let store2 = IntentionsStore::shared(BankAccountSpec::new(), x, Arc::new(wal2));
    let outcome2 = store2.recover();
    assert_eq!(outcome2.redone, outcome.redone);
    assert_eq!(store2.committed_frontier(), vec![oracle]);

    let out = KillOutcome {
        acked: acked.len(),
        redone: redone.len(),
        in_doubt: in_doubt.len(),
        torn_bytes: info.torn_bytes,
    };
    let _ = std::fs::remove_dir_all(&dir);
    out
}

#[test]
fn sigkill_sweep_loses_nothing() {
    let points = env_u64("CRASH_KILL_POINTS", 200);
    let budget = Duration::from_secs(env_u64("CRASH_HARNESS_BUDGET_SECS", 60));
    let start = Instant::now();

    let (mut ran, mut acked, mut redone, mut in_doubt, mut torn) = (0u64, 0, 0, 0, 0u64);
    let mut nonempty = 0u64;
    for point in 0..points {
        let o = kill_once(point);
        ran += 1;
        acked += o.acked;
        redone += o.redone;
        in_doubt += o.in_doubt;
        torn += o.torn_bytes;
        if o.redone > 0 {
            nonempty += 1;
        }
        if start.elapsed() > budget && ran >= 25 {
            eprintln!("kill harness: budget spent after {ran}/{points} points");
            break;
        }
    }
    eprintln!(
        "kill harness: {ran} kills, {acked} acks verified, {redone} txns redone, \
         {in_doubt} in doubt, {torn} torn bytes truncated, {:?} elapsed",
        start.elapsed()
    );
    // The sweep must actually have exercised commits, not just killed
    // processes during startup.
    assert!(
        nonempty * 2 >= ran,
        "fewer than half the kill points ({nonempty}/{ran}) caught committed work — \
         kill delays are mistuned"
    );
}

/// A child left entirely alone (no kill) recovers to exactly its final
/// acked set — the harness's own plumbing is sound.
#[test]
fn clean_exit_recovers_every_ack() {
    let dir = std::env::temp_dir().join(format!("atomicity-kill-clean-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let status = Command::new(env!("CARGO_BIN_EXE_crash_child"))
        .arg(&dir)
        .arg("group")
        .arg("200")
        .arg("4")
        .arg("40") // 160 txns total, then clean exit
        .status()
        .expect("run crash_child");
    assert!(status.success());

    let (wal, _) = Wal::open(
        &dir,
        WalOptions {
            sync: SyncPolicy::SyncEach,
            ..WalOptions::default()
        },
    )
    .expect("open");
    let store = IntentionsStore::shared(BankAccountSpec::new(), ObjectId::new(1), Arc::new(wal));
    let outcome = store.recover();
    let redone: BTreeSet<u32> = outcome.redone.iter().map(|t| t.raw()).collect();
    let acked = read_acks(&dir.join("acks.log"));
    assert_eq!(redone, acked, "clean run: redone must equal acked exactly");
    let oracle: i64 = redone.iter().map(|&t| amount(t)).sum();
    assert_eq!(store.committed_frontier(), vec![oracle]);
    let _ = std::fs::remove_dir_all(&dir);
}
