//! Torn-tail recovery, exhaustively: truncate a WAL at **every byte
//! offset** and reopen.
//!
//! A SIGKILL leaves the kernel page cache intact, so the kill harness
//! rarely produces physically torn frames; real tears come from power
//! loss mid-sector. This suite simulates that directly: for a log of
//! randomized records, every possible byte-truncation of the final
//! segment is opened and recovery must (a) never panic, (b) recover
//! exactly a *prefix* of the logical record sequence, and (c) never admit
//! a clipped record — in particular a half-written `Commit` must vanish,
//! not resurrect its transaction.

use atomicity_core::recovery::{DurableLog, LogRecord, RecordKind};
use atomicity_durable::{SyncPolicy, Wal, WalOptions};
use atomicity_spec::{op, ActivityId, ObjectId, Value};
use proptest::prelude::*;
use std::fs;
use std::path::{Path, PathBuf};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("atomicity-torn-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn sync_each() -> WalOptions {
    WalOptions {
        sync: SyncPolicy::SyncEach,
        ..WalOptions::default()
    }
}

/// Builds a log out of a script of (txn, kind-selector, payload) triples,
/// exercising every record kind and value shape the codec supports.
fn script_records(script: &[(u32, u8, i64)]) -> Vec<LogRecord> {
    script
        .iter()
        .map(|&(txn, kind, payload)| {
            let txn = ActivityId::new(txn);
            let object = ObjectId::new(1 + (payload.unsigned_abs() % 3) as u32);
            let kind = match kind % 4 {
                0 => RecordKind::Prepare {
                    ops: vec![(op("adjust", [payload, -payload]), Value::ok())],
                },
                1 => RecordKind::Prepare {
                    ops: vec![
                        (op("member", [payload]), Value::Bool(payload % 2 == 0)),
                        (
                            op("audit", [] as [i64; 0]),
                            Value::Seq(vec![Value::Int(payload), Value::sym("ok"), Value::Nil]),
                        ),
                    ],
                },
                2 => RecordKind::Commit,
                _ => RecordKind::Abort,
            };
            LogRecord { txn, object, kind }
        })
        .collect()
}

/// The segment files of `dir`, sorted by first LSN.
fn segment_paths(dir: &Path) -> Vec<PathBuf> {
    let mut segs: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".seg"))
        })
        .collect();
    segs.sort();
    segs
}

/// Writes `records` into a fresh WAL directory and returns it.
fn build_wal(tag: &str, records: &[LogRecord], segment_bytes: u64) -> PathBuf {
    let dir = tmpdir(tag);
    let (wal, _) = Wal::open(
        &dir,
        WalOptions {
            segment_bytes,
            ..sync_each()
        },
    )
    .unwrap();
    for r in records {
        wal.append(r.clone());
    }
    wal.sync();
    dir
}

/// Core assertion: opening `dir` yields exactly a prefix of `full`, of
/// length ≥ `floor` records.
fn assert_recovers_prefix(dir: &Path, full: &[LogRecord], floor: usize, ctx: &str) -> usize {
    let (wal, info) = Wal::open(dir, sync_each()).unwrap_or_else(|e| panic!("{ctx}: open: {e}"));
    let got = wal.records();
    assert!(
        got.len() <= full.len() && got[..] == full[..got.len()],
        "{ctx}: recovered records are not a prefix (got {} records)",
        got.len()
    );
    assert!(
        got.len() >= floor,
        "{ctx}: lost whole frames before the cut (got {}, floor {floor})",
        got.len()
    );
    // The repair is physical: a second open is clean.
    drop(wal);
    let (wal2, info2) = Wal::open(dir, sync_each()).unwrap();
    assert_eq!(info2.torn_bytes, 0, "{ctx}: tail not truncated on disk");
    assert_eq!(wal2.records(), got, "{ctx}: second open disagrees");
    let _ = info;
    got.len()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Single segment, truncated at every byte offset: recovery always
    /// yields the longest whole-frame prefix and never panics.
    #[test]
    fn every_byte_cut_of_final_segment_recovers_a_prefix(
        script in prop::collection::vec((1..50u32, 0..4u8, -999i64..1000), 4..12)
    ) {
        let full = script_records(&script);
        let master = build_wal("master", &full, u64::MAX);
        let segs = segment_paths(&master);
        prop_assert_eq!(segs.len(), 1);
        let bytes = fs::read(&segs[0]).unwrap();
        let seg_name = segs[0].file_name().unwrap().to_owned();

        let dir = tmpdir("cut");
        for cut in 0..=bytes.len() {
            let _ = fs::remove_dir_all(&dir);
            fs::create_dir_all(&dir).unwrap();
            fs::write(dir.join(&seg_name), &bytes[..cut]).unwrap();
            let recovered = assert_recovers_prefix(&dir, &full, 0, &format!("cut {cut}"));
            // Cutting at the exact end loses nothing.
            if cut == bytes.len() {
                assert_eq!(recovered, full.len());
            }
        }
        let _ = fs::remove_dir_all(&master);
        let _ = fs::remove_dir_all(&dir);
    }

    /// Multi-segment log, final segment truncated at every byte offset:
    /// the closed segments are untouchable — recovery keeps at least
    /// everything below the final segment.
    #[test]
    fn closed_segments_survive_any_tail_cut(
        script in prop::collection::vec((1..50u32, 0..4u8, -999i64..1000), 8..16)
    ) {
        let full = script_records(&script);
        let master = build_wal("mseg", &full, 96); // tiny: several segments
        let segs = segment_paths(&master);
        // 8+ records at ≥17 bytes each against 96-byte segments always
        // rotates at least once.
        prop_assert!(segs.len() >= 2);
        let last = segs.last().unwrap();
        let bytes = fs::read(last).unwrap();
        // Records living in closed segments (= total minus those in the
        // last segment) must always survive.
        let mut in_last = 0;
        let mut off = 0;
        while let atomicity_durable::frame::FrameRead::Record { next, .. } =
            atomicity_durable::frame::read_frame(&bytes, off)
        {
            in_last += 1;
            off = next;
        }
        let floor = full.len() - in_last;

        for cut in 0..=bytes.len() {
            let f = fs::OpenOptions::new().write(true).open(last).unwrap();
            f.set_len(cut as u64).expect("truncate");
            drop(f);
            // Re-write the full tail for the next iteration *after*
            // checking this one.
            assert_recovers_prefix(&master, &full, floor, &format!("multi-seg cut {cut}"));
            fs::write(last, &bytes).unwrap();
        }
        let _ = fs::remove_dir_all(&master);
    }
}

/// A tear in a *non-final* segment (only possible via external
/// corruption) still recovers a clean prefix: the torn segment is
/// truncated and all later segments are dropped.
#[test]
fn tear_in_closed_segment_drops_everything_after() {
    let full = script_records(&[
        (1, 0, 5),
        (2, 2, 1),
        (3, 1, 7),
        (4, 2, 2),
        (5, 3, 9),
        (6, 0, 4),
    ]);
    let dir = build_wal("midtear", &full, 96);
    let segs = segment_paths(&dir);
    assert!(segs.len() >= 2, "need multiple segments");
    // Clip 1 byte off the first segment.
    let len = fs::metadata(&segs[0]).unwrap().len();
    fs::OpenOptions::new()
        .write(true)
        .open(&segs[0])
        .unwrap()
        .set_len(len - 1)
        .unwrap();

    let (wal, info) = Wal::open(&dir, sync_each()).unwrap();
    let got = wal.records();
    assert!(got.len() < full.len());
    assert_eq!(got[..], full[..got.len()], "must still be a prefix");
    assert!(info.segments_dropped >= 1);
    let _ = fs::remove_dir_all(&dir);
}

/// The headline case by hand: a commit whose final bytes are clipped
/// must leave its transaction unresolved, never resurrect it.
#[test]
fn clipped_commit_leaves_txn_in_doubt() {
    use atomicity_core::recovery::IntentionsStore;
    use atomicity_spec::specs::BankAccountSpec;
    use std::sync::Arc;

    let dir = tmpdir("clipcommit");
    {
        let (wal, _) = Wal::open(&dir, sync_each()).unwrap();
        let store = IntentionsStore::new(BankAccountSpec::new(), ObjectId::new(1), wal);
        store.prepare(ActivityId::new(1), vec![(op("deposit", [10]), Value::ok())]);
        store.commit(ActivityId::new(1));
    }
    let seg = &segment_paths(&dir)[0];
    let bytes = fs::read(seg).unwrap();
    for clip in 1..12 {
        // Restore the full segment, then clip: recovery truncates the
        // file physically, so each iteration starts from the original.
        fs::write(seg, &bytes[..bytes.len() - clip]).unwrap();
        let (wal, _) = Wal::open(&dir, sync_each()).unwrap();
        let store =
            IntentionsStore::shared(BankAccountSpec::new(), ObjectId::new(1), Arc::new(wal));
        let outcome = store.recover();
        assert!(
            outcome.redone.is_empty(),
            "clip {clip}: clipped commit was admitted"
        );
        assert_eq!(
            outcome.in_doubt,
            vec![ActivityId::new(1)],
            "clip {clip}: prepare should survive, in doubt"
        );
        assert_eq!(store.committed_frontier(), vec![0]);
    }
    let _ = fs::remove_dir_all(&dir);
}
