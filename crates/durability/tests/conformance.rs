//! The shared `DurableLog` conformance suite.
//!
//! Every log implementation — the simulated in-memory `StableLog` and the
//! on-disk `Wal` under both sync policies — must pass the same behavioral
//! contract, exercised here through one generic suite: LSN monotonicity,
//! append-order preservation, visibility after `sync`, thread-safety of
//! concurrent appenders, and end-to-end intentions-list recovery.

use atomicity_core::recovery::{DurableLog, IntentionsStore, LogRecord, RecordKind, StableLog};
use atomicity_durable::{SyncPolicy, Wal, WalOptions};
use atomicity_spec::specs::BankAccountSpec;
use atomicity_spec::{op, ActivityId, ObjectId, Value};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn rec(txn: u32, kind: RecordKind) -> LogRecord {
    LogRecord {
        txn: ActivityId::new(txn),
        object: ObjectId::new(1),
        kind,
    }
}

fn prepare(txn: u32, amt: i64) -> LogRecord {
    rec(
        txn,
        RecordKind::Prepare {
            ops: vec![(op("deposit", [amt]), Value::ok())],
        },
    )
}

/// The conformance suite. `log` must be empty.
fn conformance_suite(log: Arc<dyn DurableLog>, label: &str) {
    // --- Empty state. ---
    assert!(log.is_empty(), "{label}: new log not empty");
    assert_eq!(log.len(), 0, "{label}");
    assert_eq!(log.records(), Vec::new(), "{label}");
    log.sync(); // sync on empty must not hang

    // --- LSNs are strictly increasing; order is append order. ---
    let written: Vec<LogRecord> = (0..10)
        .flat_map(|i| [prepare(i, i64::from(i) + 1), rec(i, RecordKind::Commit)])
        .collect();
    let mut last_lsn = None;
    for r in &written {
        let lsn = log.append(r.clone());
        if let Some(prev) = last_lsn {
            assert!(
                lsn > prev,
                "{label}: LSN not increasing ({prev} then {lsn})"
            );
        }
        last_lsn = Some(lsn);
    }
    log.sync();
    assert_eq!(log.len(), written.len(), "{label}");
    assert!(!log.is_empty(), "{label}");
    assert_eq!(
        log.records(),
        written,
        "{label}: append order not preserved"
    );

    // --- records() is a stable copy, not a live view. ---
    let snapshot = log.records();
    log.append(rec(99, RecordKind::Abort));
    log.sync();
    assert_eq!(snapshot.len(), written.len(), "{label}: snapshot mutated");
    assert_eq!(log.len(), written.len() + 1, "{label}");

    // --- Concurrent appenders: every record lands exactly once, and the
    // per-thread order is preserved within the interleaving. ---
    let threads = 8;
    let per_thread = 25u32;
    let handles: Vec<_> = (0..threads)
        .map(|tid| {
            let log = Arc::clone(&log);
            std::thread::spawn(move || {
                for n in 0..per_thread {
                    let txn = 1000 + tid * 1000 + n;
                    log.append(prepare(txn, 1));
                    log.sync();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let records = log.records();
    assert_eq!(
        records.len(),
        written.len() + 1 + (threads * per_thread) as usize,
        "{label}: concurrent appends lost or duplicated records"
    );
    for tid in 0..threads {
        let mine: Vec<u32> = records
            .iter()
            .filter(|r| r.txn.raw() >= 1000 + tid * 1000 && r.txn.raw() < 1000 + (tid + 1) * 1000)
            .map(|r| r.txn.raw())
            .collect();
        let expected: Vec<u32> = (0..per_thread).map(|n| 1000 + tid * 1000 + n).collect();
        assert_eq!(mine, expected, "{label}: thread {tid} order scrambled");
    }
}

/// End-to-end: intentions-list recovery behaves identically over any log.
fn recovery_suite(log: Arc<dyn DurableLog>, label: &str) {
    let x = ObjectId::new(1);
    let store = IntentionsStore::shared(BankAccountSpec::new(), x, Arc::clone(&log));
    let (t1, t2, t3) = (ActivityId::new(1), ActivityId::new(2), ActivityId::new(3));
    store.prepare(t1, vec![(op("deposit", [10]), Value::ok())]);
    store.commit(t1);
    store.prepare(t2, vec![(op("deposit", [100]), Value::ok())]);
    store.abort(t2);
    store.prepare(t3, vec![(op("deposit", [7]), Value::ok())]);
    store.crash();
    let outcome = store.recover();
    assert_eq!(outcome.redone, vec![t1], "{label}");
    assert_eq!(outcome.discarded, vec![t2], "{label}");
    assert_eq!(outcome.in_doubt, vec![t3], "{label}");
    assert_eq!(store.committed_frontier(), vec![10], "{label}");
    store.resolve_in_doubt(t3, true);
    assert_eq!(store.committed_frontier(), vec![17], "{label}");
}

struct WalDir(PathBuf);

impl Drop for WalDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn wal(tag: &str, sync: SyncPolicy) -> (Arc<dyn DurableLog>, WalDir) {
    let dir = std::env::temp_dir().join(format!("atomicity-conform-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = WalOptions {
        segment_bytes: 2048, // small enough that the suite crosses segments
        sync,
        ..WalOptions::default()
    };
    let (w, info) = Wal::open(&dir, opts).unwrap();
    assert_eq!(info.records, 0);
    (Arc::new(w), WalDir(dir))
}

#[test]
fn stable_log_conforms() {
    conformance_suite(Arc::new(StableLog::new()), "StableLog");
    recovery_suite(Arc::new(StableLog::new()), "StableLog");
}

#[test]
fn wal_sync_each_conforms() {
    let (log, _guard) = wal("synceach", SyncPolicy::SyncEach);
    conformance_suite(log, "Wal/SyncEach");
    let (log, _guard) = wal("synceach-rec", SyncPolicy::SyncEach);
    recovery_suite(log, "Wal/SyncEach");
}

#[test]
fn wal_group_commit_conforms() {
    let policy = SyncPolicy::GroupCommit {
        window: Duration::from_micros(100),
    };
    let (log, _guard) = wal("group", policy);
    conformance_suite(log, "Wal/GroupCommit");
    let (log, _guard) = wal("group-rec", policy);
    recovery_suite(log, "Wal/GroupCommit");
}

/// The disk logs additionally survive reopen with identical contents —
/// beyond the in-memory contract, but the property E11 and the kill
/// harness rely on.
#[test]
fn wal_reopen_preserves_conformant_history() {
    for (tag, policy) in [
        ("reopen-se", SyncPolicy::SyncEach),
        (
            "reopen-gc",
            SyncPolicy::GroupCommit {
                window: Duration::from_micros(100),
            },
        ),
    ] {
        let (log, guard) = wal(tag, policy);
        conformance_suite(Arc::clone(&log), tag);
        let before = log.records();
        drop(log);
        let (w, info) = Wal::open(
            &guard.0,
            WalOptions {
                sync: SyncPolicy::SyncEach,
                ..WalOptions::default()
            },
        )
        .unwrap();
        assert_eq!(info.records, before.len(), "{tag}");
        assert_eq!(w.records(), before, "{tag}: reopen changed history");
    }
}
