//! The segmented on-disk write-ahead log.
//!
//! # Layout
//!
//! A WAL directory holds:
//!
//! - `wal-<first_lsn>.seg` — append-only segment files of frames
//!   ([`crate::frame`]); `<first_lsn>` (zero-padded, so lexical order is
//!   numeric order) is the LSN of the segment's first record, and a
//!   record's LSN is the segment's first LSN plus its index within the
//!   segment;
//! - `checkpoint.ck` — an optional checkpoint: the folded summary of every
//!   record below its checkpoint LSN, installed atomically by rename.
//!
//! # Invariants
//!
//! 1. **Only the last segment can be torn.** Rotation fsyncs the old
//!    segment (and the directory) *before* the first write to the new one,
//!    so a crash can only lose a suffix of the newest segment. [`Wal::open`]
//!    still scans defensively: a tear in an earlier segment truncates that
//!    segment and discards everything after it, preserving the prefix
//!    property that [`DurableLog::records`] promises.
//! 2. **A checkpoint only summarizes closed, durable segments.**
//!    [`Wal::checkpoint`] rotates first, so every record below the
//!    checkpoint LSN lives in an fsynced segment before the fold is
//!    computed, and the checkpoint is installed (tmp + fsync + rename +
//!    dir fsync) before any segment is deleted. A crash at any point
//!    leaves either the old (checkpoint, segments) pair or the new one —
//!    never a state that drops a record.
//! 3. **Acknowledged means durable.** [`DurableLog::sync`] returns only
//!    once every record appended before the call is on disk — immediately
//!    under [`SyncPolicy::SyncEach`], after the batching flusher's next
//!    fsync under [`SyncPolicy::GroupCommit`].
//!
//! # Errors
//!
//! [`Wal::open`] and [`Wal::checkpoint`] surface `io::Result`. The hot
//! append/sync path implements the infallible [`DurableLog`] interface and
//! treats an I/O error on the log device as unrecoverable: it panics. A
//! real system would fail-stop the replica there too — continuing past a
//! log-write failure is exactly how recovery invariants die.

use crate::frame::{encode_frame, read_frame, FrameRead};
use atomicity_core::recovery::{DurableLog, LogRecord, RecordKind};
use atomicity_core::trace::MetricsRegistry;
use atomicity_spec::{ActivityId, ObjectId};
use parking_lot::{Condvar, Mutex};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

const SEGMENT_PREFIX: &str = "wal-";
const SEGMENT_SUFFIX: &str = ".seg";
const CHECKPOINT_FILE: &str = "checkpoint.ck";
const CHECKPOINT_TMP: &str = "checkpoint.tmp";

/// When and how appended records reach the disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Every append is written and fsynced before it returns. One device
    /// flush per record: the durable baseline, and the mode the
    /// deterministic simulation uses (no background thread).
    SyncEach,
    /// Appends only buffer the record into the OS page cache;
    /// [`DurableLog::sync`] wakes a dedicated flusher thread which waits
    /// `window` for more committers to arrive, then retires the whole
    /// batch with a single fsync. All waiters parked below the durable
    /// LSN are released together.
    GroupCommit {
        /// How long the flusher lingers to let a batch accumulate. Zero
        /// still batches whatever arrived while the previous fsync ran.
        window: Duration,
    },
}

/// Configuration for [`Wal::open`].
#[derive(Debug, Clone)]
pub struct WalOptions {
    /// Rotate to a new segment once the active one exceeds this many
    /// bytes.
    pub segment_bytes: u64,
    /// Flush policy (see [`SyncPolicy`]).
    pub sync: SyncPolicy,
    /// Metrics sink; flush latency and batch sizes are recorded via
    /// [`MetricsRegistry::wal_flush`]. Pass
    /// [`MetricsRegistry::disabled`] for none.
    pub metrics: MetricsRegistry,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            segment_bytes: 4 * 1024 * 1024,
            sync: SyncPolicy::GroupCommit {
                window: Duration::from_micros(200),
            },
            metrics: MetricsRegistry::disabled(),
        }
    }
}

/// What [`Wal::open`] found and repaired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecoveryInfo {
    /// Logical records surviving (checkpoint summary + segment records).
    pub records: usize,
    /// Records contributed by the checkpoint summary.
    pub checkpoint_records: usize,
    /// The checkpoint LSN (0 when no checkpoint exists).
    pub checkpoint_lsn: u64,
    /// Bytes of torn tail truncated from the last readable segment.
    pub torn_bytes: u64,
    /// Segment files scanned.
    pub segments_scanned: usize,
    /// Segment files deleted because they sat beyond a torn segment (only
    /// possible after external corruption; rotation ordering prevents it).
    pub segments_dropped: usize,
}

/// What [`Wal::checkpoint`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointStats {
    /// The new checkpoint LSN: every record below it is summarized.
    pub checkpoint_lsn: u64,
    /// Records in the folded summary.
    pub summary_records: usize,
    /// Logical records the summary replaced.
    pub records_folded: usize,
    /// Closed segment files deleted.
    pub segments_removed: usize,
}

/// Mutable WAL state: the active segment plus the in-memory mirror of the
/// logical record sequence (so [`DurableLog::records`] never re-reads the
/// disk).
#[derive(Debug)]
struct WalState {
    /// Active segment file handle (append position at end).
    file: File,
    /// Path of the active segment (needed for checkpoint bookkeeping).
    seg_path: PathBuf,
    /// Bytes written to the active segment so far.
    seg_bytes: u64,
    /// LSN the next appended record will get.
    next_lsn: u64,
    /// Checkpoint summary records (replaces all records below
    /// `ckpt_lsn`).
    base: Vec<LogRecord>,
    /// Records with LSN ≥ `ckpt_lsn`, in LSN order.
    tail: Vec<LogRecord>,
    /// The checkpoint LSN: `tail[0]` (when present) has this LSN.
    ckpt_lsn: u64,
}

/// Work flags shared with the flusher thread. Owned by an `Arc` of its
/// own (not inside `WalInner`) so the thread can keep waiting on it with
/// only a `Weak` back-reference to the log.
#[derive(Debug, Default)]
struct FlushSignal {
    flags: Mutex<FlushFlags>,
    cond: Condvar,
}

#[derive(Debug, Default)]
struct FlushFlags {
    work: bool,
    shutdown: bool,
}

#[derive(Debug)]
struct WalInner {
    dir: PathBuf,
    segment_bytes: u64,
    sync: SyncPolicy,
    metrics: MetricsRegistry,
    state: Mutex<WalState>,
    /// Highest LSN known durable (exclusive: records with LSN <
    /// `durable_lsn` are on disk). Locked after `state` when both are
    /// held.
    durable: Mutex<u64>,
    durable_cond: Condvar,
    signal: Arc<FlushSignal>,
    flusher: Mutex<Option<std::thread::JoinHandle<()>>>,
}

/// The on-disk segmented write-ahead log. Cloning is cheap and clones
/// share the log, exactly like
/// [`StableLog`](atomicity_core::recovery::StableLog) — pass clones to
/// each [`IntentionsStore`](atomicity_core::recovery::IntentionsStore)
/// multiplexed onto the same directory.
#[derive(Debug, Clone)]
pub struct Wal {
    inner: Arc<WalInner>,
}

fn segment_path(dir: &Path, first_lsn: u64) -> PathBuf {
    dir.join(format!("{SEGMENT_PREFIX}{first_lsn:020}{SEGMENT_SUFFIX}"))
}

fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix(SEGMENT_PREFIX)?
        .strip_suffix(SEGMENT_SUFFIX)?
        .parse()
        .ok()
}

/// Fsyncs the directory itself so renames/creations/deletions within it
/// are durable (a no-op on platforms where directories cannot be synced).
fn sync_dir(dir: &Path) -> io::Result<()> {
    match File::open(dir) {
        Ok(d) => d.sync_all(),
        Err(_) => Ok(()),
    }
}

impl Wal {
    /// Opens (or creates) the log in `dir`, recovering from whatever a
    /// previous process — cleanly exited or SIGKILLed mid-write — left
    /// behind: loads the checkpoint summary if present, scans the
    /// segments in LSN order, truncates a torn tail back to the last
    /// whole frame, and rebuilds the in-memory mirror.
    pub fn open(dir: impl AsRef<Path>, opts: WalOptions) -> io::Result<(Wal, WalRecoveryInfo)> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;

        // Leftover temporary checkpoint from a crash mid-install: the
        // rename never happened, so it is garbage.
        let _ = fs::remove_file(dir.join(CHECKPOINT_TMP));

        let (base, ckpt_lsn) = match load_checkpoint(&dir.join(CHECKPOINT_FILE))? {
            Some((records, lsn)) => (records, lsn),
            None => (Vec::new(), 0),
        };

        // Collect and sort the segment files.
        let mut segments: Vec<u64> = Vec::new();
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            if let Some(first_lsn) = entry.file_name().to_str().and_then(parse_segment_name) {
                segments.push(first_lsn);
            }
        }
        segments.sort_unstable();

        let mut info = WalRecoveryInfo {
            records: base.len(),
            checkpoint_records: base.len(),
            checkpoint_lsn: ckpt_lsn,
            torn_bytes: 0,
            segments_scanned: segments.len(),
            segments_dropped: 0,
        };

        let mut tail: Vec<LogRecord> = Vec::new();
        let mut next_lsn = ckpt_lsn;
        let mut active: Option<(PathBuf, u64)> = None; // (path, byte size)
        let mut torn_at: Option<usize> = None;

        for (i, &first_lsn) in segments.iter().enumerate() {
            let path = segment_path(&dir, first_lsn);
            if torn_at.is_some() {
                // Prefix semantics: nothing after a tear is reachable.
                fs::remove_file(&path)?;
                info.segments_dropped += 1;
                continue;
            }
            let mut buf = Vec::new();
            File::open(&path)?.read_to_end(&mut buf)?;
            let mut offset = 0;
            let mut lsn = first_lsn;
            loop {
                match read_frame(&buf, offset) {
                    FrameRead::Record { record, next } => {
                        if lsn >= ckpt_lsn {
                            tail.push(record);
                        }
                        lsn += 1;
                        offset = next;
                    }
                    FrameRead::End => break,
                    FrameRead::Torn(_) => {
                        info.torn_bytes += (buf.len() - offset) as u64;
                        let f = OpenOptions::new().write(true).open(&path)?;
                        f.set_len(offset as u64)?;
                        f.sync_all()?;
                        torn_at = Some(i);
                        break;
                    }
                }
            }
            next_lsn = lsn;
            active = Some((path, offset as u64));
        }
        if info.segments_dropped > 0 {
            sync_dir(&dir)?;
        }

        // Open (or create) the active segment for appending.
        let (seg_path, seg_bytes) = match active {
            Some(a) => a,
            None => (segment_path(&dir, next_lsn), 0),
        };
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&seg_path)?;
        sync_dir(&dir)?;

        info.records = base.len() + tail.len();

        let inner = Arc::new(WalInner {
            dir,
            segment_bytes: opts.segment_bytes.max(1),
            sync: opts.sync,
            metrics: opts.metrics,
            state: Mutex::new(WalState {
                file,
                seg_path,
                seg_bytes,
                next_lsn,
                base,
                tail,
                ckpt_lsn,
            }),
            // Everything recovered is on disk by definition.
            durable: Mutex::new(next_lsn),
            durable_cond: Condvar::new(),
            signal: Arc::new(FlushSignal::default()),
            flusher: Mutex::new(None),
        });

        if let SyncPolicy::GroupCommit { window } = opts.sync {
            let weak = Arc::downgrade(&inner);
            let signal = Arc::clone(&inner.signal);
            let handle = std::thread::Builder::new()
                .name("wal-flusher".into())
                .spawn(move || flusher_loop(weak, signal, window))
                .expect("spawn wal flusher thread");
            *inner.flusher.lock() = Some(handle);
        }

        Ok((Wal { inner }, info))
    }

    /// The directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.inner.dir
    }

    /// The LSN the next append will receive. Unlike
    /// [`DurableLog::len`], this counts checkpoint-folded records at
    /// their pre-fold cardinality: it is the raw disk sequence number.
    pub fn next_lsn(&self) -> u64 {
        self.inner.state.lock().next_lsn
    }

    /// Highest exclusive LSN known to be on disk.
    pub fn durable_lsn(&self) -> u64 {
        *self.inner.durable.lock()
    }

    /// Takes a fuzzy checkpoint: rotates the active segment, folds every
    /// logical record below the rotation point into a compact summary
    /// (committed transactions keep their staged intentions; aborted
    /// transactions keep only their outcome; in-flight prepares are
    /// carried over verbatim), installs the summary atomically, and
    /// deletes the closed segments it now covers.
    ///
    /// Concurrent appends are blocked only for the duration of the fold
    /// and file shuffle ("fuzzy" here means transactions may be mid-flight
    /// — their prepares are preserved — not that the lock is free).
    pub fn checkpoint(&self) -> io::Result<CheckpointStats> {
        let inner = &*self.inner;
        let mut st = inner.state.lock();

        // 1. Close the active segment: everything below next_lsn becomes
        // durable, closed history.
        st.file.sync_data()?;
        let ckpt_lsn = st.next_lsn;
        let old_seg = st.seg_path.clone();
        let new_seg = segment_path(&inner.dir, ckpt_lsn);
        // Rotation to a same-named path means the old segment is empty
        // (freshly opened, no records): nothing to do, reuse it.
        let rotated = new_seg != old_seg;
        if rotated {
            st.file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(&new_seg)?;
            st.seg_path = new_seg;
            st.seg_bytes = 0;
            sync_dir(&inner.dir)?;
        }
        {
            let mut durable = inner.durable.lock();
            if ckpt_lsn > *durable {
                *durable = ckpt_lsn;
                inner.durable_cond.notify_all();
            }
        }

        // 2. Fold the full logical history into the new summary.
        let records_folded = st.base.len() + st.tail.len();
        let summary = fold_records(st.base.iter().chain(st.tail.iter()));

        // 3. Install atomically: tmp → fsync → rename → dir fsync.
        let tmp = inner.dir.join(CHECKPOINT_TMP);
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&ckpt_lsn.to_le_bytes())?;
            for r in &summary {
                f.write_all(&encode_frame(r))?;
            }
            f.sync_all()?;
        }
        fs::rename(&tmp, inner.dir.join(CHECKPOINT_FILE))?;
        sync_dir(&inner.dir)?;

        // 4. Delete the closed segments the checkpoint now covers.
        let mut segments_removed = 0;
        for entry in fs::read_dir(&inner.dir)? {
            let entry = entry?;
            if let Some(first_lsn) = entry.file_name().to_str().and_then(parse_segment_name) {
                if first_lsn < ckpt_lsn && entry.path() != st.seg_path {
                    fs::remove_file(entry.path())?;
                    segments_removed += 1;
                }
            }
        }
        if segments_removed > 0 {
            sync_dir(&inner.dir)?;
        }

        // 5. Swap the mirror.
        let stats = CheckpointStats {
            checkpoint_lsn: ckpt_lsn,
            summary_records: summary.len(),
            records_folded,
            segments_removed,
        };
        st.base = summary;
        st.tail.clear();
        st.ckpt_lsn = ckpt_lsn;
        Ok(stats)
    }
}

impl DurableLog for Wal {
    fn append(&self, record: LogRecord) -> u64 {
        let inner = &*self.inner;
        let frame = encode_frame(&record);
        let mut st = inner.state.lock();

        // Rotate when the active segment is full (never leaving it
        // empty): fsync the old segment before the new one takes writes,
        // preserving the only-the-last-segment-tears invariant.
        if st.seg_bytes > 0 && st.seg_bytes + frame.len() as u64 > inner.segment_bytes {
            st.file
                .sync_data()
                .expect("wal: fsync segment for rotation");
            let path = segment_path(&inner.dir, st.next_lsn);
            st.file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .expect("wal: open new segment");
            st.seg_path = path;
            st.seg_bytes = 0;
            sync_dir(&inner.dir).expect("wal: fsync directory after rotation");
            let mut durable = inner.durable.lock();
            if st.next_lsn > *durable {
                *durable = st.next_lsn;
                inner.durable_cond.notify_all();
            }
        }

        st.file.write_all(&frame).expect("wal: append frame");
        st.seg_bytes += frame.len() as u64;
        let lsn = st.next_lsn;
        st.next_lsn += 1;
        st.tail.push(record);

        if inner.sync == SyncPolicy::SyncEach {
            let t0 = Instant::now();
            st.file.sync_data().expect("wal: fsync record");
            inner
                .metrics
                .wal_flush(1, t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
            let mut durable = inner.durable.lock();
            if st.next_lsn > *durable {
                *durable = st.next_lsn;
                inner.durable_cond.notify_all();
            }
        }
        lsn
    }

    fn sync(&self) {
        let inner = &*self.inner;
        let target = inner.state.lock().next_lsn;
        if *inner.durable.lock() >= target {
            return;
        }
        match inner.sync {
            SyncPolicy::SyncEach => {
                // Appends sync eagerly; nothing outstanding can remain.
            }
            SyncPolicy::GroupCommit { .. } => {
                {
                    let mut flags = inner.signal.flags.lock();
                    flags.work = true;
                    inner.signal.cond.notify_all();
                }
                let mut durable = inner.durable.lock();
                while *durable < target {
                    inner.durable_cond.wait(&mut durable);
                }
            }
        }
    }

    fn records(&self) -> Vec<LogRecord> {
        let st = self.inner.state.lock();
        let mut out = Vec::with_capacity(st.base.len() + st.tail.len());
        out.extend_from_slice(&st.base);
        out.extend_from_slice(&st.tail);
        out
    }

    fn records_from(&self, from: usize) -> Vec<LogRecord> {
        let st = self.inner.state.lock();
        let total = st.base.len() + st.tail.len();
        if from >= total {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(total - from);
        if from < st.base.len() {
            out.extend_from_slice(&st.base[from..]);
            out.extend_from_slice(&st.tail);
        } else {
            out.extend_from_slice(&st.tail[from - st.base.len()..]);
        }
        out
    }

    fn len(&self) -> usize {
        let st = self.inner.state.lock();
        st.base.len() + st.tail.len()
    }
}

impl Drop for WalInner {
    fn drop(&mut self) {
        {
            let mut flags = self.signal.flags.lock();
            flags.shutdown = true;
            self.signal.cond.notify_all();
        }
        if let Some(handle) = self.flusher.get_mut().take() {
            let _ = handle.join();
        }
        // Closing flush so a clean drop never leaves buffered records
        // (callers relying on durability must still sync() — this is
        // best-effort tidiness, not the contract).
        let _ = self.state.get_mut().file.sync_data();
    }
}

/// The group-commit flusher. Holds only a `Weak` to the log (so dropping
/// the last `Wal` handle shuts it down) plus the strongly-held signal.
fn flusher_loop(weak: Weak<WalInner>, signal: Arc<FlushSignal>, window: Duration) {
    loop {
        {
            let mut flags = signal.flags.lock();
            while !flags.work && !flags.shutdown {
                signal.cond.wait(&mut flags);
            }
            if flags.shutdown {
                return;
            }
            flags.work = false;
        }
        // Linger so concurrent committers can join the batch.
        if !window.is_zero() {
            std::thread::sleep(window);
        }
        let Some(inner) = weak.upgrade() else { return };
        let (target, file) = {
            let st = inner.state.lock();
            (st.next_lsn, st.file.try_clone())
        };
        let file = file.expect("wal: clone segment handle for flush");
        let t0 = Instant::now();
        file.sync_data().expect("wal: group-commit fsync");
        let flush_ns = t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        let mut durable = inner.durable.lock();
        if target > *durable {
            inner.metrics.wal_flush(target - *durable, flush_ns);
            *durable = target;
            inner.durable_cond.notify_all();
        } else {
            inner.metrics.wal_flush(0, flush_ns);
        }
        inner.durable_cond.notify_all();
    }
}

/// Loads `checkpoint.ck`: `[ckpt_lsn: u64 LE]` followed by record frames.
/// The file is only ever installed by atomic rename, so a readable file
/// is complete; a torn frame inside one means external corruption and is
/// reported as `InvalidData`.
fn load_checkpoint(path: &Path) -> io::Result<Option<(Vec<LogRecord>, u64)>> {
    let mut buf = Vec::new();
    match File::open(path) {
        Ok(mut f) => f.read_to_end(&mut buf).map(|_| ())?,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    }
    if buf.len() < 8 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "checkpoint shorter than its header",
        ));
    }
    let ckpt_lsn = u64::from_le_bytes(buf[..8].try_into().unwrap());
    let mut records = Vec::new();
    let mut offset = 8;
    loop {
        match read_frame(&buf, offset) {
            FrameRead::Record { record, next } => {
                records.push(record);
                offset = next;
            }
            FrameRead::End => break,
            FrameRead::Torn(why) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("corrupt checkpoint: {why}"),
                ));
            }
        }
    }
    Ok(Some((records, ckpt_lsn)))
}

/// Folds a logical record sequence into its compact summary, preserving
/// everything intentions-list recovery can still observe:
///
/// - a transaction with a durable outcome keeps, in original
///   outcome-record order: its latest staged intentions plus the `Commit`
///   (so redo still works), or just the `Abort` (its intentions are dead
///   weight — this is where compaction wins);
/// - a prepared transaction with no outcome (in-doubt) keeps its latest
///   `Prepare`, emitted after all decided transactions.
fn fold_records<'a>(records: impl Iterator<Item = &'a LogRecord>) -> Vec<LogRecord> {
    type Key = (ActivityId, ObjectId);
    struct Entry {
        ops: Option<Vec<atomicity_spec::OpResult>>,
        outcome: Option<bool>,
        /// Footprint of a dependency-logged commit, preserved through the
        /// fold so a checkpointed log stays parallel-recoverable.
        footprint: Option<atomicity_core::recovery::KeyFootprint>,
    }
    let mut by_key: Vec<(Key, Entry)> = Vec::new();
    let mut decided: Vec<Key> = Vec::new(); // in outcome order
    let mut prepared: Vec<Key> = Vec::new(); // in first-prepare order

    for r in records {
        let key = (r.txn, r.object);
        let idx = match by_key.iter().position(|(k, _)| *k == key) {
            Some(i) => i,
            None => {
                by_key.push((
                    key,
                    Entry {
                        ops: None,
                        outcome: None,
                        footprint: None,
                    },
                ));
                by_key.len() - 1
            }
        };
        match &r.kind {
            RecordKind::Prepare { ops } => {
                by_key[idx].1.ops = Some(ops.clone());
                if by_key[idx].1.outcome.is_none() && !prepared.contains(&key) {
                    prepared.push(key);
                }
            }
            RecordKind::Commit | RecordKind::CommitDep { .. } | RecordKind::Abort => {
                if by_key[idx].1.outcome.is_none() {
                    by_key[idx].1.outcome = Some(r.kind.is_commit());
                    if let RecordKind::CommitDep { footprint } = &r.kind {
                        by_key[idx].1.footprint = Some(footprint.clone());
                    }
                    decided.push(key);
                    prepared.retain(|k| *k != key);
                }
            }
        }
    }

    let mut out = Vec::new();
    for key in decided {
        let idx = by_key.iter().position(|(k, _)| *k == key).unwrap();
        let entry = &mut by_key[idx].1;
        let (txn, object) = key;
        match entry.outcome {
            Some(true) => {
                if let Some(ops) = entry.ops.take() {
                    out.push(LogRecord {
                        txn,
                        object,
                        kind: RecordKind::Prepare { ops },
                    });
                }
                out.push(LogRecord {
                    txn,
                    object,
                    kind: match entry.footprint.take() {
                        Some(footprint) => RecordKind::CommitDep { footprint },
                        None => RecordKind::Commit,
                    },
                });
            }
            Some(false) => out.push(LogRecord {
                txn,
                object,
                kind: RecordKind::Abort,
            }),
            None => unreachable!("decided key has an outcome"),
        }
    }
    for key in prepared {
        let idx = by_key.iter().position(|(k, _)| *k == key).unwrap();
        if let Some(ops) = by_key[idx].1.ops.take() {
            let (txn, object) = key;
            out.push(LogRecord {
                txn,
                object,
                kind: RecordKind::Prepare { ops },
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomicity_spec::{op, Value};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("atomicity-wal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn rec(txn: u32, kind: RecordKind) -> LogRecord {
        LogRecord {
            txn: ActivityId::new(txn),
            object: ObjectId::new(1),
            kind,
        }
    }

    fn prepare(txn: u32) -> LogRecord {
        rec(
            txn,
            RecordKind::Prepare {
                ops: vec![(op("deposit", [i64::from(txn)]), Value::ok())],
            },
        )
    }

    fn sync_each_opts() -> WalOptions {
        WalOptions {
            sync: SyncPolicy::SyncEach,
            ..WalOptions::default()
        }
    }

    #[test]
    fn append_survives_reopen() {
        let dir = tmpdir("reopen");
        let expected = vec![prepare(1), rec(1, RecordKind::Commit)];
        {
            let (wal, info) = Wal::open(&dir, sync_each_opts()).unwrap();
            assert_eq!(info.records, 0);
            for r in &expected {
                wal.append(r.clone());
            }
            wal.sync();
        }
        let (wal, info) = Wal::open(&dir, sync_each_opts()).unwrap();
        assert_eq!(info.records, 2);
        assert_eq!(info.torn_bytes, 0);
        assert_eq!(wal.records(), expected);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_spreads_records_over_segments() {
        let dir = tmpdir("rotate");
        let opts = WalOptions {
            segment_bytes: 64, // tiny: force rotation every record or two
            ..sync_each_opts()
        };
        let n = 20;
        {
            let (wal, _) = Wal::open(&dir, opts.clone()).unwrap();
            for i in 0..n {
                wal.append(prepare(i));
            }
            wal.sync();
        }
        let segs = fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                parse_segment_name(e.as_ref().unwrap().file_name().to_str().unwrap()).is_some()
            })
            .count();
        assert!(segs > 1, "expected multiple segments, got {segs}");
        let (wal, info) = Wal::open(&dir, opts).unwrap();
        assert_eq!(info.records, n as usize);
        assert_eq!(wal.len(), n as usize);
        assert_eq!(wal.next_lsn(), u64::from(n));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = tmpdir("torn");
        {
            let (wal, _) = Wal::open(&dir, sync_each_opts()).unwrap();
            wal.append(prepare(1));
            wal.append(rec(1, RecordKind::Commit));
            wal.sync();
        }
        // Clip the last 3 bytes of the (only) segment: a torn commit.
        let seg = segment_path(&dir, 0);
        let len = fs::metadata(&seg).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&seg)
            .unwrap()
            .set_len(len - 3)
            .unwrap();

        let (wal, info) = Wal::open(&dir, sync_each_opts()).unwrap();
        assert_eq!(info.records, 1, "clipped commit must be discarded");
        assert!(info.torn_bytes > 0);
        assert_eq!(wal.records(), vec![prepare(1)]);
        // The tear is repaired: appends resume at LSN 1 and a reopen is
        // clean.
        wal.append(rec(1, RecordKind::Abort));
        wal.sync();
        drop(wal);
        let (_, info) = Wal::open(&dir, sync_each_opts()).unwrap();
        assert_eq!(info.records, 2);
        assert_eq!(info.torn_bytes, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_releases_all_waiters() {
        let dir = tmpdir("group");
        let opts = WalOptions {
            sync: SyncPolicy::GroupCommit {
                window: Duration::from_micros(100),
            },
            ..WalOptions::default()
        };
        let (wal, _) = Wal::open(&dir, opts).unwrap();
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let wal = wal.clone();
                std::thread::spawn(move || {
                    for j in 0..10 {
                        let txn = i * 100 + j;
                        wal.append(prepare(txn));
                        wal.append(rec(txn, RecordKind::Commit));
                        wal.sync();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(wal.len(), 160);
        assert_eq!(wal.durable_lsn(), 160);
        drop(wal);
        let (wal, info) = Wal::open(&dir, sync_each_opts()).unwrap();
        assert_eq!(info.records, 160);
        assert_eq!(wal.len(), 160);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_compacts_and_survives_reopen() {
        let dir = tmpdir("ckpt");
        let opts = WalOptions {
            segment_bytes: 64,
            ..sync_each_opts()
        };
        let (wal, _) = Wal::open(&dir, opts.clone()).unwrap();
        // t1 commits, t2 aborts, t3 stays in doubt.
        wal.append(prepare(1));
        wal.append(rec(1, RecordKind::Commit));
        wal.append(prepare(2));
        wal.append(rec(2, RecordKind::Abort));
        wal.append(prepare(3));
        wal.sync();

        let stats = wal.checkpoint().unwrap();
        assert_eq!(stats.records_folded, 5);
        // t1: Prepare+Commit, t2: Abort only, t3: Prepare.
        assert_eq!(stats.summary_records, 4);
        assert!(stats.segments_removed > 0);
        assert_eq!(stats.checkpoint_lsn, 5);

        // Post-checkpoint appends land after the summary.
        wal.append(rec(3, RecordKind::Commit));
        wal.sync();
        let records = wal.records();
        assert_eq!(records.len(), 5);
        drop(wal);

        let (wal, info) = Wal::open(&dir, opts).unwrap();
        assert_eq!(info.checkpoint_lsn, 5);
        assert_eq!(info.checkpoint_records, 4);
        assert_eq!(info.records, 5);
        assert_eq!(wal.records(), records);
        // The logical content still drives recovery correctly: t2's ops
        // are gone but its abort outcome survives.
        assert!(wal
            .records()
            .iter()
            .any(|r| r.txn == ActivityId::new(2) && matches!(r.kind, RecordKind::Abort)));
        assert!(!wal
            .records()
            .iter()
            .any(|r| r.txn == ActivityId::new(2) && matches!(r.kind, RecordKind::Prepare { .. })));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn repeated_checkpoints_keep_folding() {
        let dir = tmpdir("ckpt2");
        let (wal, _) = Wal::open(&dir, sync_each_opts()).unwrap();
        for i in 0..10 {
            wal.append(prepare(i));
            wal.append(rec(i, RecordKind::Commit));
            if i % 3 == 2 {
                wal.checkpoint().unwrap();
            }
        }
        wal.sync();
        let logical = wal.records();
        drop(wal);
        let (wal, _) = Wal::open(&dir, sync_each_opts()).unwrap();
        assert_eq!(wal.records(), logical);
        // Every committed txn still has prepare + commit visible.
        for i in 0..10 {
            let t = ActivityId::new(i);
            assert!(logical
                .iter()
                .any(|r| r.txn == t && matches!(r.kind, RecordKind::Prepare { .. })));
            assert!(logical
                .iter()
                .any(|r| r.txn == t && matches!(r.kind, RecordKind::Commit)));
        }
        drop(wal);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fold_preserves_commit_order() {
        let records = [
            prepare(1),
            prepare(2),
            rec(2, RecordKind::Commit),
            rec(1, RecordKind::Commit),
        ];
        let folded = fold_records(records.iter());
        // Commit order (2 before 1) must survive the fold: redo replays
        // in commit-record order.
        let commits: Vec<u32> = folded
            .iter()
            .filter(|r| matches!(r.kind, RecordKind::Commit))
            .map(|r| r.txn.raw())
            .collect();
        assert_eq!(commits, vec![2, 1]);
    }

    #[test]
    fn metrics_observe_flushes() {
        let dir = tmpdir("metrics");
        let metrics = MetricsRegistry::new();
        let opts = WalOptions {
            sync: SyncPolicy::SyncEach,
            metrics: metrics.clone(),
            ..WalOptions::default()
        };
        let (wal, _) = Wal::open(&dir, opts).unwrap();
        wal.append(prepare(1));
        wal.append(rec(1, RecordKind::Commit));
        wal.sync();
        let snap = metrics.snapshot();
        assert_eq!(snap.wal_flush_ns.count, 2);
        assert_eq!(snap.wal_batch.sum_nanos, 2); // one record per flush
        drop(wal);
        fs::remove_dir_all(&dir).unwrap();
    }
}
