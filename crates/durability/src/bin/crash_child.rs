//! The victim process of the kill-based crash harness.
//!
//! `tests/kill_harness.rs` spawns this binary, lets it commit
//! transactions against an on-disk WAL for a randomized slice of time,
//! and SIGKILLs it mid-flight — then reopens the directory and checks
//! that recovery kept every acknowledged commit and no loser.
//!
//! # Invocation
//!
//! ```text
//! crash_child <dir> <mode> <window_us> <threads> <txn_limit>
//! ```
//!
//! - `dir` — WAL directory (created if needed); the acknowledgement file
//!   `acks.log` is written next to the segments.
//! - `mode` — `group` ([`SyncPolicy::GroupCommit`]) or `sync`
//!   ([`SyncPolicy::SyncEach`]).
//! - `window_us` — group-commit window in microseconds (ignored for
//!   `sync`).
//! - `threads` — concurrent committer threads.
//! - `txn_limit` — stop after this many transactions per thread (the
//!   harness passes a number far beyond what the kill delay allows, so
//!   death always lands mid-stream).
//!
//! # The workload contract (shared with the harness)
//!
//! Thread `i` runs transactions `t = i, i+threads, i+2·threads, …`, all
//! against one bank account (object 1). Everything is a pure function of
//! the transaction id, so the harness can recompute the oracle without a
//! side channel:
//!
//! - `t % 11 == 5` — prepare only, walk away (an in-doubt transaction for
//!   recovery to report);
//! - `t % 7 == 3` — prepare then abort (a loser whose effects must never
//!   surface);
//! - otherwise — prepare `deposit(amount(t))` with
//!   `amount(t) = t % 97 + 1`, commit, and only after the commit (and
//!   therefore the log force) returns, append `t` to `acks.log`. An acked
//!   transaction is one whose durability was promised.
//!
//! Thread 0 additionally takes a fuzzy checkpoint every 64 of its own
//! transactions, so SIGKILL also lands inside checkpoint installation and
//! segment truncation, not just inside appends.

use atomicity_core::recovery::IntentionsStore;
use atomicity_durable::{SyncPolicy, Wal, WalOptions};
use atomicity_spec::specs::BankAccountSpec;
use atomicity_spec::{op, ActivityId, ObjectId, Value};
use parking_lot::Mutex;
use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

/// The deterministic deposit amount of transaction `t`.
pub fn amount(t: u32) -> i64 {
    i64::from(t % 97 + 1)
}

/// Whether `t` is left in doubt (prepared, no outcome).
pub fn is_in_doubt(t: u32) -> bool {
    t % 11 == 5
}

/// Whether `t` is aborted.
pub fn is_loser(t: u32) -> bool {
    !is_in_doubt(t) && t % 7 == 3
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() != 6 {
        eprintln!("usage: crash_child <dir> <group|sync> <window_us> <threads> <txn_limit>");
        std::process::exit(2);
    }
    let dir = std::path::PathBuf::from(&args[1]);
    let sync = match args[2].as_str() {
        "group" => SyncPolicy::GroupCommit {
            window: Duration::from_micros(args[3].parse().expect("window_us")),
        },
        "sync" => SyncPolicy::SyncEach,
        other => {
            eprintln!("unknown mode {other:?}");
            std::process::exit(2);
        }
    };
    let threads: u32 = args[4].parse().expect("threads");
    let txn_limit: u32 = args[5].parse().expect("txn_limit");

    let opts = WalOptions {
        // Small segments so kills also land around rotation boundaries.
        segment_bytes: 16 * 1024,
        sync,
        ..WalOptions::default()
    };
    let (wal, _info) = Wal::open(&dir, opts).expect("open wal");
    let store = Arc::new(IntentionsStore::new(
        BankAccountSpec::new(),
        ObjectId::new(1),
        wal.clone(),
    ));
    let acks = Arc::new(Mutex::new(
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join("acks.log"))
            .expect("open acks.log"),
    ));

    let workers: Vec<_> = (0..threads)
        .map(|tid| {
            let store = Arc::clone(&store);
            let acks = Arc::clone(&acks);
            let wal = wal.clone();
            std::thread::spawn(move || {
                for n in 0..txn_limit {
                    let t = tid + n * threads;
                    let txn = ActivityId::new(t);
                    store.prepare(txn, vec![(op("deposit", [amount(t)]), Value::ok())]);
                    if is_in_doubt(t) {
                        continue;
                    }
                    if is_loser(t) {
                        store.abort(txn);
                        continue;
                    }
                    store.commit(txn);
                    // The commit record is forced: promise durability.
                    let mut f = acks.lock();
                    writeln!(f, "{t}").expect("append ack");
                    f.flush().expect("flush ack");
                    drop(f);
                    if tid == 0 && n % 64 == 63 {
                        wal.checkpoint().expect("checkpoint");
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker");
    }
}
