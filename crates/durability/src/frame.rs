//! The on-disk frame format: length + CRC32 + hand-rolled binary payload.
//!
//! Every record in a WAL segment is one *frame*:
//!
//! ```text
//! ┌────────────┬────────────┬──────────────────────┐
//! │ len: u32LE │ crc: u32LE │ payload (len bytes)  │
//! └────────────┴────────────┴──────────────────────┘
//! ```
//!
//! `crc` is the IEEE CRC-32 of the payload bytes. The payload is a
//! self-delimiting binary encoding of [`LogRecord`] (tags + fixed-width
//! little-endian integers + length-prefixed strings); no reflection, no
//! text formats, no allocation surprises on the append path.
//!
//! The format is what makes **torn-tail detection** possible: a crash can
//! leave a partial frame (or a frame whose payload was only partially
//! written) at the end of the last segment. On open, the scanner walks
//! frames until the first one that is short, oversized, fails its CRC, or
//! fails to decode — everything from that offset on is discarded and the
//! file is truncated back to the last whole frame
//! ([`crate::wal::Wal::open`]). Because appends are strictly sequential
//! and segments are fsynced before rotation, a torn frame can only be the
//! result of losing a *suffix* — so truncation recovers exactly a prefix
//! of the appended record sequence, which is what intentions-list
//! recovery requires of a [`atomicity_core::recovery::DurableLog`].

use atomicity_core::recovery::{KeyFootprint, LogRecord, RecordKind};
use atomicity_spec::{ActivityId, ObjectId, OpResult, Operation, Value};

/// Frame header size: u32 length + u32 CRC.
pub const FRAME_HEADER_BYTES: usize = 8;

/// Upper bound on a sane payload; anything larger is treated as
/// corruption (a torn length field can decode to garbage like 0xFFFF_FFFF
/// and must not trigger a multi-gigabyte read).
pub const MAX_PAYLOAD_BYTES: usize = 16 * 1024 * 1024;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table-driven.

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = crc32_table();

/// IEEE CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Payload encoding

const KIND_PREPARE: u8 = 0;
const KIND_COMMIT: u8 = 1;
const KIND_ABORT: u8 = 2;
/// Dependency-logged commit: the commit body carries the transaction's
/// read/write key footprint. Tags 0–2 keep their meaning, so logs written
/// before dependency logging existed still decode.
const KIND_COMMIT_DEP: u8 = 3;

/// Bit flags of a footprint's unkeyed wildcards (byte after the tag).
const FOOTPRINT_UNKEYED_READS: u8 = 0b01;
const FOOTPRINT_UNKEYED_WRITES: u8 = 0b10;

const VALUE_UNIT: u8 = 0;
const VALUE_NIL: u8 = 1;
const VALUE_BOOL: u8 = 2;
const VALUE_INT: u8 = 3;
const VALUE_SYM: u8 = 4;
const VALUE_SEQ: u8 = 5;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Unit => out.push(VALUE_UNIT),
        Value::Nil => out.push(VALUE_NIL),
        Value::Bool(b) => {
            out.push(VALUE_BOOL);
            out.push(u8::from(*b));
        }
        Value::Int(i) => {
            out.push(VALUE_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Sym(s) => {
            out.push(VALUE_SYM);
            put_bytes(out, s.as_bytes());
        }
        Value::Seq(vs) => {
            out.push(VALUE_SEQ);
            put_u32(out, vs.len() as u32);
            for v in vs {
                put_value(out, v);
            }
        }
    }
}

fn put_op_result(out: &mut Vec<u8>, (op, result): &OpResult) {
    put_bytes(out, op.name().as_bytes());
    put_u32(out, op.args().len() as u32);
    for a in op.args() {
        put_value(out, a);
    }
    put_value(out, result);
}

/// Encodes a [`LogRecord`] payload (no frame header).
pub fn encode_payload(record: &LogRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    put_u32(&mut out, record.txn.raw());
    put_u32(&mut out, record.object.raw());
    match &record.kind {
        RecordKind::Prepare { ops } => {
            out.push(KIND_PREPARE);
            put_u32(&mut out, ops.len() as u32);
            for op in ops {
                put_op_result(&mut out, op);
            }
        }
        RecordKind::Commit => out.push(KIND_COMMIT),
        RecordKind::CommitDep { footprint } => {
            out.push(KIND_COMMIT_DEP);
            let mut flags = 0u8;
            if footprint.unkeyed_reads {
                flags |= FOOTPRINT_UNKEYED_READS;
            }
            if footprint.unkeyed_writes {
                flags |= FOOTPRINT_UNKEYED_WRITES;
            }
            out.push(flags);
            for keys in [&footprint.reads, &footprint.writes] {
                put_u32(&mut out, keys.len() as u32);
                for k in keys {
                    out.extend_from_slice(&k.to_le_bytes());
                }
            }
        }
        RecordKind::Abort => out.push(KIND_ABORT),
    }
    out
}

/// Encodes a complete frame: header + payload.
pub fn encode_frame(record: &LogRecord) -> Vec<u8> {
    let payload = encode_payload(record);
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, crc32(&payload));
    out.extend_from_slice(&payload);
    out
}

// ---------------------------------------------------------------------------
// Payload decoding

/// A bounds-checked little-endian reader over a payload slice.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
    }

    fn i64(&mut self) -> Option<i64> {
        self.take(8)
            .map(|s| i64::from_le_bytes(s.try_into().unwrap()))
    }

    fn string(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    fn value(&mut self) -> Option<Value> {
        match self.u8()? {
            VALUE_UNIT => Some(Value::Unit),
            VALUE_NIL => Some(Value::Nil),
            VALUE_BOOL => Some(Value::Bool(self.u8()? != 0)),
            VALUE_INT => Some(Value::Int(self.i64()?)),
            VALUE_SYM => Some(Value::Sym(self.string()?)),
            VALUE_SEQ => {
                let n = self.u32()? as usize;
                // A length field can't exceed the remaining bytes (each
                // element is ≥ 1 byte) — reject early so a corrupt count
                // can't drive a huge allocation.
                if n > self.buf.len() - self.pos {
                    return None;
                }
                let mut vs = Vec::with_capacity(n);
                for _ in 0..n {
                    vs.push(self.value()?);
                }
                Some(Value::Seq(vs))
            }
            _ => None,
        }
    }

    fn op_result(&mut self) -> Option<OpResult> {
        let name = self.string()?;
        let argc = self.u32()? as usize;
        if argc > self.buf.len() - self.pos {
            return None;
        }
        let mut args = Vec::with_capacity(argc);
        for _ in 0..argc {
            args.push(self.value()?);
        }
        let result = self.value()?;
        Some((Operation::new(name, args), result))
    }
}

/// Decodes a payload back into a [`LogRecord`]. `None` means the payload
/// is malformed (only reachable through corruption that collides CRC32,
/// or a codec bug — callers treat it like a CRC failure).
pub fn decode_payload(payload: &[u8]) -> Option<LogRecord> {
    let mut r = Reader {
        buf: payload,
        pos: 0,
    };
    let txn = ActivityId::new(r.u32()?);
    let object = ObjectId::new(r.u32()?);
    let kind = match r.u8()? {
        KIND_PREPARE => {
            let n = r.u32()? as usize;
            if n > payload.len() {
                return None;
            }
            let mut ops = Vec::with_capacity(n);
            for _ in 0..n {
                ops.push(r.op_result()?);
            }
            RecordKind::Prepare { ops }
        }
        KIND_COMMIT => RecordKind::Commit,
        KIND_COMMIT_DEP => {
            let flags = r.u8()?;
            if flags & !(FOOTPRINT_UNKEYED_READS | FOOTPRINT_UNKEYED_WRITES) != 0 {
                return None; // unknown flag bits: not something we write
            }
            let mut key_sets = [Vec::new(), Vec::new()];
            for set in &mut key_sets {
                let n = r.u32()? as usize;
                // Each key is 8 bytes; reject counts the remaining payload
                // cannot hold before allocating.
                if n > (payload.len() - r.pos) / 8 {
                    return None;
                }
                set.reserve(n);
                for _ in 0..n {
                    set.push(r.i64()?);
                }
            }
            let [reads, writes] = key_sets;
            let mut footprint = KeyFootprint::new(reads, writes);
            footprint.unkeyed_reads = flags & FOOTPRINT_UNKEYED_READS != 0;
            footprint.unkeyed_writes = flags & FOOTPRINT_UNKEYED_WRITES != 0;
            RecordKind::CommitDep { footprint }
        }
        KIND_ABORT => RecordKind::Abort,
        _ => return None,
    };
    if r.pos != payload.len() {
        return None; // trailing garbage: not something we ever write
    }
    Some(LogRecord { txn, object, kind })
}

/// The result of reading one frame out of a buffer at `offset`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameRead {
    /// A whole, CRC-valid frame; `next` is the offset just past it.
    Record {
        /// The decoded record.
        record: LogRecord,
        /// Offset of the byte after this frame.
        next: usize,
    },
    /// `offset` is exactly the end of the buffer: a clean end.
    End,
    /// The bytes from `offset` on are not a whole valid frame — a torn
    /// tail. The string says why (diagnostics only).
    Torn(&'static str),
}

/// Reads the frame starting at `offset` in `buf`.
pub fn read_frame(buf: &[u8], offset: usize) -> FrameRead {
    if offset == buf.len() {
        return FrameRead::End;
    }
    let remaining = buf.len() - offset;
    if remaining < FRAME_HEADER_BYTES {
        return FrameRead::Torn("partial frame header");
    }
    let len = u32::from_le_bytes(buf[offset..offset + 4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(buf[offset + 4..offset + 8].try_into().unwrap());
    if len > MAX_PAYLOAD_BYTES {
        return FrameRead::Torn("implausible frame length");
    }
    if remaining - FRAME_HEADER_BYTES < len {
        return FrameRead::Torn("partial frame payload");
    }
    let payload = &buf[offset + FRAME_HEADER_BYTES..offset + FRAME_HEADER_BYTES + len];
    if crc32(payload) != crc {
        return FrameRead::Torn("CRC mismatch");
    }
    match decode_payload(payload) {
        Some(record) => FrameRead::Record {
            record,
            next: offset + FRAME_HEADER_BYTES + len,
        },
        None => FrameRead::Torn("undecodable payload"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomicity_spec::op;

    fn rec(kind: RecordKind) -> LogRecord {
        LogRecord {
            txn: ActivityId::new(7),
            object: ObjectId::new(3),
            kind,
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn all_record_kinds_round_trip() {
        let records = vec![
            rec(RecordKind::Commit),
            rec(RecordKind::Abort),
            rec(RecordKind::Prepare { ops: Vec::new() }),
            rec(RecordKind::CommitDep {
                footprint: KeyFootprint::default(),
            }),
            rec(RecordKind::CommitDep {
                footprint: KeyFootprint::new(vec![7, 9], vec![-3, 0, i64::MAX]),
            }),
            rec(RecordKind::CommitDep {
                footprint: {
                    let mut fp = KeyFootprint::new(vec![], vec![1]);
                    fp.unkeyed_reads = true;
                    fp.unkeyed_writes = true;
                    fp
                },
            }),
            rec(RecordKind::Prepare {
                ops: vec![
                    (op("adjust", [3i64, -4]), Value::ok()),
                    (op("member", [9i64]), Value::Bool(false)),
                    (
                        op("audit", [] as [i64; 0]),
                        Value::Seq(vec![Value::Int(1), Value::sym("insufficient_funds")]),
                    ),
                    (op("peek", [] as [i64; 0]), Value::Nil),
                ],
            }),
        ];
        for r in records {
            let frame = encode_frame(&r);
            match read_frame(&frame, 0) {
                FrameRead::Record { record, next } => {
                    assert_eq!(record, r);
                    assert_eq!(next, frame.len());
                }
                other => panic!("round trip failed: {other:?}"),
            }
        }
    }

    #[test]
    fn commit_dep_truncations_are_torn_or_end() {
        // Cutting anywhere inside the footprint body must read as a torn
        // tail, never as a shorter valid record.
        let r = rec(RecordKind::CommitDep {
            footprint: KeyFootprint::new(vec![1, 2], vec![3, 4, 5]),
        });
        let frame = encode_frame(&r);
        for cut in 0..frame.len() {
            match read_frame(&frame[..cut], 0) {
                FrameRead::Torn(_) => {}
                FrameRead::End => assert_eq!(cut, 0),
                FrameRead::Record { .. } => panic!("cut {cut} produced a whole record"),
            }
        }
    }

    #[test]
    fn commit_dep_rejects_unknown_flags_and_bogus_counts() {
        let r = rec(RecordKind::CommitDep {
            footprint: KeyFootprint::new(vec![1], vec![2]),
        });
        let payload = encode_payload(&r);
        // Payload layout: txn(4) object(4) tag(1) flags(1) …
        let mut bad_flags = payload.clone();
        bad_flags[9] |= 0b100;
        assert!(decode_payload(&bad_flags).is_none());
        // A corrupt key count larger than the remaining bytes is rejected
        // before any allocation.
        let mut bad_count = payload;
        bad_count[10..14].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_payload(&bad_count).is_none());
    }

    #[test]
    fn every_truncation_is_torn_or_end() {
        let r = rec(RecordKind::Prepare {
            ops: vec![(op("adjust", [1i64, 2]), Value::ok())],
        });
        let frame = encode_frame(&r);
        for cut in 0..frame.len() {
            match read_frame(&frame[..cut], 0) {
                FrameRead::Torn(_) => {}
                FrameRead::End => assert_eq!(cut, 0),
                FrameRead::Record { .. } => panic!("cut {cut} produced a whole record"),
            }
        }
    }

    #[test]
    fn bit_flips_fail_crc() {
        let frame = encode_frame(&rec(RecordKind::Commit));
        for byte in FRAME_HEADER_BYTES..frame.len() {
            let mut bad = frame.clone();
            bad[byte] ^= 0x40;
            assert!(
                matches!(read_frame(&bad, 0), FrameRead::Torn(_)),
                "flip at {byte} went undetected"
            );
        }
    }

    #[test]
    fn implausible_length_is_torn_not_oom() {
        let mut frame = encode_frame(&rec(RecordKind::Commit));
        frame[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            read_frame(&frame, 0),
            FrameRead::Torn("implausible frame length")
        );
    }

    #[test]
    fn frames_concatenate() {
        let a = rec(RecordKind::Prepare { ops: Vec::new() });
        let b = rec(RecordKind::Commit);
        let mut buf = encode_frame(&a);
        buf.extend_from_slice(&encode_frame(&b));
        let FrameRead::Record { record, next } = read_frame(&buf, 0) else {
            panic!("first frame unreadable");
        };
        assert_eq!(record, a);
        let FrameRead::Record { record, next } = read_frame(&buf, next) else {
            panic!("second frame unreadable");
        };
        assert_eq!(record, b);
        assert_eq!(read_frame(&buf, next), FrameRead::End);
    }
}
