//! **atomicity-durable** — the on-disk durability layer.
//!
//! Everything in `atomicity-core`'s recovery module runs over the
//! [`DurableLog`](atomicity_core::recovery::DurableLog) abstraction; this
//! crate provides the implementation that survives real process death: a
//! segmented append-only write-ahead log ([`Wal`]) with
//!
//! - a hand-rolled binary frame format (length + CRC32 + payload) with
//!   torn-tail detection and truncation on open ([`frame`]);
//! - **group commit**: a dedicated flusher thread batches the fsyncs of
//!   concurrent committers over a tunable window
//!   ([`SyncPolicy::GroupCommit`]), with [`SyncPolicy::SyncEach`] as the
//!   one-fsync-per-commit baseline — the comparison is experiment E11;
//! - **fuzzy checkpointing** ([`Wal::checkpoint`]): the live outcome of
//!   the log so far is folded into a compact base snapshot, installed
//!   atomically (write-tmp, fsync, rename), and the segments it covers
//!   are deleted;
//! - crash recovery on [`Wal::open`]: scan the checkpoint plus surviving
//!   segments, truncate any torn tail, and hand back a clean logical
//!   record prefix for intentions-list redo.
//!
//! The kill-based crash harness (`tests/kill_harness.rs` plus the
//! `crash_child` binary) SIGKILLs a committing child process at hundreds
//! of randomized points and certifies — with the linear-time certifier
//! from `atomicity-lint` — that recovery never loses an acknowledged
//! commit and never resurrects a loser.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frame;
pub mod restart;
pub mod wal;

pub use restart::RestartableWal;
pub use wal::{CheckpointStats, SyncPolicy, Wal, WalOptions, WalRecoveryInfo};
