//! In-process simulated restarts of the on-disk WAL.
//!
//! The kill harness proves recovery against real process death; the
//! deterministic simulation needs the same "everything volatile is gone,
//! only the disk survives" transition *without* forking. [`Wal`] keeps an
//! in-memory mirror of the logical record sequence (so `records()` never
//! re-reads the disk), which means merely calling it again after a
//! simulated crash would not exercise recovery at all. A
//! [`RestartableWal`] closes that gap: it implements
//! [`DurableLog`] by delegating to an inner [`Wal`], and
//! [`RestartableWal::simulate_restart`] *drops* that `Wal` — discarding
//! every in-memory structure — then runs the full [`Wal::open`] recovery
//! path (checkpoint load, segment scan, torn-tail truncation) against
//! whatever bytes are actually on disk.
//!
//! The simulation's MTTF crash events call this through the cluster's
//! restart hook, so every mid-run node crash recovers through the same
//! code path a real reboot would take.

use crate::wal::{Wal, WalOptions, WalRecoveryInfo};
use atomicity_core::recovery::{DurableLog, LogRecord};
use parking_lot::Mutex;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// A [`DurableLog`] over an on-disk [`Wal`] that can be torn down and
/// re-opened from disk mid-run, simulating a process restart.
pub struct RestartableWal {
    dir: PathBuf,
    opts: WalOptions,
    inner: Mutex<Inner>,
}

struct Inner {
    /// `None` only transiently inside [`RestartableWal::simulate_restart`]
    /// (or permanently after a failed restart, which poisons the store).
    wal: Option<Wal>,
    last_recovery: WalRecoveryInfo,
    restarts: u64,
}

impl Inner {
    fn wal(&self) -> &Wal {
        self.wal
            .as_ref()
            .expect("WAL lost: a simulated restart failed to re-open it")
    }
}

impl fmt::Debug for RestartableWal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("RestartableWal")
            .field("dir", &self.dir)
            .field("restarts", &inner.restarts)
            .field("last_recovery", &inner.last_recovery)
            .finish_non_exhaustive()
    }
}

impl RestartableWal {
    /// Opens (recovering if needed) the WAL in `dir`.
    ///
    /// For deterministic simulation pass
    /// [`SyncPolicy::SyncEach`](crate::SyncPolicy::SyncEach) in `opts`:
    /// group commit runs a background flusher thread whose batching is
    /// timing-dependent.
    pub fn open(dir: impl AsRef<Path>, opts: WalOptions) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        let (wal, info) = Wal::open(&dir, opts.clone())?;
        Ok(RestartableWal {
            dir,
            opts,
            inner: Mutex::new(Inner {
                wal: Some(wal),
                last_recovery: info,
                restarts: 0,
            }),
        })
    }

    /// Simulates a process restart: drops the live [`Wal`] (losing every
    /// in-memory structure) and re-opens it from the bytes on disk,
    /// running the real recovery path. Returns what recovery found.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from [`Wal::open`]. On error the previous
    /// WAL handle has already been dropped; the caller should treat the
    /// store as failed.
    pub fn simulate_restart(&self) -> io::Result<WalRecoveryInfo> {
        let mut inner = self.inner.lock();
        // Drop the old handle *first* so its flusher (if any) shuts down
        // and the re-open sees quiesced files.
        inner.wal = None;
        let (wal, info) = Wal::open(&self.dir, self.opts.clone())?;
        inner.wal = Some(wal);
        inner.last_recovery = info.clone();
        inner.restarts += 1;
        Ok(info)
    }

    /// What the most recent open/restart recovery found.
    pub fn last_recovery(&self) -> WalRecoveryInfo {
        self.inner.lock().last_recovery.clone()
    }

    /// How many simulated restarts have run.
    pub fn restarts(&self) -> u64 {
        self.inner.lock().restarts
    }

    /// The directory holding the WAL files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

impl DurableLog for RestartableWal {
    fn append(&self, record: LogRecord) -> u64 {
        self.inner.lock().wal().append(record)
    }

    fn sync(&self) {
        self.inner.lock().wal().sync();
    }

    fn records(&self) -> Vec<LogRecord> {
        self.inner.lock().wal().records()
    }

    fn len(&self) -> usize {
        self.inner.lock().wal().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::SyncPolicy;
    use atomicity_core::recovery::RecordKind;
    use atomicity_spec::{op, ActivityId, ObjectId, Value};

    fn sim_opts() -> WalOptions {
        WalOptions {
            sync: SyncPolicy::SyncEach,
            ..WalOptions::default()
        }
    }

    fn rec(txn: u32) -> LogRecord {
        LogRecord {
            txn: ActivityId::new(txn),
            object: ObjectId::new(1),
            kind: RecordKind::Prepare {
                ops: vec![(op("adjust", [1, 5]), Value::ok())],
            },
        }
    }

    #[test]
    fn restart_recovers_exactly_the_synced_records() {
        let dir = tempdir("restart_recovers");
        let wal = RestartableWal::open(&dir, sim_opts()).unwrap();
        wal.append(rec(1));
        wal.append(rec(2));
        wal.sync();
        let before = wal.records();
        let info = wal.simulate_restart().unwrap();
        assert_eq!(info.records, 2);
        assert_eq!(wal.records(), before, "recovery reproduces the log");
        assert_eq!(wal.restarts(), 1);
        // The log stays appendable after a restart.
        wal.append(rec(3));
        wal.sync();
        assert_eq!(wal.len(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restart_is_a_real_reopen_not_a_cache_read() {
        let dir = tempdir("restart_reopen");
        let wal = RestartableWal::open(&dir, sim_opts()).unwrap();
        wal.append(rec(1));
        wal.sync();
        assert_eq!(wal.last_recovery().records, 0, "first open saw empty dir");
        wal.simulate_restart().unwrap();
        assert_eq!(
            wal.last_recovery().records,
            1,
            "restart re-ran recovery over the on-disk bytes"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("restartable-wal-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }
}
