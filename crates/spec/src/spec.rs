//! Sequential specifications of objects as executable state machines.
//!
//! In the paper, the specification of an object describes its permissible
//! sequences of events (§2); for *serial* sequences this reduces to a
//! sequential semantics: from an initial state, each invocation produces a
//! result and a next state. Crucially the paper insists operations need
//! **not** be functions — non-deterministic operations are first-class
//! (§1, §5.2) — so [`SequentialSpec::step`] returns a *set* of
//! (result, next-state) outcomes, and acceptance of a serial sequence is a
//! search over outcome choices.

use crate::event::ObjectId;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// An operation invocation: a name plus argument values.
///
/// ```
/// use atomicity_spec::op;
/// let o = op("insert", [3]);
/// assert_eq!(o.to_string(), "insert(3)");
/// let nullary = op("dequeue", [] as [i64; 0]);
/// assert_eq!(nullary.to_string(), "dequeue");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Operation {
    name: String,
    args: Vec<Value>,
}

impl Operation {
    /// Creates an operation from a name and arguments.
    pub fn new(name: impl Into<String>, args: impl IntoIterator<Item = Value>) -> Self {
        Operation {
            name: name.into(),
            args: args.into_iter().collect(),
        }
    }

    /// The operation name, e.g. `"insert"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The argument values.
    pub fn args(&self) -> &[Value] {
        &self.args
    }

    /// The `i`-th argument as an integer.
    ///
    /// Returns `None` if the argument is absent or not an integer; object
    /// specifications use this to reject ill-typed invocations.
    pub fn int_arg(&self, i: usize) -> Option<i64> {
        self.args.get(i).and_then(Value::as_int)
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.args.is_empty() {
            write!(f, "{}", self.name)
        } else {
            write!(f, "{}(", self.name)?;
            for (i, a) in self.args.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{a}")?;
            }
            write!(f, ")")
        }
    }
}

/// Shorthand constructor for [`Operation`].
///
/// Arguments may be anything convertible to [`Value`].
///
/// ```
/// use atomicity_spec::op;
/// assert_eq!(op("withdraw", [4]).name(), "withdraw");
/// ```
pub fn op<V: Into<Value>>(name: &str, args: impl IntoIterator<Item = V>) -> Operation {
    Operation::new(name, args.into_iter().map(Into::into))
}

/// A completed invocation: the operation together with the result it
/// returned. Serial sequences are checked as lists of these pairs.
pub type OpResult = (Operation, Value);

/// A sequential specification: object semantics as a (possibly
/// non-deterministic) state machine.
///
/// `step` returns **all** permissible (result, next-state) outcomes of
/// applying `op` in `state`; an empty vector means the invocation is not
/// permitted at all (ill-typed or unknown operation). Determinism is the
/// special case of a single outcome.
///
/// # Example
///
/// ```
/// use atomicity_spec::{SequentialSpec, op};
/// use atomicity_spec::specs::CounterSpec;
/// let c = CounterSpec::new();
/// let outcomes = c.step(&0, &op("increment", [] as [i64; 0]));
/// assert_eq!(outcomes.len(), 1);
/// assert_eq!(outcomes[0].1, 1); // new state
/// ```
pub trait SequentialSpec: Send + Sync + 'static {
    /// The abstract state of the object.
    type State: Clone + PartialEq + fmt::Debug + Send + Sync;

    /// The initial state.
    fn initial(&self) -> Self::State;

    /// All permissible (result, next-state) outcomes of `op` in `state`.
    fn step(&self, state: &Self::State, op: &Operation) -> Vec<(Value, Self::State)>;

    /// Whether `op` can never change the state, regardless of the state it
    /// runs in. Used to classify read-only activities for hybrid atomicity
    /// (§4.3). Conservative default: `false`.
    fn is_read_only(&self, _op: &Operation) -> bool {
        false
    }

    /// All states reachable by executing `ops` from `state` such that each
    /// operation returns its recorded result.
    ///
    /// This is the workhorse of acceptance checking: a serial sequence is
    /// accepted iff the reachable-state set is non-empty.
    fn replay(&self, state: &Self::State, ops: &[OpResult]) -> Vec<Self::State> {
        let mut frontier = vec![state.clone()];
        for (op, expected) in ops {
            let mut next = Vec::new();
            for s in &frontier {
                for (result, s2) in self.step(s, op) {
                    if &result == expected && !next.contains(&s2) {
                        next.push(s2);
                    }
                }
            }
            if next.is_empty() {
                return Vec::new();
            }
            frontier = next;
        }
        frontier
    }

    /// Whether the serial sequence of completed invocations `ops` is
    /// accepted from the initial state.
    fn accepts_serial(&self, ops: &[OpResult]) -> bool {
        !self.replay(&self.initial(), ops).is_empty()
    }
}

/// Object-safe view of a [`SequentialSpec`], with the state hidden.
///
/// [`SystemSpec`] stores specifications for heterogeneous objects as
/// `Arc<dyn ObjectSpec>`. Every `SequentialSpec` implements `ObjectSpec`
/// via a blanket impl.
pub trait ObjectSpec: Send + Sync {
    /// Whether the serial sequence `ops` is accepted from the initial state.
    fn accepts(&self, ops: &[OpResult]) -> bool;

    /// Whether a *prefix* can possibly be extended: identical to
    /// [`ObjectSpec::accepts`] for our prefix-closed specifications, exposed
    /// separately so search procedures can prune.
    fn accepts_prefix(&self, ops: &[OpResult]) -> bool {
        self.accepts(ops)
    }

    /// Whether `op` can never change the object's state (§4.3).
    fn op_is_read_only(&self, op: &Operation) -> bool;

    /// Starts an incremental acceptance check from the initial state.
    ///
    /// Streaming consumers (the online certifier) feed a serial sequence
    /// chunk by chunk instead of re-replaying a growing prefix:
    /// `accepts(a ++ b)` equals `r.apply(a) && r.apply(b)` for a fresh
    /// replayer `r`, because [`SequentialSpec::replay`] is a fold over the
    /// reachable-state frontier.
    fn begin_replay(self: Arc<Self>) -> Box<dyn StateReplayer>;
}

/// An in-progress incremental replay of a serial sequence against one
/// object's specification (see [`ObjectSpec::begin_replay`]).
///
/// Holds the frontier of states reachable by everything applied so far;
/// the sequence is accepted while the frontier stays non-empty. Once
/// `apply` has returned `false` the replayer is dead — every further
/// `apply` returns `false` too.
pub trait StateReplayer: Send {
    /// Extends the replayed sequence by `ops`; returns whether the whole
    /// sequence so far is still accepted.
    fn apply(&mut self, ops: &[OpResult]) -> bool;

    /// An independent copy of the replay at its current frontier, for
    /// exploring alternative continuations (linear-extension enumeration).
    fn fork(&self) -> Box<dyn StateReplayer>;
}

/// The blanket [`StateReplayer`]: a reachable-state frontier over a
/// concrete [`SequentialSpec`].
struct FrontierReplayer<S: SequentialSpec> {
    spec: Arc<S>,
    /// States reachable by the sequence applied so far; empty = rejected.
    frontier: Vec<S::State>,
}

impl<S: SequentialSpec> StateReplayer for FrontierReplayer<S> {
    fn apply(&mut self, ops: &[OpResult]) -> bool {
        for (op, expected) in ops {
            let mut next: Vec<S::State> = Vec::new();
            for s in &self.frontier {
                for (result, s2) in self.spec.step(s, op) {
                    if &result == expected && !next.contains(&s2) {
                        next.push(s2);
                    }
                }
            }
            self.frontier = next;
            if self.frontier.is_empty() {
                return false;
            }
        }
        !self.frontier.is_empty()
    }

    fn fork(&self) -> Box<dyn StateReplayer> {
        Box::new(FrontierReplayer {
            spec: self.spec.clone(),
            frontier: self.frontier.clone(),
        })
    }
}

impl<S: SequentialSpec> ObjectSpec for S {
    fn accepts(&self, ops: &[OpResult]) -> bool {
        self.accepts_serial(ops)
    }

    fn op_is_read_only(&self, op: &Operation) -> bool {
        self.is_read_only(op)
    }

    fn begin_replay(self: Arc<Self>) -> Box<dyn StateReplayer> {
        let frontier = vec![self.initial()];
        Box::new(FrontierReplayer {
            spec: self,
            frontier,
        })
    }
}

/// Specifications for every object in a system, keyed by [`ObjectId`].
///
/// The possible computations of a system are determined by the
/// specifications of its components (§2); the serializability checkers in
/// [`crate::serial`] consult a `SystemSpec` to decide acceptance of serial
/// sequences object by object (Lemma 3).
///
/// # Example
///
/// ```
/// use atomicity_spec::{SystemSpec, ObjectId};
/// use atomicity_spec::specs::{IntSetSpec, CounterSpec};
/// let spec = SystemSpec::new()
///     .with_object(ObjectId::new(1), IntSetSpec::new())
///     .with_object(ObjectId::new(2), CounterSpec::new());
/// assert!(spec.get(ObjectId::new(1)).is_some());
/// assert!(spec.get(ObjectId::new(3)).is_none());
/// ```
#[derive(Clone, Default)]
pub struct SystemSpec {
    objects: HashMap<ObjectId, Arc<dyn ObjectSpec>>,
}

impl SystemSpec {
    /// Creates an empty system specification.
    pub fn new() -> Self {
        SystemSpec {
            objects: HashMap::new(),
        }
    }

    /// Adds (or replaces) the specification for `object`, builder style.
    pub fn with_object<S: SequentialSpec>(mut self, object: ObjectId, spec: S) -> Self {
        self.objects.insert(object, Arc::new(spec));
        self
    }

    /// Adds (or replaces) an already-shared specification.
    pub fn insert(&mut self, object: ObjectId, spec: Arc<dyn ObjectSpec>) {
        self.objects.insert(object, spec);
    }

    /// Looks up the specification for `object`.
    pub fn get(&self, object: ObjectId) -> Option<&Arc<dyn ObjectSpec>> {
        self.objects.get(&object)
    }

    /// The identifiers of all specified objects, in unspecified order.
    pub fn object_ids(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.objects.keys().copied()
    }
}

impl fmt::Debug for SystemSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut ids: Vec<_> = self.objects.keys().collect();
        ids.sort();
        f.debug_struct("SystemSpec").field("objects", &ids).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A two-outcome coin: `flip` returns heads or tails nondeterministically
    /// and remembers the last face; `peek` reads it.
    struct CoinSpec;

    impl SequentialSpec for CoinSpec {
        type State = Option<bool>;

        fn initial(&self) -> Self::State {
            None
        }

        fn step(&self, state: &Self::State, op: &Operation) -> Vec<(Value, Self::State)> {
            match op.name() {
                "flip" => vec![
                    (Value::from(true), Some(true)),
                    (Value::from(false), Some(false)),
                ],
                "peek" => match state {
                    Some(b) => vec![(Value::from(*b), *state)],
                    None => vec![(Value::Nil, *state)],
                },
                _ => Vec::new(),
            }
        }

        fn is_read_only(&self, op: &Operation) -> bool {
            op.name() == "peek"
        }
    }

    fn flip() -> Operation {
        op("flip", [] as [i64; 0])
    }

    fn peek() -> Operation {
        op("peek", [] as [i64; 0])
    }

    #[test]
    fn nondeterministic_acceptance_searches_outcomes() {
        let c = CoinSpec;
        // flip -> true, then peek -> true: accepted (choose the heads branch).
        assert!(c.accepts_serial(&[(flip(), Value::from(true)), (peek(), Value::from(true))]));
        // flip -> true, then peek -> false: no branch matches.
        assert!(!c.accepts_serial(&[(flip(), Value::from(true)), (peek(), Value::from(false))]));
        // Unknown operation is rejected.
        assert!(!c.accepts_serial(&[(op("bogus", [1]), Value::ok())]));
    }

    #[test]
    fn replay_returns_all_reachable_states() {
        let c = CoinSpec;
        // After an unobserved flip recorded only as "some bool came back"?
        // Each recorded result pins the state here, so one state survives.
        let states = c.replay(&None, &[(flip(), Value::from(false))]);
        assert_eq!(states, vec![Some(false)]);
        // Empty op list: the initial state itself.
        assert_eq!(c.replay(&None, &[]), vec![None]);
    }

    #[test]
    fn object_spec_blanket_impl_delegates() {
        let spec: Arc<dyn ObjectSpec> = Arc::new(CoinSpec);
        assert!(spec.accepts(&[(flip(), Value::from(true))]));
        assert!(spec.op_is_read_only(&peek()));
        assert!(!spec.op_is_read_only(&flip()));
    }

    #[test]
    fn system_spec_lookup() {
        let x = ObjectId::new(1);
        let spec = SystemSpec::new().with_object(x, CoinSpec);
        assert!(spec.get(x).is_some());
        assert_eq!(spec.object_ids().count(), 1);
        assert!(format!("{spec:?}").contains("SystemSpec"));
    }

    #[test]
    fn operation_accessors() {
        let o = op("put", [1, 2]);
        assert_eq!(o.name(), "put");
        assert_eq!(o.args().len(), 2);
        assert_eq!(o.int_arg(0), Some(1));
        assert_eq!(o.int_arg(1), Some(2));
        assert_eq!(o.int_arg(2), None);
        assert_eq!(o.to_string(), "put(1,2)");
    }
}
