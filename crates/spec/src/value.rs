//! Abstract values passed to and returned from operations.
//!
//! The paper's example objects exchange small scalar values: integers
//! (`insert(3)`), booleans (`<true,x,a>`), and symbolic results such as
//! `ok` and `insufficient_funds`. [`Value`] is a small closed universe of
//! such values, rich enough for every object specification in this
//! repository while keeping equality, hashing, and serialization trivial.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An abstract argument or result value.
///
/// `Value` is deliberately small: operations on atomic objects exchange
/// scalars and short sequences, not arbitrary payloads. The symbolic results
/// the paper uses — `ok`, `insufficient_funds`, `empty` — are represented by
/// [`Value::Unit`] (displayed as `ok`), [`Value::Sym`], and [`Value::Nil`]
/// respectively.
///
/// # Example
///
/// ```
/// use atomicity_spec::Value;
/// assert_eq!(Value::from(3).to_string(), "3");
/// assert_eq!(Value::ok().to_string(), "ok");
/// assert_eq!(Value::sym("insufficient_funds").to_string(), "insufficient_funds");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub enum Value {
    /// The unit result of a successful state-changing operation; printed `ok`.
    #[default]
    Unit,
    /// Absence of a value (e.g. dequeuing an empty queue); printed `nil`.
    Nil,
    /// A boolean, as returned by `member`.
    Bool(bool),
    /// A signed integer, the workhorse scalar.
    Int(i64),
    /// A symbolic constant such as `insufficient_funds`.
    Sym(String),
    /// A finite sequence of values (e.g. the result of an audit scan).
    Seq(Vec<Value>),
}

impl Value {
    /// The `ok` result used by the paper for successful mutators.
    ///
    /// ```
    /// use atomicity_spec::Value;
    /// assert_eq!(Value::ok(), Value::Unit);
    /// ```
    pub fn ok() -> Self {
        Value::Unit
    }

    /// A symbolic constant.
    ///
    /// ```
    /// use atomicity_spec::Value;
    /// let v = Value::sym("insufficient_funds");
    /// assert!(matches!(v, Value::Sym(_)));
    /// ```
    pub fn sym(name: impl Into<String>) -> Self {
        Value::Sym(name.into())
    }

    /// Returns the integer payload, if this is an [`Value::Int`].
    ///
    /// ```
    /// use atomicity_spec::Value;
    /// assert_eq!(Value::from(7).as_int(), Some(7));
    /// assert_eq!(Value::ok().as_int(), None);
    /// ```
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the boolean payload, if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the sequence payload, if this is a [`Value::Seq`].
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(vs) => Some(vs),
            _ => None,
        }
    }

    /// Whether this value is the `ok` unit result.
    pub fn is_ok_unit(&self) -> bool {
        matches!(self, Value::Unit)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Sym(s.to_owned())
    }
}

impl From<Vec<Value>> for Value {
    fn from(vs: Vec<Value>) -> Self {
        Value::Seq(vs)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "ok"),
            Value::Nil => write!(f, "nil"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Sym(s) => write!(f, "{s}"),
            Value::Seq(vs) => {
                write!(f, "[")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms_match_paper_notation() {
        assert_eq!(Value::ok().to_string(), "ok");
        assert_eq!(Value::from(true).to_string(), "true");
        assert_eq!(Value::from(3).to_string(), "3");
        assert_eq!(Value::Nil.to_string(), "nil");
        assert_eq!(
            Value::Seq(vec![Value::from(1), Value::from(2)]).to_string(),
            "[1, 2]"
        );
    }

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Value::from(5i32), Value::Int(5));
        assert_eq!(Value::from(false), Value::Bool(false));
        assert_eq!(Value::from("empty"), Value::Sym("empty".into()));
        assert_eq!(
            Value::from(vec![Value::ok()]),
            Value::Seq(vec![Value::Unit])
        );
    }

    #[test]
    fn accessors_reject_wrong_variants() {
        assert_eq!(Value::ok().as_int(), None);
        assert_eq!(Value::from(1).as_bool(), None);
        assert_eq!(Value::from(true).as_seq(), None);
        assert!(Value::ok().is_ok_unit());
        assert!(!Value::Nil.is_ok_unit());
    }

    #[test]
    fn ordering_is_total() {
        let mut vs = vec![
            Value::from(2),
            Value::Unit,
            Value::from(true),
            Value::from(1),
        ];
        vs.sort();
        // Sorting must not panic and must be deterministic.
        let again = {
            let mut v = vs.clone();
            v.sort();
            v
        };
        assert_eq!(vs, again);
    }

    #[test]
    fn serde_round_trip() {
        let v = Value::Seq(vec![Value::from(1), Value::sym("ok?"), Value::Bool(true)]);
        let s = serde_json::to_string(&v).unwrap();
        let back: Value = serde_json::from_str(&s).unwrap();
        assert_eq!(v, back);
    }
}
