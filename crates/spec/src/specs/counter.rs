//! The counter object from the optimality proof (§4.1).

use crate::spec::{Operation, SequentialSpec};
use crate::value::Value;

/// A counter whose single operation `increment` increments the state and
/// returns the resulting value (§4.1).
///
/// Its serial sequences have the form `increment→1, increment→2, …`, which
/// makes every serial history serializable in **exactly one** order — the
/// property the paper exploits to prove dynamic atomicity optimal.
///
/// Also provides a read-only `value` operation (returning the current
/// count) used by workloads; the paper's construction only needs
/// `increment`.
///
/// # Example
///
/// ```
/// use atomicity_spec::specs::CounterSpec;
/// use atomicity_spec::{SequentialSpec, op, Value};
/// let c = CounterSpec::new();
/// assert!(c.accepts_serial(&[
///     (op("increment", [] as [i64; 0]), Value::from(1)),
///     (op("increment", [] as [i64; 0]), Value::from(2)),
/// ]));
/// assert!(!c.accepts_serial(&[
///     (op("increment", [] as [i64; 0]), Value::from(2)),
/// ]));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSpec {
    _private: (),
}

impl CounterSpec {
    /// Creates the counter specification (initial state 0).
    pub fn new() -> Self {
        CounterSpec { _private: () }
    }
}

impl SequentialSpec for CounterSpec {
    type State = i64;

    fn initial(&self) -> Self::State {
        0
    }

    fn step(&self, state: &Self::State, op: &Operation) -> Vec<(Value, Self::State)> {
        match op.name() {
            "increment" if op.args().is_empty() => {
                vec![(Value::from(state + 1), state + 1)]
            }
            "value" if op.args().is_empty() => vec![(Value::from(*state), *state)],
            _ => Vec::new(),
        }
    }

    fn is_read_only(&self, op: &Operation) -> bool {
        op.name() == "value"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::op;

    fn inc() -> Operation {
        op("increment", [] as [i64; 0])
    }

    #[test]
    fn increments_return_running_count() {
        let c = CounterSpec::new();
        assert!(c.accepts_serial(&[
            (inc(), Value::from(1)),
            (inc(), Value::from(2)),
            (inc(), Value::from(3)),
        ]));
    }

    #[test]
    fn wrong_count_rejected() {
        let c = CounterSpec::new();
        assert!(!c.accepts_serial(&[(inc(), Value::from(1)), (inc(), Value::from(3))]));
        assert!(!c.accepts_serial(&[(inc(), Value::from(0))]));
    }

    #[test]
    fn value_is_read_only() {
        let c = CounterSpec::new();
        let val = op("value", [] as [i64; 0]);
        assert!(c.is_read_only(&val));
        assert!(!c.is_read_only(&inc()));
        assert!(c.accepts_serial(&[
            (inc(), Value::from(1)),
            (val.clone(), Value::from(1)),
            (inc(), Value::from(2)),
        ]));
        assert!(!c.accepts_serial(&[(val, Value::from(5))]));
    }

    #[test]
    fn ill_typed_operations_rejected() {
        let c = CounterSpec::new();
        assert!(c.step(&0, &op("increment", [1])).is_empty());
        assert!(c.step(&0, &op("bogus", [] as [i64; 0])).is_empty());
    }
}
