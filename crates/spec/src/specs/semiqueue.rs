//! The non-deterministic "semiqueue" of [Weihl & Liskov 83].

use crate::spec::{Operation, SequentialSpec};
use crate::value::Value;
use std::collections::BTreeMap;

/// A weakly ordered queue whose `deq` removes and returns **some** element
/// of the current contents, chosen non-deterministically.
///
/// The paper argues (§1, §5.2) that non-deterministic operations are
/// essential both to avoid over-specification and to achieve reasonable
/// concurrency; the semiqueue from [Weihl & Liskov 83] is the canonical
/// example. Because any present element may be returned, two `deq`
/// invocations by concurrent activities commute whenever the queue holds
/// enough elements — unlike a FIFO queue, where `dequeue` order is forced.
///
/// Operations: `enq(i)→ok`, `deq→i` (any present `i`; `nil` when empty),
/// read-only `count→int`.
///
/// The state is a multiset, represented as a count map.
///
/// # Example
///
/// ```
/// use atomicity_spec::specs::SemiqueueSpec;
/// use atomicity_spec::{SequentialSpec, op, Value};
/// let q = SemiqueueSpec::new();
/// // After enq(1), enq(2), a deq may return either element.
/// assert!(q.accepts_serial(&[
///     (op("enq", [1]), Value::ok()),
///     (op("enq", [2]), Value::ok()),
///     (op("deq", [] as [i64; 0]), Value::from(2)),
///     (op("deq", [] as [i64; 0]), Value::from(1)),
/// ]));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SemiqueueSpec {
    _private: (),
}

impl SemiqueueSpec {
    /// Creates the specification (initially empty).
    pub fn new() -> Self {
        SemiqueueSpec { _private: () }
    }
}

/// Multiset of queued integers, as a value → multiplicity map with no zero
/// entries.
pub type Multiset = BTreeMap<i64, u32>;

impl SequentialSpec for SemiqueueSpec {
    type State = Multiset;

    fn initial(&self) -> Self::State {
        Multiset::new()
    }

    fn step(&self, state: &Self::State, op: &Operation) -> Vec<(Value, Self::State)> {
        match op.name() {
            "enq" if op.args().len() == 1 => match op.int_arg(0) {
                Some(i) => {
                    let mut s = state.clone();
                    *s.entry(i).or_insert(0) += 1;
                    vec![(Value::ok(), s)]
                }
                None => Vec::new(),
            },
            "deq" if op.args().is_empty() => {
                if state.is_empty() {
                    return vec![(Value::Nil, state.clone())];
                }
                // One outcome per distinct present element.
                state
                    .keys()
                    .map(|&i| {
                        let mut s = state.clone();
                        match s.get_mut(&i) {
                            Some(n) if *n > 1 => *n -= 1,
                            _ => {
                                s.remove(&i);
                            }
                        }
                        (Value::from(i), s)
                    })
                    .collect()
            }
            "count" if op.args().is_empty() => {
                let n: u32 = state.values().sum();
                vec![(Value::from(i64::from(n)), state.clone())]
            }
            _ => Vec::new(),
        }
    }

    fn is_read_only(&self, op: &Operation) -> bool {
        op.name() == "count"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::op;

    fn deq() -> Operation {
        op("deq", [] as [i64; 0])
    }

    #[test]
    fn deq_may_return_any_present_element() {
        let q = SemiqueueSpec::new();
        let prefix = [(op("enq", [1]), Value::ok()), (op("enq", [2]), Value::ok())];
        for want in [1i64, 2] {
            let mut ops = prefix.to_vec();
            ops.push((deq(), Value::from(want)));
            assert!(q.accepts_serial(&ops), "deq -> {want} should be allowed");
        }
        let mut ops = prefix.to_vec();
        ops.push((deq(), Value::from(3)));
        assert!(!q.accepts_serial(&ops));
    }

    #[test]
    fn multiplicity_is_respected() {
        let q = SemiqueueSpec::new();
        // Two copies of 1: two deqs of 1 allowed, three are not.
        assert!(q.accepts_serial(&[
            (op("enq", [1]), Value::ok()),
            (op("enq", [1]), Value::ok()),
            (deq(), Value::from(1)),
            (deq(), Value::from(1)),
            (deq(), Value::Nil),
        ]));
        assert!(!q.accepts_serial(&[
            (op("enq", [1]), Value::ok()),
            (deq(), Value::from(1)),
            (deq(), Value::from(1)),
        ]));
    }

    #[test]
    fn empty_deq_is_nil() {
        let q = SemiqueueSpec::new();
        assert!(q.accepts_serial(&[(deq(), Value::Nil)]));
    }

    #[test]
    fn count_is_read_only_and_accurate() {
        let q = SemiqueueSpec::new();
        assert!(q.is_read_only(&op("count", [] as [i64; 0])));
        assert!(!q.is_read_only(&deq()));
        assert!(q.accepts_serial(&[
            (op("enq", [5]), Value::ok()),
            (op("enq", [5]), Value::ok()),
            (op("count", [] as [i64; 0]), Value::from(2)),
        ]));
    }

    #[test]
    fn nondeterminism_enables_branch_sensitive_acceptance() {
        // deq→? then the remaining element identifies which branch was
        // taken; acceptance must track both branches until disambiguated.
        let q = SemiqueueSpec::new();
        assert!(q.accepts_serial(&[
            (op("enq", [1]), Value::ok()),
            (op("enq", [2]), Value::ok()),
            (deq(), Value::from(1)),
            (deq(), Value::from(2)),
            (deq(), Value::Nil),
        ]));
    }
}
