//! A bounded buffer: capacity-limited, weakly ordered.

use crate::spec::{Operation, SequentialSpec};
use crate::value::Value;
use std::collections::BTreeMap;

/// A bounded, weakly ordered buffer of integers.
///
/// `put(i)` stores an element and returns `ok`, or returns `full`
/// (leaving the buffer unchanged) when the buffer already holds
/// `capacity` elements; `take` removes and returns **some** element
/// (non-deterministic, like the semiqueue), or `nil` when empty;
/// `count` is read-only.
///
/// The bounded buffer is the producer-side mirror of the §5.1 bank
/// account: two `put`s commute exactly when there is room for both, and
/// two `take`s commute exactly when there are two elements to take — a
/// state-dependent fact invisible to commutativity tables.
///
/// # Example
///
/// ```
/// use atomicity_spec::specs::BoundedBufferSpec;
/// use atomicity_spec::{SequentialSpec, op, Value};
/// let b = BoundedBufferSpec::with_capacity(1);
/// assert!(b.accepts_serial(&[
///     (op("put", [7]), Value::ok()),
///     (op("put", [8]), Value::sym("full")),
///     (op("take", [] as [i64; 0]), Value::from(7)),
/// ]));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundedBufferSpec {
    capacity: u32,
}

impl BoundedBufferSpec {
    /// Creates the specification with the given capacity.
    pub fn with_capacity(capacity: u32) -> Self {
        BoundedBufferSpec { capacity }
    }

    /// The buffer's capacity.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// The result symbol for a rejected `put`.
    pub fn full() -> Value {
        Value::sym("full")
    }
}

impl Default for BoundedBufferSpec {
    fn default() -> Self {
        BoundedBufferSpec { capacity: 8 }
    }
}

/// Multiset state: element → multiplicity, no zero entries.
pub type BufferState = BTreeMap<i64, u32>;

fn size(state: &BufferState) -> u32 {
    state.values().sum()
}

impl SequentialSpec for BoundedBufferSpec {
    type State = BufferState;

    fn initial(&self) -> Self::State {
        BufferState::new()
    }

    fn step(&self, state: &Self::State, op: &Operation) -> Vec<(Value, Self::State)> {
        match op.name() {
            "put" if op.args().len() == 1 => match op.int_arg(0) {
                Some(i) => {
                    if size(state) >= self.capacity {
                        vec![(Self::full(), state.clone())]
                    } else {
                        let mut s = state.clone();
                        *s.entry(i).or_insert(0) += 1;
                        vec![(Value::ok(), s)]
                    }
                }
                None => Vec::new(),
            },
            "take" if op.args().is_empty() => {
                if state.is_empty() {
                    return vec![(Value::Nil, state.clone())];
                }
                state
                    .keys()
                    .map(|&i| {
                        let mut s = state.clone();
                        match s.get_mut(&i) {
                            Some(n) if *n > 1 => *n -= 1,
                            _ => {
                                s.remove(&i);
                            }
                        }
                        (Value::from(i), s)
                    })
                    .collect()
            }
            "count" if op.args().is_empty() => {
                vec![(Value::from(i64::from(size(state))), state.clone())]
            }
            _ => Vec::new(),
        }
    }

    fn is_read_only(&self, op: &Operation) -> bool {
        op.name() == "count"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::op;

    fn take() -> Operation {
        op("take", [] as [i64; 0])
    }

    #[test]
    fn capacity_is_enforced() {
        let b = BoundedBufferSpec::with_capacity(2);
        assert!(b.accepts_serial(&[
            (op("put", [1]), Value::ok()),
            (op("put", [2]), Value::ok()),
            (op("put", [3]), BoundedBufferSpec::full()),
            (op("count", [] as [i64; 0]), Value::from(2)),
        ]));
        // Claiming ok on a full buffer is rejected.
        assert!(!b.accepts_serial(&[
            (op("put", [1]), Value::ok()),
            (op("put", [2]), Value::ok()),
            (op("put", [3]), Value::ok()),
        ]));
    }

    #[test]
    fn take_is_nondeterministic() {
        let b = BoundedBufferSpec::default();
        for want in [1i64, 2] {
            assert!(b.accepts_serial(&[
                (op("put", [1]), Value::ok()),
                (op("put", [2]), Value::ok()),
                (take(), Value::from(want)),
            ]));
        }
        assert!(b.accepts_serial(&[(take(), Value::Nil)]));
    }

    #[test]
    fn freeing_space_reenables_puts() {
        let b = BoundedBufferSpec::with_capacity(1);
        assert!(b.accepts_serial(&[
            (op("put", [1]), Value::ok()),
            (take(), Value::from(1)),
            (op("put", [2]), Value::ok()),
        ]));
    }

    #[test]
    fn order_dependence_of_put_and_take_near_capacity() {
        // With one free slot, put-then-put differs by order from
        // put-then-take-then-put — the state dependence the engines
        // exploit.
        let b = BoundedBufferSpec::with_capacity(1);
        assert!(b.accepts_serial(&[(take(), Value::Nil), (op("put", [1]), Value::ok()),]));
        assert!(!b.accepts_serial(&[(op("put", [1]), Value::ok()), (op("put", [2]), Value::ok()),]));
    }

    #[test]
    fn read_only_classification() {
        let b = BoundedBufferSpec::default();
        assert!(b.is_read_only(&op("count", [] as [i64; 0])));
        assert!(!b.is_read_only(&op("put", [1])));
        assert!(!b.is_read_only(&take()));
    }

    #[test]
    fn ill_typed_rejected() {
        let b = BoundedBufferSpec::default();
        assert!(b
            .step(&BufferState::new(), &op("put", [] as [i64; 0]))
            .is_empty());
        assert!(b.step(&BufferState::new(), &op("take", [1])).is_empty());
    }
}
