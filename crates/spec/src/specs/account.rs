//! The bank-account object of §5.1.

use crate::spec::{Operation, SequentialSpec};
use crate::value::Value;

/// A bank account with `deposit(n)→ok`, `withdraw(n)→ok` or
/// `withdraw(n)→insufficient_funds`, and a read-only `balance→int` (§5.1).
///
/// `withdraw` terminates normally (debiting the balance) when the balance
/// covers the request, and abnormally with `insufficient_funds` (leaving
/// the balance unchanged) otherwise. This data-dependent outcome is the
/// crux of the paper's comparison with commutativity-based locking: two
/// `ok` withdrawals commute *when there is enough money for both*, which a
/// static conflict table cannot express.
///
/// # Example
///
/// ```
/// use atomicity_spec::specs::BankAccountSpec;
/// use atomicity_spec::{SequentialSpec, op, Value};
/// let acct = BankAccountSpec::new();
/// assert!(acct.accepts_serial(&[
///     (op("deposit", [10]), Value::ok()),
///     (op("withdraw", [4]), Value::ok()),
///     (op("withdraw", [7]), Value::sym("insufficient_funds")),
///     (op("balance", [] as [i64; 0]), Value::from(6)),
/// ]));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BankAccountSpec {
    initial: i64,
}

impl BankAccountSpec {
    /// Creates the specification with initial balance 0 (as in §5.1).
    pub fn new() -> Self {
        BankAccountSpec { initial: 0 }
    }

    /// Creates the specification with a given initial balance.
    pub fn with_initial(balance: i64) -> Self {
        BankAccountSpec { initial: balance }
    }

    /// The result symbol for a failed withdrawal.
    pub fn insufficient_funds() -> Value {
        Value::sym("insufficient_funds")
    }
}

impl SequentialSpec for BankAccountSpec {
    type State = i64;

    fn initial(&self) -> Self::State {
        self.initial
    }

    fn step(&self, state: &Self::State, op: &Operation) -> Vec<(Value, Self::State)> {
        match (op.name(), op.int_arg(0)) {
            ("deposit", Some(n)) if op.args().len() == 1 && n >= 0 => {
                vec![(Value::ok(), state + n)]
            }
            ("withdraw", Some(n)) if op.args().len() == 1 && n >= 0 => {
                if *state >= n {
                    vec![(Value::ok(), state - n)]
                } else {
                    vec![(Self::insufficient_funds(), *state)]
                }
            }
            ("balance", None) if op.args().is_empty() => {
                vec![(Value::from(*state), *state)]
            }
            _ => Vec::new(),
        }
    }

    fn is_read_only(&self, op: &Operation) -> bool {
        op.name() == "balance"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::op;

    #[test]
    fn deposits_accumulate() {
        let a = BankAccountSpec::new();
        assert!(a.accepts_serial(&[
            (op("deposit", [10]), Value::ok()),
            (op("deposit", [5]), Value::ok()),
            (op("balance", [] as [i64; 0]), Value::from(15)),
        ]));
    }

    #[test]
    fn withdraw_outcomes_depend_on_balance() {
        let a = BankAccountSpec::new();
        // Paper §5.1: deposit 10, then withdraw 4 and withdraw 3 both ok.
        assert!(a.accepts_serial(&[
            (op("deposit", [10]), Value::ok()),
            (op("withdraw", [4]), Value::ok()),
            (op("withdraw", [3]), Value::ok()),
            (op("balance", [] as [i64; 0]), Value::from(3)),
        ]));
        // Overdraft refused, balance unchanged.
        assert!(a.accepts_serial(&[
            (op("deposit", [2]), Value::ok()),
            (op("withdraw", [3]), BankAccountSpec::insufficient_funds()),
            (op("balance", [] as [i64; 0]), Value::from(2)),
        ]));
        // A withdraw that claims ok without funds is rejected.
        assert!(!a.accepts_serial(&[(op("withdraw", [1]), Value::ok())]));
        // A withdraw that claims insufficient despite funds is rejected.
        assert!(!a.accepts_serial(&[
            (op("deposit", [5]), Value::ok()),
            (op("withdraw", [5]), BankAccountSpec::insufficient_funds()),
        ]));
    }

    #[test]
    fn initial_balance_respected() {
        let a = BankAccountSpec::with_initial(100);
        assert!(a.accepts_serial(&[(op("withdraw", [100]), Value::ok())]));
    }

    #[test]
    fn order_dependence_of_deposit_and_withdraw() {
        // Paper §5.1: with balance 2, withdraw(3) then deposit(1) fails the
        // withdrawal, but deposit(1) then withdraw(3) succeeds — deposit
        // and withdraw do not commute in general.
        let a = BankAccountSpec::with_initial(2);
        assert!(a.accepts_serial(&[
            (op("withdraw", [3]), BankAccountSpec::insufficient_funds()),
            (op("deposit", [1]), Value::ok()),
        ]));
        assert!(a.accepts_serial(&[
            (op("deposit", [1]), Value::ok()),
            (op("withdraw", [3]), Value::ok()),
        ]));
        assert!(!a.accepts_serial(&[
            (op("withdraw", [3]), Value::ok()),
            (op("deposit", [1]), Value::ok()),
        ]));
    }

    #[test]
    fn negative_amounts_rejected() {
        let a = BankAccountSpec::new();
        assert!(a.step(&0, &op("deposit", [-5])).is_empty());
        assert!(a.step(&0, &op("withdraw", [-5])).is_empty());
    }

    #[test]
    fn balance_is_read_only() {
        let a = BankAccountSpec::new();
        assert!(a.is_read_only(&op("balance", [] as [i64; 0])));
        assert!(!a.is_read_only(&op("deposit", [1])));
        assert!(!a.is_read_only(&op("withdraw", [1])));
    }
}
