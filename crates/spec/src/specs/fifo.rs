//! The first-in-first-out queue of §5.1.

use crate::spec::{Operation, SequentialSpec};
use crate::value::Value;
use std::collections::VecDeque;

/// A FIFO queue of integers: `enqueue(i)→ok` appends at the back,
/// `dequeue→i` removes from the front (§5.1); `dequeue` on an empty queue
/// returns `nil`. A read-only `front` peeks without removing, and `len`
/// reports the size.
///
/// This is the object of the paper's scheduler-model counterexample:
/// `enqueue(1)` does not commute with `enqueue(2)`, yet dynamic atomicity
/// admits interleaved enqueues by concurrent activities.
///
/// # Example
///
/// ```
/// use atomicity_spec::specs::FifoQueueSpec;
/// use atomicity_spec::{SequentialSpec, op, Value};
/// let q = FifoQueueSpec::new();
/// assert!(q.accepts_serial(&[
///     (op("enqueue", [1]), Value::ok()),
///     (op("enqueue", [2]), Value::ok()),
///     (op("dequeue", [] as [i64; 0]), Value::from(1)),
///     (op("dequeue", [] as [i64; 0]), Value::from(2)),
/// ]));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FifoQueueSpec {
    _private: (),
}

impl FifoQueueSpec {
    /// Creates the specification (initially empty queue).
    pub fn new() -> Self {
        FifoQueueSpec { _private: () }
    }
}

impl SequentialSpec for FifoQueueSpec {
    type State = VecDeque<i64>;

    fn initial(&self) -> Self::State {
        VecDeque::new()
    }

    fn step(&self, state: &Self::State, op: &Operation) -> Vec<(Value, Self::State)> {
        match op.name() {
            "enqueue" if op.args().len() == 1 => match op.int_arg(0) {
                Some(i) => {
                    let mut s = state.clone();
                    s.push_back(i);
                    vec![(Value::ok(), s)]
                }
                None => Vec::new(),
            },
            "dequeue" if op.args().is_empty() => {
                let mut s = state.clone();
                match s.pop_front() {
                    Some(i) => vec![(Value::from(i), s)],
                    None => vec![(Value::Nil, s)],
                }
            }
            "front" if op.args().is_empty() => {
                let v = state.front().map(|&i| Value::from(i)).unwrap_or(Value::Nil);
                vec![(v, state.clone())]
            }
            "len" if op.args().is_empty() => {
                vec![(Value::from(state.len() as i64), state.clone())]
            }
            _ => Vec::new(),
        }
    }

    fn is_read_only(&self, op: &Operation) -> bool {
        matches!(op.name(), "front" | "len")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::op;

    fn deq() -> Operation {
        op("dequeue", [] as [i64; 0])
    }

    #[test]
    fn fifo_order_enforced() {
        let q = FifoQueueSpec::new();
        assert!(q.accepts_serial(&[
            (op("enqueue", [1]), Value::ok()),
            (op("enqueue", [2]), Value::ok()),
            (deq(), Value::from(1)),
            (deq(), Value::from(2)),
        ]));
        assert!(!q.accepts_serial(&[
            (op("enqueue", [1]), Value::ok()),
            (op("enqueue", [2]), Value::ok()),
            (deq(), Value::from(2)),
        ]));
    }

    #[test]
    fn empty_dequeue_is_nil() {
        let q = FifoQueueSpec::new();
        assert!(q.accepts_serial(&[(deq(), Value::Nil)]));
        assert!(!q.accepts_serial(&[(deq(), Value::from(1))]));
    }

    #[test]
    fn paper_scheduler_counterexample_serial_forms() {
        // The two serial executions of a=[enq 1, enq 2] and b=[enq 1, enq 2]
        // both yield front-to-back 1,1,2,2 — wait, no: serially a then b
        // gives 1,2,1,2. The paper's point: c dequeues 1,2,1,2 in the
        // serial order a-b-c (and b-a-c), but the *scheduler-model* state
        // after interleaved scheduling would be 1,1,2,2.
        let q = FifoQueueSpec::new();
        let serial_abc = [
            (op("enqueue", [1]), Value::ok()),
            (op("enqueue", [2]), Value::ok()),
            (op("enqueue", [1]), Value::ok()),
            (op("enqueue", [2]), Value::ok()),
            (deq(), Value::from(1)),
            (deq(), Value::from(2)),
            (deq(), Value::from(1)),
            (deq(), Value::from(2)),
        ];
        assert!(q.accepts_serial(&serial_abc));
        // Dequeuing 1,1,2,2 does NOT match any serial order of a and b.
        let interleaved_storage = [
            (op("enqueue", [1]), Value::ok()),
            (op("enqueue", [2]), Value::ok()),
            (op("enqueue", [1]), Value::ok()),
            (op("enqueue", [2]), Value::ok()),
            (deq(), Value::from(1)),
            (deq(), Value::from(1)),
        ];
        assert!(!q.accepts_serial(&interleaved_storage));
    }

    #[test]
    fn front_and_len_are_read_only() {
        let q = FifoQueueSpec::new();
        assert!(q.is_read_only(&op("front", [] as [i64; 0])));
        assert!(q.is_read_only(&op("len", [] as [i64; 0])));
        assert!(!q.is_read_only(&op("enqueue", [1])));
        assert!(!q.is_read_only(&deq()));
        assert!(q.accepts_serial(&[
            (op("front", [] as [i64; 0]), Value::Nil),
            (op("enqueue", [5]), Value::ok()),
            (op("front", [] as [i64; 0]), Value::from(5)),
            (op("len", [] as [i64; 0]), Value::from(1)),
        ]));
    }

    #[test]
    fn ill_typed_rejected() {
        let q = FifoQueueSpec::new();
        assert!(q
            .step(&VecDeque::new(), &op("enqueue", [] as [i64; 0]))
            .is_empty());
        assert!(q.step(&VecDeque::new(), &op("dequeue", [1])).is_empty());
        assert!(q
            .step(&VecDeque::new(), &op("enqueue", [Value::sym("x")]))
            .is_empty());
    }
}
