//! An integer key/value map: the substrate for multi-account workloads.

use crate::spec::{Operation, SequentialSpec};
use crate::value::Value;
use std::collections::BTreeMap;

/// A map from integer keys to integer values.
///
/// Operations: `put(k,v)→old-or-nil`, `get(k)→value-or-nil`,
/// `remove(k)→old-or-nil`, `add(k,d)→new` (read-modify-write increment,
/// `nil`-keys treated as 0), `adjust(k,d)→ok` (blind increment whose
/// result is order-insensitive), read-only `size→int` and `sum→int`.
///
/// `add`/`adjust` exist because they are the commutative updates the
/// banking workloads (E4, E6) rely on; `sum` is the audit scan.
///
/// # Example
///
/// ```
/// use atomicity_spec::specs::KvMapSpec;
/// use atomicity_spec::{SequentialSpec, op, Value};
/// let m = KvMapSpec::new();
/// assert!(m.accepts_serial(&[
///     (op("put", [1, 10]), Value::Nil),
///     (op("add", [1, 5]), Value::from(15)),
///     (op("get", [1]), Value::from(15)),
///     (op("sum", [] as [i64; 0]), Value::from(15)),
/// ]));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KvMapSpec {
    initial: BTreeMap<i64, i64>,
}

impl KvMapSpec {
    /// Creates the specification with an empty initial map.
    pub fn new() -> Self {
        KvMapSpec {
            initial: BTreeMap::new(),
        }
    }

    /// Creates the specification with given initial entries.
    pub fn with_initial(entries: impl IntoIterator<Item = (i64, i64)>) -> Self {
        KvMapSpec {
            initial: entries.into_iter().collect(),
        }
    }
}

fn old_value(state: &BTreeMap<i64, i64>, k: i64) -> Value {
    state.get(&k).map(|&v| Value::from(v)).unwrap_or(Value::Nil)
}

impl SequentialSpec for KvMapSpec {
    type State = BTreeMap<i64, i64>;

    fn initial(&self) -> Self::State {
        self.initial.clone()
    }

    fn step(&self, state: &Self::State, op: &Operation) -> Vec<(Value, Self::State)> {
        match op.name() {
            "put" if op.args().len() == 2 => match (op.int_arg(0), op.int_arg(1)) {
                (Some(k), Some(v)) => {
                    let old = old_value(state, k);
                    let mut s = state.clone();
                    s.insert(k, v);
                    vec![(old, s)]
                }
                _ => Vec::new(),
            },
            "get" if op.args().len() == 1 => match op.int_arg(0) {
                Some(k) => vec![(old_value(state, k), state.clone())],
                None => Vec::new(),
            },
            "remove" if op.args().len() == 1 => match op.int_arg(0) {
                Some(k) => {
                    let old = old_value(state, k);
                    let mut s = state.clone();
                    s.remove(&k);
                    vec![(old, s)]
                }
                None => Vec::new(),
            },
            "add" if op.args().len() == 2 => match (op.int_arg(0), op.int_arg(1)) {
                (Some(k), Some(d)) => {
                    let new = state.get(&k).copied().unwrap_or(0) + d;
                    let mut s = state.clone();
                    s.insert(k, new);
                    vec![(Value::from(new), s)]
                }
                _ => Vec::new(),
            },
            // Like `add` but returns `ok` instead of the new value: its
            // (operation, result) pairs commute with each other, which
            // distributed intentions lists rely on for order-insensitive
            // replay.
            "adjust" if op.args().len() == 2 => match (op.int_arg(0), op.int_arg(1)) {
                (Some(k), Some(d)) => {
                    let new = state.get(&k).copied().unwrap_or(0) + d;
                    let mut s = state.clone();
                    s.insert(k, new);
                    vec![(Value::ok(), s)]
                }
                _ => Vec::new(),
            },
            "size" if op.args().is_empty() => {
                vec![(Value::from(state.len() as i64), state.clone())]
            }
            "sum" if op.args().is_empty() => {
                vec![(Value::from(state.values().sum::<i64>()), state.clone())]
            }
            _ => Vec::new(),
        }
    }

    fn is_read_only(&self, op: &Operation) -> bool {
        matches!(op.name(), "get" | "size" | "sum")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::op;

    #[test]
    fn put_get_remove_round_trip() {
        let m = KvMapSpec::new();
        assert!(m.accepts_serial(&[
            (op("put", [1, 10]), Value::Nil),
            (op("get", [1]), Value::from(10)),
            (op("put", [1, 20]), Value::from(10)),
            (op("remove", [1]), Value::from(20)),
            (op("get", [1]), Value::Nil),
        ]));
    }

    #[test]
    fn add_treats_missing_as_zero() {
        let m = KvMapSpec::new();
        assert!(m.accepts_serial(&[
            (op("add", [3, 7]), Value::from(7)),
            (op("add", [3, -2]), Value::from(5)),
        ]));
    }

    #[test]
    fn adjust_is_order_insensitive_in_results() {
        let m = KvMapSpec::new();
        // Both orders of the same adjust pairs replay identically.
        let p = (op("adjust", [1, 7]), Value::ok());
        let q = (op("adjust", [1, -2]), Value::ok());
        let tail = (op("get", [1]), Value::from(5));
        assert!(m.accepts_serial(&[p.clone(), q.clone(), tail.clone()]));
        assert!(m.accepts_serial(&[q, p, tail]));
    }

    #[test]
    fn sum_and_size_scan_whole_map() {
        let m = KvMapSpec::with_initial([(1, 10), (2, 20)]);
        assert!(m.accepts_serial(&[
            (op("sum", [] as [i64; 0]), Value::from(30)),
            (op("size", [] as [i64; 0]), Value::from(2)),
        ]));
        assert!(!m.accepts_serial(&[(op("sum", [] as [i64; 0]), Value::from(31))]));
    }

    #[test]
    fn wrong_old_values_rejected() {
        let m = KvMapSpec::new();
        assert!(!m.accepts_serial(&[(op("put", [1, 10]), Value::from(99))]));
        assert!(!m.accepts_serial(&[(op("remove", [1]), Value::from(1))]));
    }

    #[test]
    fn read_only_classification() {
        let m = KvMapSpec::new();
        assert!(m.is_read_only(&op("get", [1])));
        assert!(m.is_read_only(&op("sum", [] as [i64; 0])));
        assert!(!m.is_read_only(&op("put", [1, 2])));
        assert!(!m.is_read_only(&op("add", [1, 2])));
    }

    #[test]
    fn ill_typed_rejected() {
        let m = KvMapSpec::new();
        assert!(m.step(&BTreeMap::new(), &op("put", [1])).is_empty());
        assert!(m
            .step(&BTreeMap::new(), &op("get", [Value::sym("k")]))
            .is_empty());
        assert!(m.step(&BTreeMap::new(), &op("sum", [1])).is_empty());
    }
}
