//! The integer-set object of §2–§3.

use crate::spec::{Operation, SequentialSpec};
use crate::value::Value;
use std::collections::BTreeSet;

/// A set of integers with `insert(i)→ok`, `delete(i)→ok`, `member(i)→bool`,
/// and a read-only `size→int` (§2).
///
/// `insert` of a present element and `delete` of an absent element are
/// permitted and return `ok` (idempotent semantics), matching the paper's
/// examples where `insert(3)` always terminates with `ok`.
///
/// # Example
///
/// ```
/// use atomicity_spec::specs::IntSetSpec;
/// use atomicity_spec::{SequentialSpec, op, Value};
/// let s = IntSetSpec::new();
/// assert!(s.accepts_serial(&[
///     (op("insert", [3]), Value::ok()),
///     (op("member", [3]), Value::from(true)),
///     (op("delete", [3]), Value::ok()),
///     (op("member", [3]), Value::from(false)),
/// ]));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IntSetSpec {
    initial: BTreeSet<i64>,
}

impl IntSetSpec {
    /// Creates the specification with the empty set as initial state.
    pub fn new() -> Self {
        IntSetSpec {
            initial: BTreeSet::new(),
        }
    }

    /// Creates the specification with a given initial membership.
    pub fn with_initial(elements: impl IntoIterator<Item = i64>) -> Self {
        IntSetSpec {
            initial: elements.into_iter().collect(),
        }
    }
}

impl SequentialSpec for IntSetSpec {
    type State = BTreeSet<i64>;

    fn initial(&self) -> Self::State {
        self.initial.clone()
    }

    fn step(&self, state: &Self::State, op: &Operation) -> Vec<(Value, Self::State)> {
        match (op.name(), op.int_arg(0)) {
            ("insert", Some(i)) if op.args().len() == 1 => {
                let mut s = state.clone();
                s.insert(i);
                vec![(Value::ok(), s)]
            }
            ("delete", Some(i)) if op.args().len() == 1 => {
                let mut s = state.clone();
                s.remove(&i);
                vec![(Value::ok(), s)]
            }
            ("member", Some(i)) if op.args().len() == 1 => {
                vec![(Value::from(state.contains(&i)), state.clone())]
            }
            ("size", None) if op.args().is_empty() => {
                vec![(Value::from(state.len() as i64), state.clone())]
            }
            _ => Vec::new(),
        }
    }

    fn is_read_only(&self, op: &Operation) -> bool {
        matches!(op.name(), "member" | "size")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::op;

    #[test]
    fn paper_serial_sequence_accepted() {
        // §3: insert(3) then member(3)→true is acceptable serially.
        let s = IntSetSpec::new();
        assert!(s.accepts_serial(&[
            (op("insert", [3]), Value::ok()),
            (op("member", [3]), Value::from(true)),
        ]));
    }

    #[test]
    fn paper_unacceptable_sequence_rejected() {
        // §3: member(2)→true on the initially-empty set is not acceptable.
        let s = IntSetSpec::new();
        assert!(!s.accepts_serial(&[(op("member", [2]), Value::from(true))]));
    }

    #[test]
    fn delete_removes_membership() {
        let s = IntSetSpec::new();
        assert!(s.accepts_serial(&[
            (op("insert", [3]), Value::ok()),
            (op("delete", [3]), Value::ok()),
            (op("member", [3]), Value::from(false)),
        ]));
        assert!(!s.accepts_serial(&[
            (op("insert", [3]), Value::ok()),
            (op("delete", [3]), Value::ok()),
            (op("member", [3]), Value::from(true)),
        ]));
    }

    #[test]
    fn idempotent_mutators() {
        let s = IntSetSpec::new();
        assert!(s.accepts_serial(&[
            (op("insert", [1]), Value::ok()),
            (op("insert", [1]), Value::ok()),
            (op("delete", [9]), Value::ok()),
            (op("size", [] as [i64; 0]), Value::from(1)),
        ]));
    }

    #[test]
    fn initial_membership_respected() {
        let s = IntSetSpec::with_initial([7, 8]);
        assert!(s.accepts_serial(&[(op("member", [7]), Value::from(true))]));
        assert!(s.accepts_serial(&[(op("size", [] as [i64; 0]), Value::from(2))]));
    }

    #[test]
    fn read_only_classification() {
        let s = IntSetSpec::new();
        assert!(s.is_read_only(&op("member", [1])));
        assert!(s.is_read_only(&op("size", [] as [i64; 0])));
        assert!(!s.is_read_only(&op("insert", [1])));
        assert!(!s.is_read_only(&op("delete", [1])));
    }

    #[test]
    fn ill_typed_rejected() {
        let s = IntSetSpec::new();
        assert!(s
            .step(&BTreeSet::new(), &op("insert", [] as [i64; 0]))
            .is_empty());
        assert!(s.step(&BTreeSet::new(), &op("insert", [1, 2])).is_empty());
        assert!(s
            .step(&BTreeSet::new(), &op("member", [Value::from(true)]))
            .is_empty());
    }
}
