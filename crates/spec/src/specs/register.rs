//! A plain read/write register.

use crate::spec::{Operation, SequentialSpec};
use crate::value::Value;

/// A single-cell read/write register: `write(v)→ok`, `read→v`.
///
/// The degenerate abstract type on which every type-specific protocol in
/// this repository collapses to its classical read/write ancestor: the
/// dynamic engine behaves like strict two-phase locking, the static engine
/// like Reed's multi-version scheme. Used by the baselines and by tests
/// that compare against the literature's read/write model.
///
/// # Example
///
/// ```
/// use atomicity_spec::specs::RegisterSpec;
/// use atomicity_spec::{SequentialSpec, op, Value};
/// let r = RegisterSpec::new();
/// assert!(r.accepts_serial(&[
///     (op("write", [7]), Value::ok()),
///     (op("read", [] as [i64; 0]), Value::from(7)),
/// ]));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegisterSpec {
    initial: i64,
}

impl RegisterSpec {
    /// Creates the specification with initial value 0.
    pub fn new() -> Self {
        RegisterSpec { initial: 0 }
    }

    /// Creates the specification with a given initial value.
    pub fn with_initial(value: i64) -> Self {
        RegisterSpec { initial: value }
    }
}

impl SequentialSpec for RegisterSpec {
    type State = i64;

    fn initial(&self) -> Self::State {
        self.initial
    }

    fn step(&self, state: &Self::State, op: &Operation) -> Vec<(Value, Self::State)> {
        match (op.name(), op.int_arg(0)) {
            ("write", Some(v)) if op.args().len() == 1 => vec![(Value::ok(), v)],
            ("read", None) if op.args().is_empty() => vec![(Value::from(*state), *state)],
            _ => Vec::new(),
        }
    }

    fn is_read_only(&self, op: &Operation) -> bool {
        op.name() == "read"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::op;

    #[test]
    fn reads_see_last_write() {
        let r = RegisterSpec::new();
        assert!(r.accepts_serial(&[
            (op("read", [] as [i64; 0]), Value::from(0)),
            (op("write", [3]), Value::ok()),
            (op("write", [5]), Value::ok()),
            (op("read", [] as [i64; 0]), Value::from(5)),
        ]));
        assert!(!r.accepts_serial(&[
            (op("write", [3]), Value::ok()),
            (op("read", [] as [i64; 0]), Value::from(4)),
        ]));
    }

    #[test]
    fn initial_value_respected() {
        let r = RegisterSpec::with_initial(42);
        assert!(r.accepts_serial(&[(op("read", [] as [i64; 0]), Value::from(42))]));
    }

    #[test]
    fn read_only_classification() {
        let r = RegisterSpec::new();
        assert!(r.is_read_only(&op("read", [] as [i64; 0])));
        assert!(!r.is_read_only(&op("write", [1])));
    }

    #[test]
    fn ill_typed_rejected() {
        let r = RegisterSpec::new();
        assert!(r.step(&0, &op("write", [] as [i64; 0])).is_empty());
        assert!(r.step(&0, &op("read", [1])).is_empty());
    }
}
