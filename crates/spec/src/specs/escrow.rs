//! An escrow counter with may-refuse debits (Malta & Martinez style
//! reservation semantics).

use crate::spec::{Operation, SequentialSpec};
use crate::value::Value;

/// An escrow counter: `credit(n)→ok`, `debit(n)→ok` *or* `debit(n)→refused`,
/// and a read-only `available→int`.
///
/// The crucial difference from [`super::BankAccountSpec`]'s `withdraw` is
/// that `debit` **may refuse even when funds suffice**: from a state `s ≥ n`
/// the specification admits both `(ok, s−n)` and `(refused, s)`. Refusal is
/// always a permissible outcome, so a debit can be serialized *anywhere* —
/// this is the decrement-if-at-least escrow discipline that Malta & Martinez
/// formalize, and it buys far more concurrency than the bank account:
/// `credit` and `debit` commute (forward) in **every** state, because the
/// refused outcome replays in both orders, whereas `deposit`/`withdraw`
/// conflict whenever the deposit could flip a refusal into a success.
///
/// The asymmetry is still visible to recovery: a `debit→ok` executed after a
/// `credit` cannot in general be reordered *before* it (the funds may not
/// have existed yet), which is exactly the right-mover/recoverability
/// distinction the synthesis pass reports.
///
/// # Example
///
/// ```
/// use atomicity_spec::specs::EscrowCounterSpec;
/// use atomicity_spec::{SequentialSpec, op, Value};
/// let e = EscrowCounterSpec::new();
/// assert!(e.accepts_serial(&[
///     (op("credit", [10]), Value::ok()),
///     (op("debit", [4]), Value::ok()),
///     (op("debit", [4]), EscrowCounterSpec::refused()), // may refuse
///     (op("debit", [7]), EscrowCounterSpec::refused()), // must refuse
///     (op("available", [] as [i64; 0]), Value::from(6)),
/// ]));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EscrowCounterSpec {
    initial: i64,
}

impl EscrowCounterSpec {
    /// Creates the specification with an empty escrow (0 available).
    pub fn new() -> Self {
        EscrowCounterSpec { initial: 0 }
    }

    /// Creates the specification with a given initial quantity.
    pub fn with_initial(available: i64) -> Self {
        EscrowCounterSpec { initial: available }
    }

    /// The result symbol for a refused debit.
    pub fn refused() -> Value {
        Value::sym("refused")
    }
}

impl SequentialSpec for EscrowCounterSpec {
    type State = i64;

    fn initial(&self) -> Self::State {
        self.initial
    }

    fn step(&self, state: &Self::State, op: &Operation) -> Vec<(Value, Self::State)> {
        match (op.name(), op.int_arg(0)) {
            ("credit", Some(n)) if op.args().len() == 1 && n >= 0 => {
                vec![(Value::ok(), state + n)]
            }
            ("debit", Some(n)) if op.args().len() == 1 && n >= 0 => {
                if *state >= n {
                    // May succeed — or refuse anyway. `Value::ok()` (Unit)
                    // sorts before `refused` (Sym), so engines that pick the
                    // least candidate prefer success when it is admissible.
                    vec![(Value::ok(), state - n), (Self::refused(), *state)]
                } else {
                    vec![(Self::refused(), *state)]
                }
            }
            ("available", None) if op.args().is_empty() => {
                vec![(Value::from(*state), *state)]
            }
            _ => Vec::new(),
        }
    }

    fn is_read_only(&self, op: &Operation) -> bool {
        op.name() == "available"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::op;

    #[test]
    fn credits_accumulate_and_debits_subtract() {
        let e = EscrowCounterSpec::new();
        assert!(e.accepts_serial(&[
            (op("credit", [10]), Value::ok()),
            (op("debit", [4]), Value::ok()),
            (op("available", [] as [i64; 0]), Value::from(6)),
        ]));
    }

    #[test]
    fn debit_may_refuse_even_with_funds() {
        let e = EscrowCounterSpec::with_initial(10);
        assert!(e.accepts_serial(&[
            (op("debit", [4]), EscrowCounterSpec::refused()),
            (op("available", [] as [i64; 0]), Value::from(10)),
        ]));
    }

    #[test]
    fn debit_must_refuse_without_funds() {
        let e = EscrowCounterSpec::new();
        assert!(!e.accepts_serial(&[(op("debit", [1]), Value::ok())]));
        assert!(e.accepts_serial(&[(op("debit", [1]), EscrowCounterSpec::refused())]));
    }

    #[test]
    fn refusal_makes_debits_reorderable_after_credits() {
        // debit(5);credit(5) with refusal, then credit(5);debit(5) with
        // success: both serial orders are admissible from 0 — the refused
        // outcome is what lets a debit serialize before the credit funding it.
        let e = EscrowCounterSpec::new();
        assert!(e.accepts_serial(&[
            (op("debit", [5]), EscrowCounterSpec::refused()),
            (op("credit", [5]), Value::ok()),
        ]));
        assert!(e.accepts_serial(&[
            (op("credit", [5]), Value::ok()),
            (op("debit", [5]), Value::ok()),
        ]));
        // But an ok-debit cannot move before the credit that funds it.
        assert!(!e.accepts_serial(&[
            (op("debit", [5]), Value::ok()),
            (op("credit", [5]), Value::ok()),
        ]));
    }

    #[test]
    fn negative_and_ill_typed_rejected() {
        let e = EscrowCounterSpec::new();
        assert!(e.step(&0, &op("credit", [-5])).is_empty());
        assert!(e.step(&0, &op("debit", [-5])).is_empty());
        assert!(e.step(&0, &op("available", [1])).is_empty());
        assert!(e.step(&0, &op("nonsense", [] as [i64; 0])).is_empty());
    }

    #[test]
    fn available_is_read_only() {
        let e = EscrowCounterSpec::new();
        assert!(e.is_read_only(&op("available", [] as [i64; 0])));
        assert!(!e.is_read_only(&op("credit", [1])));
        assert!(!e.is_read_only(&op("debit", [1])));
    }

    #[test]
    fn success_sorts_before_refusal() {
        // Engines pick the least candidate result; ok (Unit) < refused (Sym).
        let e = EscrowCounterSpec::with_initial(5);
        let mut results: Vec<Value> = e
            .step(&5, &op("debit", [3]))
            .into_iter()
            .map(|(v, _)| v)
            .collect();
        results.sort();
        assert_eq!(results[0], Value::ok());
    }
}
