//! Sequential specifications for the objects used throughout the paper.
//!
//! Each type here implements [`crate::SequentialSpec`], giving the object's
//! semantics as an executable (possibly non-deterministic) state machine:
//!
//! - [`CounterSpec`] — the counter from the optimality proof of §4.1 whose
//!   serial histories admit exactly one serialization order.
//! - [`IntSetSpec`] — the integer set of §2–§3 (`insert`/`delete`/`member`).
//! - [`FifoQueueSpec`] — the FIFO queue of §5.1 (`enqueue`/`dequeue`).
//! - [`BankAccountSpec`] — the bank account of §5.1
//!   (`deposit`/`withdraw`/`balance`, with `insufficient_funds`).
//! - [`KvMapSpec`] — an integer key/value map (`put`/`get`/`remove`/`size`),
//!   the natural substrate for multi-account workloads.
//! - [`RegisterSpec`] — a plain read/write register, the degenerate object
//!   on which type-specific protocols collapse to classical ones.
//! - [`SemiqueueSpec`] — a **non-deterministic** weak queue whose `deq`
//!   returns *some* enqueued element ([Weihl & Liskov 83]); exercises the
//!   model's support for non-functional operations (§1, §5.2).
//! - [`BoundedBufferSpec`] — a capacity-limited weak buffer whose `put`s
//!   commute exactly when there is room for both: the producer-side dual
//!   of the bank account's data-dependent withdrawals.
//! - [`EscrowCounterSpec`] — an escrow counter whose `debit` *may refuse*
//!   even when funds suffice (decrement-if-at-least, Malta & Martinez):
//!   refusal is always replayable, so credits and debits commute in every
//!   state — the maximally concurrent reservation discipline.

mod account;
mod bounded;
mod counter;
mod escrow;
mod fifo;
mod intset;
mod kvmap;
mod register;
mod semiqueue;

pub use account::BankAccountSpec;
pub use bounded::{BoundedBufferSpec, BufferState};
pub use counter::CounterSpec;
pub use escrow::EscrowCounterSpec;
pub use fifo::FifoQueueSpec;
pub use intset::IntSetSpec;
pub use kvmap::KvMapSpec;
pub use register::RegisterSpec;
pub use semiqueue::SemiqueueSpec;
