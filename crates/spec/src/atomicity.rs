//! Atomicity and the three local atomicity properties (§3, §4).
//!
//! - [`is_atomic`]: `h` is atomic iff `perm(h)` is serializable (§3).
//! - [`is_dynamic_atomic`]: `perm(h)` is serializable in **every** total
//!   order consistent with `precedes(h)` (§4.1).
//! - [`is_static_atomic`]: `perm(h)` is serializable in timestamp order,
//!   timestamps chosen at initiation (§4.2.2).
//! - [`is_hybrid_atomic`]: `perm(h)` is serializable in timestamp order,
//!   timestamps chosen at commit for updates and at initiation for
//!   read-only activities (§4.3.2).
//!
//! [`LocalProperty`] packages each property with its well-formedness
//! discipline so harnesses (e.g. experiment E5) can treat them uniformly.

use crate::event::ActivityId;
use crate::history::History;
use crate::serial::{
    is_serializable, is_serializable_in_all_consistent_orders, is_serializable_in_order,
};
use crate::spec::SystemSpec;
use crate::well_formed::WellFormedness;
use std::collections::BTreeSet;

/// Whether `h` is atomic: `perm(h)` is serializable (§3).
pub fn is_atomic(h: &History, spec: &SystemSpec) -> bool {
    is_serializable(&h.perm(), spec)
}

/// Whether `h` is dynamic atomic: `perm(h)` is serializable in every total
/// order consistent with `precedes(h)` (§4.1).
///
/// Note the asymmetry the paper builds in: `precedes` is computed on the
/// whole history `h` (commit order is real-time information), while the
/// serializability requirement applies to `perm(h)`.
pub fn is_dynamic_atomic(h: &History, spec: &SystemSpec) -> bool {
    let perm = h.perm();
    let committed: BTreeSet<ActivityId> = h.committed_activities();
    let pairs: BTreeSet<(ActivityId, ActivityId)> = h
        .precedes()
        .into_iter()
        .filter(|(a, b)| committed.contains(a) && committed.contains(b))
        .collect();
    is_serializable_in_all_consistent_orders(&perm, spec, &pairs)
}

/// The timestamp order of the committed activities of `h`: committed
/// activities sorted by their timestamps.
///
/// Returns `None` if some committed activity has no timestamp event —
/// the history then cannot be judged against a timestamp-ordered property.
pub fn timestamp_order(h: &History) -> Option<Vec<ActivityId>> {
    let ts = h.timestamps();
    let committed = h.committed_activities();
    let mut order = Vec::with_capacity(committed.len());
    for a in &committed {
        if !ts.contains_key(a) {
            return None;
        }
        order.push(*a);
    }
    order.sort_by_key(|a| ts[a]);
    Some(order)
}

/// Whether `h` is static atomic: `perm(h)` is serializable in timestamp
/// order, with timestamps chosen at initiation (§4.2.2).
pub fn is_static_atomic(h: &History, spec: &SystemSpec) -> bool {
    match timestamp_order(h) {
        Some(order) => is_serializable_in_order(&h.perm(), spec, &order),
        None => false,
    }
}

/// Whether `h` is hybrid atomic: `perm(h)` is serializable in timestamp
/// order, with update timestamps chosen at commit and read-only timestamps
/// at initiation (§4.3.2).
///
/// The decision procedure is the same as for static atomicity — the two
/// properties differ in *which events carry the timestamps* (and hence in
/// their well-formedness disciplines), which
/// [`History::timestamps`] already abstracts over.
pub fn is_hybrid_atomic(h: &History, spec: &SystemSpec) -> bool {
    is_static_atomic(h, spec)
}

/// A local atomicity property, packaged for uniform treatment.
///
/// A *local atomicity property* is a property `P` of object specifications
/// such that if every object in a system satisfies `P`, every computation
/// of the system is atomic (§4). The three instances are
/// [`DynamicAtomicity`], [`StaticAtomicity`], and [`HybridAtomicity`];
/// Theorems 1, 4, and 5 of the paper are checked as property tests against
/// these implementations.
pub trait LocalProperty: Send + Sync {
    /// Human-readable name (`"dynamic"`, `"static"`, `"hybrid"`).
    fn name(&self) -> &'static str;

    /// The well-formedness discipline histories must satisfy before the
    /// property is meaningful.
    fn well_formedness(&self) -> WellFormedness;

    /// Whether the (well-formed) history `h` satisfies the property.
    fn holds(&self, h: &History, spec: &SystemSpec) -> bool;
}

/// Dynamic atomicity (§4.1): serializable in every order consistent with
/// `precedes`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DynamicAtomicity;

impl LocalProperty for DynamicAtomicity {
    fn name(&self) -> &'static str {
        "dynamic"
    }

    fn well_formedness(&self) -> WellFormedness {
        WellFormedness::Basic
    }

    fn holds(&self, h: &History, spec: &SystemSpec) -> bool {
        is_dynamic_atomic(h, spec)
    }
}

/// Static atomicity (§4.2): serializable in initiation-timestamp order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StaticAtomicity;

impl LocalProperty for StaticAtomicity {
    fn name(&self) -> &'static str {
        "static"
    }

    fn well_formedness(&self) -> WellFormedness {
        WellFormedness::Static
    }

    fn holds(&self, h: &History, spec: &SystemSpec) -> bool {
        is_static_atomic(h, spec)
    }
}

/// Hybrid atomicity (§4.3): serializable in mixed commit/initiation
/// timestamp order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HybridAtomicity;

impl LocalProperty for HybridAtomicity {
    fn name(&self) -> &'static str {
        "hybrid"
    }

    fn well_formedness(&self) -> WellFormedness {
        WellFormedness::Hybrid
    }

    fn holds(&self, h: &History, spec: &SystemSpec) -> bool {
        is_hybrid_atomic(h, spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, ObjectId};
    use crate::spec::op;
    use crate::specs::IntSetSpec;
    use crate::value::Value;

    fn a() -> ActivityId {
        1.into()
    }
    fn b() -> ActivityId {
        2.into()
    }
    fn c() -> ActivityId {
        3.into()
    }
    fn x() -> ObjectId {
        1.into()
    }

    fn set_spec() -> SystemSpec {
        SystemSpec::new().with_object(x(), IntSetSpec::new())
    }

    #[test]
    fn paper_perm_example_is_atomic() {
        // §3: aborted delete(3) by c is discarded; a and b serialize b-a.
        let h = History::from_events(vec![
            Event::invoke(a(), x(), op("member", [3])),
            Event::invoke(b(), x(), op("insert", [3])),
            Event::respond(b(), x(), Value::ok()),
            Event::respond(a(), x(), Value::from(true)),
            Event::commit(b(), x()),
            Event::invoke(c(), x(), op("delete", [3])),
            Event::respond(c(), x(), Value::ok()),
            Event::commit(a(), x()),
            Event::abort(c(), x()),
        ]);
        assert!(is_atomic(&h, &set_spec()));
    }

    #[test]
    fn impossible_observation_is_not_atomic() {
        // §3: member(2)→true on an initially-empty set.
        let h = History::from_events(vec![
            Event::invoke(a(), x(), op("member", [2])),
            Event::respond(a(), x(), Value::from(true)),
            Event::commit(a(), x()),
        ]);
        assert!(!is_atomic(&h, &set_spec()));
    }

    /// §4.1 first example: atomic but NOT dynamic atomic — a's member(3)
    /// must be serialized before b's committed insert, yet ⟨a,b⟩ is not in
    /// precedes, so orders b-a-c and b-c-a must also work and do not.
    fn paper_not_dynamic() -> History {
        History::from_events(vec![
            Event::invoke(a(), x(), op("member", [3])),
            Event::invoke(b(), x(), op("insert", [3])),
            Event::respond(b(), x(), Value::ok()),
            Event::respond(a(), x(), Value::from(false)),
            Event::invoke(c(), x(), op("member", [3])),
            Event::commit(b(), x()),
            Event::respond(c(), x(), Value::from(true)),
            Event::commit(a(), x()),
            Event::commit(c(), x()),
        ])
    }

    #[test]
    fn paper_atomic_but_not_dynamic_example() {
        let h = paper_not_dynamic();
        let spec = set_spec();
        assert!(is_atomic(&h, &spec));
        assert!(!is_dynamic_atomic(&h, &spec));
        // precedes(h) is exactly {⟨b,c⟩}.
        let committed = h.committed_activities();
        let pairs: Vec<_> = h
            .precedes()
            .into_iter()
            .filter(|(p, q)| committed.contains(p) && committed.contains(q))
            .collect();
        assert_eq!(pairs, vec![(b(), c())]);
    }

    #[test]
    fn paper_dynamic_example() {
        // §4.1 second example: a queries member(2) instead — serializable
        // in a-b-c, b-a-c, and b-c-a, hence dynamic atomic.
        let h = History::from_events(vec![
            Event::invoke(a(), x(), op("member", [2])),
            Event::invoke(b(), x(), op("insert", [3])),
            Event::respond(b(), x(), Value::ok()),
            Event::respond(a(), x(), Value::from(false)),
            Event::invoke(c(), x(), op("member", [3])),
            Event::commit(b(), x()),
            Event::respond(c(), x(), Value::from(true)),
            Event::commit(a(), x()),
            Event::commit(c(), x()),
        ]);
        assert!(is_dynamic_atomic(&h, &set_spec()));
    }

    #[test]
    fn paper_atomic_but_not_static_example() {
        // §4.2.2: serializable a-b, but timestamp order is b-a.
        let h = History::from_events(vec![
            Event::initiate(a(), x(), 2),
            Event::invoke(a(), x(), op("member", [3])),
            Event::respond(a(), x(), Value::from(false)),
            Event::commit(a(), x()),
            Event::initiate(b(), x(), 1),
            Event::invoke(b(), x(), op("insert", [3])),
            Event::respond(b(), x(), Value::ok()),
            Event::commit(b(), x()),
        ]);
        let spec = set_spec();
        assert!(is_atomic(&h, &spec));
        assert!(!is_static_atomic(&h, &spec));
        assert_eq!(timestamp_order(&h), Some(vec![b(), a()]));
    }

    #[test]
    fn paper_static_example() {
        // §4.2.2: insert by a (ts 2) executes first but serializes after
        // b's member (ts 1) — static atomic.
        let h = History::from_events(vec![
            Event::initiate(a(), x(), 2),
            Event::invoke(a(), x(), op("insert", [3])),
            Event::respond(a(), x(), Value::ok()),
            Event::commit(a(), x()),
            Event::initiate(b(), x(), 1),
            Event::invoke(b(), x(), op("member", [3])),
            Event::respond(b(), x(), Value::from(false)),
            Event::commit(b(), x()),
        ]);
        assert!(is_static_atomic(&h, &set_spec()));
    }

    #[test]
    fn hybrid_example_accepts_and_rejects() {
        // Update a commits with ts 2; reader r initiated with ts 1 and
        // correctly does NOT see the insert.
        let r = ActivityId::new(9);
        let good = History::from_events(vec![
            Event::invoke(a(), x(), op("insert", [3])),
            Event::respond(a(), x(), Value::ok()),
            Event::commit_ts(a(), x(), 2),
            Event::initiate(r, x(), 1),
            Event::invoke(r, x(), op("member", [3])),
            Event::respond(r, x(), Value::from(false)),
            Event::commit(r, x()),
        ]);
        let spec = set_spec();
        assert!(is_hybrid_atomic(&good, &spec));
        // Same history but the reader claims to see the later insert.
        let bad = History::from_events(vec![
            Event::invoke(a(), x(), op("insert", [3])),
            Event::respond(a(), x(), Value::ok()),
            Event::commit_ts(a(), x(), 2),
            Event::initiate(r, x(), 1),
            Event::invoke(r, x(), op("member", [3])),
            Event::respond(r, x(), Value::from(true)),
            Event::commit(r, x()),
        ]);
        assert!(is_atomic(&bad, &spec)); // serializable a then r
        assert!(!is_hybrid_atomic(&bad, &spec)); // but not in ts order r-a
    }

    #[test]
    fn missing_timestamps_fail_timestamp_properties() {
        let h = History::from_events(vec![
            Event::invoke(a(), x(), op("insert", [3])),
            Event::respond(a(), x(), Value::ok()),
            Event::commit(a(), x()),
        ]);
        assert!(timestamp_order(&h).is_none());
        assert!(!is_static_atomic(&h, &set_spec()));
    }

    #[test]
    fn local_property_trait_objects() {
        let props: Vec<Box<dyn LocalProperty>> = vec![
            Box::new(DynamicAtomicity),
            Box::new(StaticAtomicity),
            Box::new(HybridAtomicity),
        ];
        let names: Vec<_> = props.iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["dynamic", "static", "hybrid"]);
        assert_eq!(DynamicAtomicity.well_formedness(), WellFormedness::Basic);
        assert_eq!(StaticAtomicity.well_formedness(), WellFormedness::Static);
        assert_eq!(HybridAtomicity.well_formedness(), WellFormedness::Hybrid);
        // The empty history satisfies everything.
        let h = History::new();
        let spec = set_spec();
        for p in &props {
            assert!(p.holds(&h, &spec), "{} fails empty history", p.name());
        }
    }

    #[test]
    fn dynamic_atomicity_ignores_uncommitted_precedes_pairs() {
        // c never commits; pairs involving c must not constrain the orders.
        let h = History::from_events(vec![
            Event::invoke(b(), x(), op("insert", [3])),
            Event::respond(b(), x(), Value::ok()),
            Event::commit(b(), x()),
            Event::invoke(c(), x(), op("member", [3])),
            Event::respond(c(), x(), Value::from(true)),
            // c stays active.
        ]);
        assert!(is_dynamic_atomic(&h, &set_spec()));
    }
}
