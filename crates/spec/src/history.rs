//! Histories (event sequences) and their derived structure.
//!
//! A computation is modeled as a finite sequence of events (§2). This module
//! provides the projections and derived relations the paper's definitions
//! are built from:
//!
//! - `h|x` and `h|a` — [`History::project_object`], [`History::project_activity`]
//! - `perm(h)` — [`History::perm`]: events of committed activities only (§3)
//! - `updates(h)` — [`History::updates`]: events of update activities (§4.3.2)
//! - `precedes(h)` — [`History::precedes`]: the commit-order relation that
//!   dynamic atomicity serializes against (§4.1)

use crate::event::{ActivityId, Event, EventKind, ObjectId, Timestamp};
use crate::spec::OpResult;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A finite sequence of events: the paper's model of a computation.
///
/// # Example
///
/// ```
/// use atomicity_spec::{History, Event, op, Value};
/// let (a, x) = (1.into(), 1.into());
/// let h = History::from_events(vec![
///     Event::invoke(a, x, op("member", [2])),
///     Event::respond(a, x, Value::from(false)),
///     Event::commit(a, x),
/// ]);
/// assert_eq!(h.len(), 3);
/// assert!(h.committed_activities().contains(&a));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct History {
    events: Vec<Event>,
}

impl History {
    /// Creates an empty history.
    pub fn new() -> Self {
        History { events: Vec::new() }
    }

    /// Creates a history from a sequence of events.
    pub fn from_events(events: impl IntoIterator<Item = Event>) -> Self {
        History {
            events: events.into_iter().collect(),
        }
    }

    /// Appends an event.
    pub fn push(&mut self, event: Event) {
        self.events.push(event);
    }

    /// The underlying event slice, in computation order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the history contains no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates over the events in order.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.events.iter()
    }

    /// `h|x`: the subsequence of events in which object `x` participates.
    pub fn project_object(&self, x: ObjectId) -> History {
        History::from_events(self.events.iter().filter(|e| e.object == x).cloned())
    }

    /// `h|a`: the subsequence of events in which activity `a` participates.
    pub fn project_activity(&self, a: ActivityId) -> History {
        History::from_events(self.events.iter().filter(|e| e.activity == a).cloned())
    }

    /// All activities appearing in the history, in order of first appearance.
    pub fn activities(&self) -> Vec<ActivityId> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for e in &self.events {
            if seen.insert(e.activity) {
                out.push(e.activity);
            }
        }
        out
    }

    /// All objects appearing in the history, in order of first appearance.
    pub fn objects(&self) -> Vec<ObjectId> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for e in &self.events {
            if seen.insert(e.object) {
                out.push(e.object);
            }
        }
        out
    }

    /// Activities with at least one commit event (plain or timestamped).
    pub fn committed_activities(&self) -> BTreeSet<ActivityId> {
        self.events
            .iter()
            .filter(|e| e.is_commit())
            .map(|e| e.activity)
            .collect()
    }

    /// Activities with at least one abort event.
    pub fn aborted_activities(&self) -> BTreeSet<ActivityId> {
        self.events
            .iter()
            .filter(|e| e.is_abort())
            .map(|e| e.activity)
            .collect()
    }

    /// Activities that neither committed nor aborted.
    pub fn active_activities(&self) -> BTreeSet<ActivityId> {
        let committed = self.committed_activities();
        let aborted = self.aborted_activities();
        self.activities()
            .into_iter()
            .filter(|a| !committed.contains(a) && !aborted.contains(a))
            .collect()
    }

    /// `perm(h)`: the subsequence consisting of all events involving
    /// activities that commit in `h`, and no others (§3).
    ///
    /// This formalizes recoverability: aborted and still-active activities
    /// are discarded, and atomicity requires the remainder to be
    /// serializable.
    pub fn perm(&self) -> History {
        let committed = self.committed_activities();
        History::from_events(
            self.events
                .iter()
                .filter(|e| committed.contains(&e.activity))
                .cloned(),
        )
    }

    /// `updates(h)`: the subsequence consisting of all events involving
    /// update activities (§4.3.2).
    ///
    /// Under hybrid atomicity an activity is an update iff it commits with
    /// a timestamped commit event or has no initiation event; read-only
    /// activities announce themselves with `initiate(t)` events.
    pub fn updates(&self) -> History {
        let read_only = self.read_only_activities();
        History::from_events(
            self.events
                .iter()
                .filter(|e| !read_only.contains(&e.activity))
                .cloned(),
        )
    }

    /// The activities that declared themselves read-only by initiating with
    /// a timestamp and never committing with one (hybrid model, §4.3.1).
    pub fn read_only_activities(&self) -> BTreeSet<ActivityId> {
        let mut initiated = BTreeSet::new();
        let mut ts_committed = BTreeSet::new();
        for e in &self.events {
            match e.kind {
                EventKind::Initiate(_) => {
                    initiated.insert(e.activity);
                }
                EventKind::CommitTs(_) => {
                    ts_committed.insert(e.activity);
                }
                _ => {}
            }
        }
        initiated.difference(&ts_committed).copied().collect()
    }

    /// The timestamp of each activity, taken from its initiation and/or
    /// timestamped commit events.
    ///
    /// Well-formedness guarantees each activity uses a single timestamp;
    /// this accessor returns the first one found per activity.
    pub fn timestamps(&self) -> BTreeMap<ActivityId, Timestamp> {
        let mut out = BTreeMap::new();
        for e in &self.events {
            if let Some(t) = e.kind.timestamp() {
                out.entry(e.activity).or_insert(t);
            }
        }
        out
    }

    /// `precedes(h)`: `⟨a,b⟩ ∈ precedes(h)` iff there exists an operation
    /// invoked by `b` that terminates after `a` commits (§4.1).
    ///
    /// For well-formed histories this relation is a partial order; dynamic
    /// atomicity requires serializability in *every* total order consistent
    /// with it.
    ///
    /// # Example
    ///
    /// The paper's example: if `b`'s response comes after `a`'s commit, the
    /// pair `⟨a,b⟩` is present:
    ///
    /// ```
    /// use atomicity_spec::{History, Event, op, Value};
    /// let (a, b, x) = (1.into(), 2.into(), 1.into());
    /// let h = History::from_events(vec![
    ///     Event::invoke(a, x, op("insert", [3])),
    ///     Event::respond(a, x, Value::ok()),
    ///     Event::commit(a, x),
    ///     Event::invoke(b, x, op("member", [3])),
    ///     Event::respond(b, x, Value::from(true)),
    /// ]);
    /// assert!(h.precedes().contains(&(a, b)));
    /// ```
    pub fn precedes(&self) -> BTreeSet<(ActivityId, ActivityId)> {
        let mut committed: BTreeSet<ActivityId> = BTreeSet::new();
        let mut pairs = BTreeSet::new();
        for e in &self.events {
            match &e.kind {
                EventKind::Respond(_) => {
                    for &a in &committed {
                        if a != e.activity {
                            pairs.insert((a, e.activity));
                        }
                    }
                }
                EventKind::Commit | EventKind::CommitTs(_) => {
                    committed.insert(e.activity);
                }
                _ => {}
            }
        }
        pairs
    }

    /// The completed (invocation, response) pairs of activity `a` at object
    /// `x`, in program order. Pending invocations (no matching response)
    /// are omitted.
    pub fn complete_ops(&self, a: ActivityId, x: ObjectId) -> Vec<OpResult> {
        let mut out = Vec::new();
        let mut pending = None;
        for e in &self.events {
            if e.activity != a || e.object != x {
                continue;
            }
            match &e.kind {
                EventKind::Invoke(op) => pending = Some(op.clone()),
                EventKind::Respond(v) => {
                    if let Some(op) = pending.take() {
                        out.push((op, v.clone()));
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// The completed operations of activity `a`, grouped by object, in
    /// program order within each object.
    pub fn ops_by_object(&self, a: ActivityId) -> BTreeMap<ObjectId, Vec<OpResult>> {
        let mut out: BTreeMap<ObjectId, Vec<OpResult>> = BTreeMap::new();
        let mut pending: BTreeMap<ObjectId, crate::spec::Operation> = BTreeMap::new();
        for e in &self.events {
            if e.activity != a {
                continue;
            }
            match &e.kind {
                EventKind::Invoke(op) => {
                    pending.insert(e.object, op.clone());
                }
                EventKind::Respond(v) => {
                    if let Some(op) = pending.remove(&e.object) {
                        out.entry(e.object).or_default().push((op, v.clone()));
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// Concatenates two histories.
    pub fn concat(&self, other: &History) -> History {
        let mut events = self.events.clone();
        events.extend(other.events.iter().cloned());
        History { events }
    }

    /// Whether `self` and `other` are *equivalent*: every activity has the
    /// same view in both, i.e. `h|a == k|a` for every activity `a` (§3).
    pub fn is_equivalent(&self, other: &History) -> bool {
        let mut acts: BTreeSet<ActivityId> = self.activities().into_iter().collect();
        acts.extend(other.activities());
        acts.iter()
            .all(|&a| self.project_activity(a) == other.project_activity(a))
    }
}

impl FromIterator<Event> for History {
    fn from_iter<I: IntoIterator<Item = Event>>(iter: I) -> Self {
        History::from_events(iter)
    }
}

impl Extend<Event> for History {
    fn extend<I: IntoIterator<Item = Event>>(&mut self, iter: I) {
        self.events.extend(iter);
    }
}

impl IntoIterator for History {
    type Item = Event;
    type IntoIter = std::vec::IntoIter<Event>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.into_iter()
    }
}

impl<'a> IntoIterator for &'a History {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

impl fmt::Display for History {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.events {
            writeln!(f, "{e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::op;
    use crate::value::Value;

    fn ids() -> (ActivityId, ActivityId, ActivityId, ObjectId, ObjectId) {
        (1.into(), 2.into(), 3.into(), 1.into(), 2.into())
    }

    /// The §3 example history used throughout the paper.
    fn paper_perm_example() -> History {
        let (a, b, c, x, _) = ids();
        History::from_events(vec![
            Event::invoke(a, x, op("member", [3])),
            Event::invoke(b, x, op("insert", [3])),
            Event::respond(b, x, Value::ok()),
            Event::respond(a, x, Value::from(true)),
            Event::commit(b, x),
            Event::invoke(c, x, op("delete", [3])),
            Event::respond(c, x, Value::ok()),
            Event::commit(a, x),
            Event::abort(c, x),
        ])
    }

    #[test]
    fn perm_discards_aborted_and_active() {
        let (a, b, c, _, _) = ids();
        let h = paper_perm_example();
        let p = h.perm();
        assert_eq!(p.len(), 6);
        assert!(p.activities().contains(&a));
        assert!(p.activities().contains(&b));
        assert!(!p.activities().contains(&c));
        assert_eq!(
            h.aborted_activities().into_iter().collect::<Vec<_>>(),
            vec![c]
        );
    }

    #[test]
    fn projections_partition_events() {
        let (a, _, _, x, y) = ids();
        let mut h = paper_perm_example();
        h.push(Event::invoke(a, y, op("read", [] as [i64; 0])));
        let hx = h.project_object(x);
        let hy = h.project_object(y);
        assert_eq!(hx.len() + hy.len(), h.len());
        let ha = h.project_activity(a);
        assert!(ha.iter().all(|e| e.activity == a));
    }

    #[test]
    fn precedes_empty_when_commit_after_responses() {
        // Paper §4.1 first example: commit events after all responses
        // produce the empty relation.
        let (a, b, _, x, _) = ids();
        let h = History::from_events(vec![
            Event::invoke(a, x, op("insert", [1])),
            Event::respond(a, x, Value::ok()),
            Event::invoke(b, x, op("insert", [2])),
            Event::respond(b, x, Value::ok()),
            Event::commit(a, x),
            Event::commit(b, x),
        ]);
        assert!(h.precedes().is_empty());
    }

    #[test]
    fn precedes_pair_when_response_after_commit() {
        // Paper §4.1 second example: ⟨a,b⟩ ∈ precedes(h).
        let (a, b, _, x, _) = ids();
        let h = History::from_events(vec![
            Event::invoke(a, x, op("insert", [1])),
            Event::respond(a, x, Value::ok()),
            Event::commit(a, x),
            Event::invoke(b, x, op("insert", [2])),
            Event::respond(b, x, Value::ok()),
            Event::commit(b, x),
        ]);
        let p = h.precedes();
        assert_eq!(p.len(), 1);
        assert!(p.contains(&(a, b)));
    }

    #[test]
    fn precedes_is_subset_for_projections() {
        // Lemma 2: precedes(h|x) ⊆ precedes(h).
        let (a, _, _, x, y) = ids();
        let mut h = paper_perm_example();
        h.push(Event::invoke(a, y, op("read", [] as [i64; 0])));
        h.push(Event::respond(a, y, Value::Nil));
        let whole = h.precedes();
        for obj in [x, y] {
            for pair in h.project_object(obj).precedes() {
                assert!(whole.contains(&pair));
            }
        }
    }

    #[test]
    fn complete_ops_ignores_pending() {
        let (a, _, _, x, _) = ids();
        let h = History::from_events(vec![
            Event::invoke(a, x, op("member", [1])),
            Event::respond(a, x, Value::from(false)),
            Event::invoke(a, x, op("insert", [1])), // never terminates
        ]);
        let ops = h.complete_ops(a, x);
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].0.name(), "member");
    }

    #[test]
    fn equivalence_is_per_activity_view() {
        let (a, b, _, x, _) = ids();
        let h1 = History::from_events(vec![
            Event::invoke(a, x, op("insert", [1])),
            Event::respond(a, x, Value::ok()),
            Event::invoke(b, x, op("insert", [2])),
            Event::respond(b, x, Value::ok()),
        ]);
        // Swap the two activities' (non-interleaved) blocks: same views.
        let h2 = History::from_events(vec![
            Event::invoke(b, x, op("insert", [2])),
            Event::respond(b, x, Value::ok()),
            Event::invoke(a, x, op("insert", [1])),
            Event::respond(a, x, Value::ok()),
        ]);
        assert!(h1.is_equivalent(&h2));
        // Change a result: views differ.
        let h3 = History::from_events(vec![
            Event::invoke(b, x, op("insert", [2])),
            Event::respond(b, x, Value::Nil),
            Event::invoke(a, x, op("insert", [1])),
            Event::respond(a, x, Value::ok()),
        ]);
        assert!(!h1.is_equivalent(&h3));
    }

    #[test]
    fn read_only_and_update_classification() {
        let (a, _, _, x, _) = ids();
        let r = ActivityId::new(9);
        let h = History::from_events(vec![
            Event::invoke(a, x, op("insert", [3])),
            Event::respond(a, x, Value::ok()),
            Event::commit_ts(a, x, 2),
            Event::initiate(r, x, 1),
            Event::invoke(r, x, op("member", [3])),
            Event::respond(r, x, Value::from(false)),
            Event::commit(r, x),
        ]);
        assert_eq!(
            h.read_only_activities().into_iter().collect::<Vec<_>>(),
            vec![r]
        );
        let u = h.updates();
        assert!(u.activities().contains(&a));
        assert!(!u.activities().contains(&r));
        let ts = h.timestamps();
        assert_eq!(ts[&a], 2);
        assert_eq!(ts[&r], 1);
    }

    #[test]
    fn collection_traits() {
        let (a, _, _, x, _) = ids();
        let evs = vec![
            Event::invoke(a, x, op("member", [1])),
            Event::respond(a, x, Value::from(false)),
        ];
        let h: History = evs.clone().into_iter().collect();
        assert_eq!(h.len(), 2);
        let mut h2 = History::new();
        h2.extend(evs);
        assert_eq!(h, h2);
        let collected: Vec<Event> = h2.into_iter().collect();
        assert_eq!(collected.len(), 2);
    }

    #[test]
    fn display_one_event_per_line() {
        let h = paper_perm_example();
        let s = h.to_string();
        assert_eq!(s.lines().count(), h.len());
        assert!(s.starts_with("<member(3),x1,a1>"));
    }
}
