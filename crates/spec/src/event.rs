//! Events: the atoms of computation in the paper's model.
//!
//! A computation is a finite sequence of events (§2). An event is the
//! invocation of an operation on an object by an activity, the termination
//! of an invocation, the commit of an activity at an object, the abort of an
//! activity at an object, or — in the extended models of §4.2 and §4.3 — the
//! initiation of an activity at an object with a timestamp, or a commit
//! carrying a timestamp.

use crate::spec::Operation;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies an activity (transaction / thread of control).
///
/// Activities are the active entities of the system (§2). The identifier is
/// opaque; displayed as `a1`, `a2`, … mirroring the paper's `a`, `b`, `c`.
///
/// ```
/// use atomicity_spec::ActivityId;
/// let a = ActivityId::new(1);
/// assert_eq!(a.to_string(), "a1");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct ActivityId(u32);

impl ActivityId {
    /// Creates an activity identifier from a raw index.
    pub const fn new(raw: u32) -> Self {
        ActivityId(raw)
    }

    /// The raw index.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl From<u32> for ActivityId {
    fn from(raw: u32) -> Self {
        ActivityId(raw)
    }
}

impl fmt::Display for ActivityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// Identifies an object (an instance of an atomic abstract data type).
///
/// Objects contain the state of the system and are the sole path by which
/// activities pass information among themselves (§2).
///
/// ```
/// use atomicity_spec::ObjectId;
/// let x = ObjectId::new(1);
/// assert_eq!(x.to_string(), "x1");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct ObjectId(u32);

impl ObjectId {
    /// Creates an object identifier from a raw index.
    pub const fn new(raw: u32) -> Self {
        ObjectId(raw)
    }

    /// The raw index.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl From<u32> for ObjectId {
    fn from(raw: u32) -> Self {
        ObjectId(raw)
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A timestamp drawn from a countable well-ordered set (§4.2.1).
///
/// The paper uses natural numbers; so do we.
pub type Timestamp = u64;

/// The kind of an event, together with its payload.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventKind {
    /// `<op(args),x,a>` — activity `a` invokes an operation on object `x`.
    Invoke(Operation),
    /// `<result,x,a>` — an invocation by `a` on `x` terminates with a result.
    Respond(Value),
    /// `<commit,x,a>` — `a` commits at `x` (basic model, and read-only
    /// activities under hybrid atomicity).
    Commit,
    /// `<commit(t),x,a>` — `a` commits at `x` choosing timestamp `t`
    /// (update activities under hybrid atomicity, §4.3.1).
    CommitTs(Timestamp),
    /// `<abort,x,a>` — `a` aborts at `x`.
    Abort,
    /// `<initiate(t),x,a>` — `a` initiates at `x` with timestamp `t`
    /// (all activities under static atomicity, §4.2.1; read-only activities
    /// under hybrid atomicity, §4.3.1).
    Initiate(Timestamp),
}

impl EventKind {
    /// Whether this is a commit event (with or without a timestamp).
    pub fn is_commit(&self) -> bool {
        matches!(self, EventKind::Commit | EventKind::CommitTs(_))
    }

    /// The timestamp carried by this event, if any.
    pub fn timestamp(&self) -> Option<Timestamp> {
        match self {
            EventKind::CommitTs(t) | EventKind::Initiate(t) => Some(*t),
            _ => None,
        }
    }
}

/// A single event: the participating activity and object, plus the kind.
///
/// Written in the paper as `<payload, object, activity>`, e.g.
/// `<insert(3),x,a>` or `<commit,x,a>`.
///
/// ```
/// use atomicity_spec::{Event, op, Value};
/// let e = Event::invoke(1.into(), 1.into(), op("insert", [3]));
/// assert_eq!(e.to_string(), "<insert(3),x1,a1>");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Event {
    /// The activity participating in the event.
    pub activity: ActivityId,
    /// The object participating in the event.
    pub object: ObjectId,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Creates an invocation event `<op,x,a>`.
    pub fn invoke(activity: ActivityId, object: ObjectId, operation: Operation) -> Self {
        Event {
            activity,
            object,
            kind: EventKind::Invoke(operation),
        }
    }

    /// Creates a termination (response) event `<result,x,a>`.
    pub fn respond(activity: ActivityId, object: ObjectId, result: Value) -> Self {
        Event {
            activity,
            object,
            kind: EventKind::Respond(result),
        }
    }

    /// Creates a commit event `<commit,x,a>`.
    pub fn commit(activity: ActivityId, object: ObjectId) -> Self {
        Event {
            activity,
            object,
            kind: EventKind::Commit,
        }
    }

    /// Creates a timestamped commit event `<commit(t),x,a>`.
    pub fn commit_ts(activity: ActivityId, object: ObjectId, ts: Timestamp) -> Self {
        Event {
            activity,
            object,
            kind: EventKind::CommitTs(ts),
        }
    }

    /// Creates an abort event `<abort,x,a>`.
    pub fn abort(activity: ActivityId, object: ObjectId) -> Self {
        Event {
            activity,
            object,
            kind: EventKind::Abort,
        }
    }

    /// Creates an initiation event `<initiate(t),x,a>`.
    pub fn initiate(activity: ActivityId, object: ObjectId, ts: Timestamp) -> Self {
        Event {
            activity,
            object,
            kind: EventKind::Initiate(ts),
        }
    }

    /// Whether this is a commit event (plain or timestamped).
    pub fn is_commit(&self) -> bool {
        self.kind.is_commit()
    }

    /// Whether this is an abort event.
    pub fn is_abort(&self) -> bool {
        matches!(self.kind, EventKind::Abort)
    }

    /// Whether this is an invocation event.
    pub fn is_invoke(&self) -> bool {
        matches!(self.kind, EventKind::Invoke(_))
    }

    /// Whether this is a termination (response) event.
    pub fn is_respond(&self) -> bool {
        matches!(self.kind, EventKind::Respond(_))
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            EventKind::Invoke(op) => write!(f, "<{},{},{}>", op, self.object, self.activity),
            EventKind::Respond(v) => write!(f, "<{},{},{}>", v, self.object, self.activity),
            EventKind::Commit => write!(f, "<commit,{},{}>", self.object, self.activity),
            EventKind::CommitTs(t) => write!(f, "<commit({t}),{},{}>", self.object, self.activity),
            EventKind::Abort => write!(f, "<abort,{},{}>", self.object, self.activity),
            EventKind::Initiate(t) => {
                write!(f, "<initiate({t}),{},{}>", self.object, self.activity)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::op;

    #[test]
    fn display_matches_paper_notation() {
        let a = ActivityId::new(1);
        let x = ObjectId::new(1);
        assert_eq!(
            Event::invoke(a, x, op("insert", [3])).to_string(),
            "<insert(3),x1,a1>"
        );
        assert_eq!(Event::respond(a, x, Value::ok()).to_string(), "<ok,x1,a1>");
        assert_eq!(
            Event::respond(a, x, Value::from(true)).to_string(),
            "<true,x1,a1>"
        );
        assert_eq!(Event::commit(a, x).to_string(), "<commit,x1,a1>");
        assert_eq!(Event::commit_ts(a, x, 2).to_string(), "<commit(2),x1,a1>");
        assert_eq!(Event::abort(a, x).to_string(), "<abort,x1,a1>");
        assert_eq!(Event::initiate(a, x, 1).to_string(), "<initiate(1),x1,a1>");
    }

    #[test]
    fn kind_predicates() {
        let a = ActivityId::new(1);
        let x = ObjectId::new(2);
        assert!(Event::commit(a, x).is_commit());
        assert!(Event::commit_ts(a, x, 9).is_commit());
        assert!(!Event::abort(a, x).is_commit());
        assert!(Event::abort(a, x).is_abort());
        assert!(Event::invoke(a, x, op("read", [] as [i64; 0])).is_invoke());
        assert!(Event::respond(a, x, Value::Nil).is_respond());
    }

    #[test]
    fn timestamps_are_extracted() {
        assert_eq!(EventKind::CommitTs(7).timestamp(), Some(7));
        assert_eq!(EventKind::Initiate(3).timestamp(), Some(3));
        assert_eq!(EventKind::Commit.timestamp(), None);
        assert_eq!(EventKind::Abort.timestamp(), None);
    }

    #[test]
    fn ids_order_and_display() {
        assert!(ActivityId::new(1) < ActivityId::new(2));
        assert!(ObjectId::new(3) > ObjectId::new(1));
        assert_eq!(ActivityId::from(5u32).raw(), 5);
        assert_eq!(ObjectId::from(6u32).raw(), 6);
    }
}
