//! Formal model of atomic activities and data-dependent concurrency control.
//!
//! This crate is an executable rendition of the formal model in Weihl,
//! *"Data-dependent Concurrency Control and Recovery"* (PODC 1983):
//!
//! - **Events and histories** ([`Event`], [`History`]): computations are
//!   finite sequences of invocation, termination (response), commit, abort,
//!   and initiation events, each identifying the activity and object that
//!   participated (§2 of the paper).
//! - **Well-formedness** ([`well_formed`]): the constraints that make an
//!   event sequence sensible as an observation of sequential activities
//!   (§2, §4.2.1, §4.3.1).
//! - **Sequential specifications** ([`SequentialSpec`], [`ObjectSpec`]):
//!   object semantics as executable, possibly *non-deterministic* state
//!   machines; acceptance of serial sequences is decided by search over
//!   outcome choices (§2, §5.2).
//! - **Serializability** ([`serial`]): equivalence of histories,
//!   serializability, and *serializability in a given order* `T` (§3).
//! - **Atomicity and the three local atomicity properties**
//!   ([`atomicity`]): decision procedures for *atomic*, *dynamic atomic*,
//!   *static atomic*, and *hybrid atomic* histories (§3, §4).
//! - **The paper's worked examples** ([`paper`]): every example history in
//!   the paper, reconstructed literally, with tests asserting that the
//!   checkers classify each one exactly as the paper does.
//!
//! # Example
//!
//! Checking the paper's first atomicity example (§3): activity `b` inserts 3
//! and commits, a concurrent `member(3)` by `a` observes it, and an aborted
//! `delete(3)` by `c` is invisible:
//!
//! ```
//! use atomicity_spec::{History, Event, op, Value, SystemSpec};
//! use atomicity_spec::specs::IntSetSpec;
//! use atomicity_spec::atomicity::is_atomic;
//!
//! let (a, b, c) = (1.into(), 2.into(), 3.into());
//! let x = 1.into();
//! let h = History::from_events(vec![
//!     Event::invoke(a, x, op("member", [3])),
//!     Event::invoke(b, x, op("insert", [3])),
//!     Event::respond(b, x, Value::ok()),
//!     Event::respond(a, x, Value::from(true)),
//!     Event::commit(b, x),
//!     Event::invoke(c, x, op("delete", [3])),
//!     Event::respond(c, x, Value::ok()),
//!     Event::commit(a, x),
//!     Event::abort(c, x),
//! ]);
//! let spec = SystemSpec::new().with_object(x, IntSetSpec::new());
//! assert!(is_atomic(&h, &spec));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atomicity;
pub mod event;
pub mod history;
pub mod optimality;
pub mod paper;
pub mod serial;
pub mod spec;
pub mod specs;
pub mod value;
pub mod viz;
pub mod well_formed;

pub use event::{ActivityId, Event, EventKind, ObjectId, Timestamp};
pub use history::History;
pub use spec::{op, ObjectSpec, OpResult, Operation, SequentialSpec, StateReplayer, SystemSpec};
pub use value::Value;
pub use well_formed::{WellFormedError, WellFormedness};
