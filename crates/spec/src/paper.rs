//! The paper's worked examples, reconstructed as executable histories.
//!
//! Every example event sequence in the paper is provided here as a named
//! constructor, using the fixed cast [`A`], [`B`], [`C`] (update
//! activities), [`R`] (read-only activity), and objects [`X`] (an integer
//! set unless stated otherwise) and [`Y`]. The accompanying tests assert
//! that the checkers in [`crate::atomicity`] and [`crate::well_formed`]
//! classify each history exactly as the paper does; experiment E5 reuses
//! them as witnesses for the incomparability of the three properties.
//!
//! Two sequences whose event listings are garbled in the source scan
//! (§4.3.2's hybrid examples and §5.1's second bank example) are
//! *reconstructions*: minimal histories realizing the properties the
//! surrounding prose attributes to them; each is marked in its doc comment.

use crate::event::{ActivityId, Event, ObjectId};
use crate::history::History;
use crate::spec::{op, SystemSpec};
use crate::specs::{BankAccountSpec, CounterSpec, FifoQueueSpec, IntSetSpec};
use crate::value::Value;

/// Activity `a` of the paper's examples.
pub const A: ActivityId = ActivityId::new(1);
/// Activity `b`.
pub const B: ActivityId = ActivityId::new(2);
/// Activity `c`.
pub const C: ActivityId = ActivityId::new(3);
/// Read-only activity `r` (hybrid examples).
pub const R: ActivityId = ActivityId::new(9);
/// Object `x` — an integer set unless stated otherwise.
pub const X: ObjectId = ObjectId::new(1);
/// Object `y` — a second object (counter or bank account by example).
pub const Y: ObjectId = ObjectId::new(2);

/// The [`SystemSpec`] for examples over the integer set `x`.
pub fn set_system() -> SystemSpec {
    SystemSpec::new().with_object(X, IntSetSpec::new())
}

/// The [`SystemSpec`] for the §5.1 bank-account examples (account `y`,
/// initial balance 0).
pub fn bank_system() -> SystemSpec {
    SystemSpec::new().with_object(Y, BankAccountSpec::new())
}

/// The [`SystemSpec`] for the FIFO-queue example of §5.1 (queue `x`).
pub fn queue_system() -> SystemSpec {
    SystemSpec::new().with_object(X, FifoQueueSpec::new())
}

/// The [`SystemSpec`] for the optimality-proof counter (counter `y`).
pub fn counter_system() -> SystemSpec {
    SystemSpec::new().with_object(Y, CounterSpec::new())
}

/// §3, first example: `b` inserts 3 and commits; a concurrent `member(3)`
/// by `a` observes it; `c`'s `delete(3)` aborts. `perm(h)` is equivalent to
/// the serial sequence `b` then `a`, so `h` is **atomic**.
pub fn perm_example() -> History {
    History::from_events(vec![
        Event::invoke(A, X, op("member", [3])),
        Event::invoke(B, X, op("insert", [3])),
        Event::respond(B, X, Value::ok()),
        Event::respond(A, X, Value::from(true)),
        Event::commit(B, X),
        Event::invoke(C, X, op("delete", [3])),
        Event::respond(C, X, Value::ok()),
        Event::commit(A, X),
        Event::abort(C, X),
    ])
}

/// §3, second example: `member(2)` returns `true` on the initially-empty
/// set — **not atomic**.
pub fn non_atomic_member() -> History {
    History::from_events(vec![
        Event::invoke(A, X, op("member", [2])),
        Event::respond(A, X, Value::from(true)),
        Event::commit(A, X),
    ])
}

/// §4.1, first `precedes` example: both commits follow both responses, so
/// `precedes(h)` is **empty**.
pub fn precedes_empty_example() -> History {
    History::from_events(vec![
        Event::invoke(A, X, op("insert", [1])),
        Event::respond(A, X, Value::ok()),
        Event::invoke(B, X, op("insert", [2])),
        Event::respond(B, X, Value::ok()),
        Event::commit(A, X),
        Event::commit(B, X),
    ])
}

/// §4.1, second `precedes` example: `b`'s response follows `a`'s commit, so
/// `precedes(h) = {⟨a,b⟩}`.
pub fn precedes_pair_example() -> History {
    History::from_events(vec![
        Event::invoke(A, X, op("insert", [1])),
        Event::respond(A, X, Value::ok()),
        Event::commit(A, X),
        Event::invoke(B, X, op("insert", [2])),
        Event::respond(B, X, Value::ok()),
        Event::commit(B, X),
    ])
}

/// §4.1, third example: **atomic but not dynamic atomic**. `a`'s
/// `member(3)→false` forces `a` before `b`, but `⟨a,b⟩ ∉ precedes(h)`, so
/// dynamic atomicity also demands the orders `b-a-c` and `b-c-a`, which are
/// unacceptable.
pub fn atomic_not_dynamic() -> History {
    History::from_events(vec![
        Event::invoke(A, X, op("member", [3])),
        Event::invoke(B, X, op("insert", [3])),
        Event::respond(B, X, Value::ok()),
        Event::respond(A, X, Value::from(false)),
        Event::invoke(C, X, op("member", [3])),
        Event::commit(B, X),
        Event::respond(C, X, Value::from(true)),
        Event::commit(A, X),
        Event::commit(C, X),
    ])
}

/// §4.1, fourth example: the same shape but `a` queries `member(2)` — now
/// serializable in `a-b-c`, `b-a-c`, and `b-c-a`, hence **dynamic atomic**.
pub fn dynamic_example() -> History {
    History::from_events(vec![
        Event::invoke(A, X, op("member", [2])),
        Event::invoke(B, X, op("insert", [3])),
        Event::respond(B, X, Value::ok()),
        Event::respond(A, X, Value::from(false)),
        Event::invoke(C, X, op("member", [3])),
        Event::commit(B, X),
        Event::respond(C, X, Value::from(true)),
        Event::commit(A, X),
        Event::commit(C, X),
    ])
}

/// §4.2.1: a well-formed static-model sequence.
pub fn static_wf_example() -> History {
    History::from_events(vec![
        Event::initiate(A, X, 1),
        Event::invoke(A, X, op("member", [2])),
        Event::respond(A, X, Value::from(false)),
        Event::commit(A, X),
    ])
}

/// §4.2.1: the static-model counterexample — `a` initiates with two
/// different timestamps, `b` reuses `a`'s timestamp, and `a` invokes at `y`
/// before initiating there. **Not well-formed** (three violations).
pub fn static_wf_counterexample() -> History {
    History::from_events(vec![
        Event::initiate(A, X, 1),
        Event::invoke(A, Y, op("member", [2])),
        Event::respond(A, Y, Value::from(false)),
        Event::initiate(A, Y, 2),
        Event::initiate(B, Y, 1),
        Event::commit(A, X),
    ])
}

/// §4.2.2, first example: **atomic but not static atomic** — serializable
/// `a-b`, but the timestamp order is `b-a` and `member(3)→false` after an
/// insert is unacceptable.
pub fn atomic_not_static() -> History {
    History::from_events(vec![
        Event::initiate(A, X, 2),
        Event::invoke(A, X, op("member", [3])),
        Event::respond(A, X, Value::from(false)),
        Event::commit(A, X),
        Event::initiate(B, X, 1),
        Event::invoke(B, X, op("insert", [3])),
        Event::respond(B, X, Value::ok()),
        Event::commit(B, X),
    ])
}

/// §4.2.2, second example: `a` (ts 2) inserts *before* `b` (ts 1) queries,
/// and `b` correctly does not see the insert — **static atomic**.
pub fn static_example() -> History {
    History::from_events(vec![
        Event::initiate(A, X, 2),
        Event::invoke(A, X, op("insert", [3])),
        Event::respond(A, X, Value::ok()),
        Event::commit(A, X),
        Event::initiate(B, X, 1),
        Event::invoke(B, X, op("member", [3])),
        Event::respond(B, X, Value::from(false)),
        Event::commit(B, X),
    ])
}

/// §4.3.1: a well-formed hybrid-model sequence — update `a` commits with
/// timestamp 2; read-only `r` initiates with timestamp 1 and does not see
/// the insert.
pub fn hybrid_wf_example() -> History {
    History::from_events(vec![
        Event::invoke(A, X, op("insert", [3])),
        Event::respond(A, X, Value::ok()),
        Event::commit_ts(A, X, 2),
        Event::initiate(R, X, 1),
        Event::invoke(R, X, op("member", [3])),
        Event::respond(R, X, Value::from(false)),
        Event::commit(R, X),
    ])
}

/// §4.3.1: the hybrid-model counterexample — `⟨a,b⟩ ∈ precedes(h)` yet
/// `b`'s commit timestamp is smaller than `a`'s, and `r` reuses `a`'s
/// timestamp. **Not well-formed.**
pub fn hybrid_wf_counterexample() -> History {
    History::from_events(vec![
        Event::invoke(A, X, op("insert", [1])),
        Event::respond(A, X, Value::ok()),
        Event::commit_ts(A, X, 5),
        Event::invoke(B, X, op("insert", [2])),
        Event::respond(B, X, Value::ok()),
        Event::commit_ts(B, X, 3),
        Event::initiate(R, X, 5),
    ])
}

/// §4.3.2, first example (*reconstruction* — the listing is illegible in
/// the source scan): **atomic but not hybrid atomic**. Updates `a`
/// (`insert(3)`, ts 1) and `b` (`delete(3)`, ts 2) commit in timestamp
/// order; read-only `r` (ts 3) reports `member(3)→true`. Serializable in
/// the order `a-r-b`, but the timestamp order is `a-b-r`, where the
/// membership query must return `false`.
pub fn atomic_not_hybrid() -> History {
    History::from_events(vec![
        Event::invoke(A, X, op("insert", [3])),
        Event::respond(A, X, Value::ok()),
        Event::commit_ts(A, X, 1),
        Event::initiate(R, X, 3),
        Event::invoke(R, X, op("member", [3])),
        Event::respond(R, X, Value::from(true)),
        Event::invoke(B, X, op("delete", [3])),
        Event::respond(B, X, Value::ok()),
        Event::commit_ts(B, X, 2),
        Event::commit(R, X),
    ])
}

/// §4.3.2, second example (*reconstruction*): the same computation with
/// `r`'s timestamp falling between the two updates (`a`:1, `r`:2, `b`:3) —
/// the timestamp order `a-r-b` is acceptable, so the history is
/// **hybrid atomic**.
pub fn hybrid_example() -> History {
    History::from_events(vec![
        Event::invoke(A, X, op("insert", [3])),
        Event::respond(A, X, Value::ok()),
        Event::commit_ts(A, X, 1),
        Event::initiate(R, X, 2),
        Event::invoke(R, X, op("member", [3])),
        Event::respond(R, X, Value::from(true)),
        Event::invoke(B, X, op("delete", [3])),
        Event::respond(B, X, Value::ok()),
        Event::commit_ts(B, X, 3),
        Event::commit(R, X),
    ])
}

/// §5.1, first bank example: after `a` deposits 10 and commits, `b`
/// (`withdraw(4)`) and `c` (`withdraw(3)`) run **concurrently** and both
/// succeed — serializable in `a-b-c` and `a-c-b`, hence dynamic atomic.
/// Commutativity-based locking forbids this interleaving.
pub fn bank_concurrent_withdraws() -> History {
    History::from_events(vec![
        Event::invoke(A, Y, op("deposit", [10])),
        Event::respond(A, Y, Value::ok()),
        Event::commit(A, Y),
        Event::invoke(B, Y, op("withdraw", [4])),
        Event::invoke(C, Y, op("withdraw", [3])),
        Event::respond(C, Y, Value::ok()),
        Event::respond(B, Y, Value::ok()),
        Event::commit(C, Y),
        Event::commit(B, Y),
    ])
}

/// §5.1, second bank example (*reconstruction* — listing illegible):
/// a withdrawal concurrent with a **deposit it does not need**: after `a`
/// deposits 10 and commits, `b` withdraws 4 while `c` deposits 5.
/// Serializable in `a-b-c` and `a-c-b`, hence dynamic atomic; locking
/// protocols serialize deposit against withdraw.
pub fn bank_deposit_withdraw() -> History {
    History::from_events(vec![
        Event::invoke(A, Y, op("deposit", [10])),
        Event::respond(A, Y, Value::ok()),
        Event::commit(A, Y),
        Event::invoke(B, Y, op("withdraw", [4])),
        Event::invoke(C, Y, op("deposit", [5])),
        Event::respond(C, Y, Value::ok()),
        Event::respond(B, Y, Value::ok()),
        Event::commit(C, Y),
        Event::commit(B, Y),
    ])
}

/// §5.1, the FIFO-queue example: `a` and `b` interleave
/// `enqueue(1); enqueue(2)`, then `c` dequeues `1, 2, 1, 2`.
/// **Dynamic atomic** (serializable in `a-b-c` and `b-a-c`), yet no
/// scheduler-model execution can produce it: applying the invocations in
/// this order leaves the storage module holding `1,1,2,2`.
pub fn queue_interleaved_enqueues() -> History {
    let deq = || op("dequeue", [] as [i64; 0]);
    History::from_events(vec![
        Event::invoke(A, X, op("enqueue", [1])),
        Event::respond(A, X, Value::ok()),
        Event::invoke(B, X, op("enqueue", [1])),
        Event::respond(B, X, Value::ok()),
        Event::invoke(A, X, op("enqueue", [2])),
        Event::respond(A, X, Value::ok()),
        Event::invoke(B, X, op("enqueue", [2])),
        Event::respond(B, X, Value::ok()),
        Event::commit(A, X),
        Event::commit(B, X),
        Event::invoke(C, X, deq()),
        Event::respond(C, X, Value::from(1)),
        Event::invoke(C, X, deq()),
        Event::respond(C, X, Value::from(2)),
        Event::invoke(C, X, deq()),
        Event::respond(C, X, Value::from(1)),
        Event::invoke(C, X, deq()),
        Event::respond(C, X, Value::from(2)),
        Event::commit(C, X),
    ])
}

/// §4.1 optimality proof: the serial counter history in which activities
/// `a1…an` each perform one `increment` and commit in that order — the
/// history that is serializable in **exactly one** order.
pub fn counter_serial(n: u32) -> History {
    let mut h = History::new();
    for i in 1..=n {
        let a = ActivityId::new(i);
        h.push(Event::invoke(a, Y, op("increment", [] as [i64; 0])));
        h.push(Event::respond(a, Y, Value::from(i64::from(i))));
        h.push(Event::commit(a, Y));
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomicity::{
        is_atomic, is_dynamic_atomic, is_hybrid_atomic, is_static_atomic, timestamp_order,
    };
    use crate::serial::{find_serialization_order, is_serializable_in_order};
    use crate::well_formed::WellFormedness;

    #[test]
    fn all_examples_classified_as_in_the_paper() {
        let set = set_system();

        let h = perm_example();
        assert!(WellFormedness::Basic.is_well_formed(&h));
        assert!(is_atomic(&h, &set));

        assert!(!is_atomic(&non_atomic_member(), &set));

        assert!(precedes_empty_example().precedes().is_empty());
        assert_eq!(
            precedes_pair_example()
                .precedes()
                .into_iter()
                .collect::<Vec<_>>(),
            vec![(A, B)]
        );

        let h = atomic_not_dynamic();
        assert!(is_atomic(&h, &set));
        assert!(!is_dynamic_atomic(&h, &set));

        assert!(is_dynamic_atomic(&dynamic_example(), &set));
    }

    #[test]
    fn static_examples_classified() {
        let set = set_system();
        assert!(WellFormedness::Static.is_well_formed(&static_wf_example()));
        assert!(!WellFormedness::Static.is_well_formed(&static_wf_counterexample()));

        let h = atomic_not_static();
        assert!(is_atomic(&h, &set));
        assert!(!is_static_atomic(&h, &set));
        assert_eq!(timestamp_order(&h), Some(vec![B, A]));

        assert!(is_static_atomic(&static_example(), &set));
    }

    #[test]
    fn hybrid_examples_classified() {
        let set = set_system();
        assert!(WellFormedness::Hybrid.is_well_formed(&hybrid_wf_example()));
        assert!(!WellFormedness::Hybrid.is_well_formed(&hybrid_wf_counterexample()));

        let h = atomic_not_hybrid();
        assert!(WellFormedness::Hybrid.is_well_formed(&h));
        assert!(is_atomic(&h, &set));
        assert!(!is_hybrid_atomic(&h, &set));

        let h = hybrid_example();
        assert!(WellFormedness::Hybrid.is_well_formed(&h));
        assert!(is_hybrid_atomic(&h, &set));
    }

    #[test]
    fn bank_examples_serializable_in_exactly_the_stated_orders() {
        let bank = bank_system();
        for h in [bank_concurrent_withdraws(), bank_deposit_withdraw()] {
            assert!(is_dynamic_atomic(&h, &bank));
            assert!(is_serializable_in_order(&h.perm(), &bank, &[A, B, C]));
            assert!(is_serializable_in_order(&h.perm(), &bank, &[A, C, B]));
            // a's deposit must come first: orders starting with b or c fail.
            assert!(!is_serializable_in_order(&h.perm(), &bank, &[B, A, C]));
        }
    }

    #[test]
    fn queue_example_dynamic_atomic_in_both_orders() {
        let h = queue_interleaved_enqueues();
        let q = queue_system();
        assert!(is_dynamic_atomic(&h, &q));
        assert!(is_serializable_in_order(&h.perm(), &q, &[A, B, C]));
        assert!(is_serializable_in_order(&h.perm(), &q, &[B, A, C]));
        // c must drain last.
        assert!(!is_serializable_in_order(&h.perm(), &q, &[A, C, B]));
    }

    #[test]
    fn counter_serial_has_unique_order() {
        let h = counter_serial(4);
        let spec = counter_system();
        let expect: Vec<ActivityId> = (1..=4).map(ActivityId::new).collect();
        assert_eq!(find_serialization_order(&h, &spec), Some(expect.clone()));
        // Any transposition fails.
        let mut swapped = expect.clone();
        swapped.swap(1, 2);
        assert!(!is_serializable_in_order(&h, &spec, &swapped));
    }

    #[test]
    fn const_ids_match_runtime_ids() {
        assert_eq!(A, ActivityId::new(1));
        assert_eq!(R, ActivityId::new(9));
        assert_eq!(X, ObjectId::new(1));
        assert_eq!(Y, ObjectId::new(2));
    }
}
