//! Serializability: equivalence to acceptable serial sequences (§3).
//!
//! A sequence is *serializable* if it is equivalent to an acceptable serial
//! sequence (one in which events for different activities are not
//! interleaved); it is *serializable in the order `T`* if the serial
//! sequence can be chosen with the activities in the order `T`.
//!
//! Because equivalence is defined per-activity-view, the serial sequence
//! corresponding to an order `T` is determined (up to irrelevant
//! rearrangement) by `h` and `T`; what remains is to check *acceptability*
//! against each object's sequential specification — which by Lemma 3 can be
//! done object by object.

use crate::event::{ActivityId, ObjectId};
use crate::history::History;
use crate::spec::{OpResult, SystemSpec};
use std::collections::{BTreeMap, BTreeSet};

/// Builds the serial history equivalent to `h` with activities in `order`.
///
/// The serial history is the concatenation of the per-activity projections
/// `h|a` in the given order; by construction it is equivalent to `h` (§3).
/// Activities of `h` absent from `order` are appended at the end in first-
/// appearance order, so the result is always a permutation of `h`'s events.
pub fn serial_history(h: &History, order: &[ActivityId]) -> History {
    let mut out = History::new();
    let mut placed: BTreeSet<ActivityId> = BTreeSet::new();
    for &a in order {
        if placed.insert(a) {
            out.extend(h.project_activity(a));
        }
    }
    for a in h.activities() {
        if placed.insert(a) {
            out.extend(h.project_activity(a));
        }
    }
    out
}

/// The per-object serial operation lists induced by ordering activities of
/// `h` by `order`: for each object, the concatenation of each activity's
/// completed operations at that object, in activity order.
pub fn serial_ops_by_object(
    h: &History,
    order: &[ActivityId],
) -> BTreeMap<ObjectId, Vec<OpResult>> {
    let mut out: BTreeMap<ObjectId, Vec<OpResult>> = BTreeMap::new();
    for x in h.objects() {
        out.entry(x).or_default();
    }
    for &a in order {
        for (x, ops) in h.ops_by_object(a) {
            out.entry(x).or_default().extend(ops);
        }
    }
    out
}

/// Whether `h` is serializable in the order `order` (§3).
///
/// Requires `order` to contain every activity of `h` with completed
/// operations; by Lemma 3 the check decomposes per object: for every object
/// `x`, the concatenated per-activity operation lists at `x` must be
/// accepted by `x`'s sequential specification.
///
/// Objects of `h` that have no specification in `spec` cause the check to
/// fail (their semantics are unknown, so no serial sequence is known to be
/// acceptable).
pub fn is_serializable_in_order(h: &History, spec: &SystemSpec, order: &[ActivityId]) -> bool {
    let in_order: BTreeSet<ActivityId> = order.iter().copied().collect();
    let has_pending_activity = h
        .activities()
        .into_iter()
        .any(|a| !in_order.contains(&a) && !h.ops_by_object(a).is_empty());
    if has_pending_activity {
        return false;
    }
    for (x, ops) in serial_ops_by_object(h, order) {
        match spec.get(x) {
            Some(s) => {
                if !s.accepts(&ops) {
                    return false;
                }
            }
            None => {
                if !ops.is_empty() {
                    return false;
                }
            }
        }
    }
    true
}

/// Searches for an order in which `h` is serializable; returns a witness.
///
/// The search is a depth-first enumeration of activity permutations with
/// per-prefix pruning (a prefix whose serial operation lists are already
/// rejected by some object cannot be extended to an acceptable order).
/// Exponential in the number of activities in the worst case; intended for
/// checking and testing, not production scheduling.
pub fn find_serialization_order(h: &History, spec: &SystemSpec) -> Option<Vec<ActivityId>> {
    let activities = h.activities();
    // Any object without a spec but with operations makes h unserializable.
    for x in h.objects() {
        if spec.get(x).is_none() {
            let any_ops = activities.iter().any(|&a| !h.complete_ops(a, x).is_empty());
            if any_ops {
                return None;
            }
        }
    }
    let mut order = Vec::with_capacity(activities.len());
    let mut used = vec![false; activities.len()];
    if dfs_orders(
        h,
        spec,
        &activities,
        &mut used,
        &mut order,
        &BTreeSet::new(),
    ) {
        Some(order)
    } else {
        None
    }
}

/// Whether `h` is serializable in *some* order (§3).
pub fn is_serializable(h: &History, spec: &SystemSpec) -> bool {
    find_serialization_order(h, spec).is_some()
}

/// Whether `h` is serializable in **every** total order of its activities
/// consistent with the partial order `pairs` (the heart of dynamic
/// atomicity, §4.1).
///
/// `pairs` is interpreted as "left must come before right". Pairs mentioning
/// activities absent from `h` are ignored.
pub fn is_serializable_in_all_consistent_orders(
    h: &History,
    spec: &SystemSpec,
    pairs: &BTreeSet<(ActivityId, ActivityId)>,
) -> bool {
    let activities = h.activities();
    let present: BTreeSet<ActivityId> = activities.iter().copied().collect();
    let relevant: BTreeSet<(ActivityId, ActivityId)> = pairs
        .iter()
        .filter(|(a, b)| present.contains(a) && present.contains(b))
        .copied()
        .collect();
    for order in linear_extensions(&activities, &relevant) {
        if !is_serializable_in_order(h, spec, &order) {
            return false;
        }
    }
    true
}

/// All total orders of `elems` consistent with the precedence `pairs`
/// (left before right).
///
/// The enumeration is depth-first and deterministic. If `pairs` contains a
/// cycle over `elems`, there are no linear extensions and the result is
/// empty.
pub fn linear_extensions(
    elems: &[ActivityId],
    pairs: &BTreeSet<(ActivityId, ActivityId)>,
) -> Vec<Vec<ActivityId>> {
    let mut out = Vec::new();
    let mut order = Vec::with_capacity(elems.len());
    let mut used = vec![false; elems.len()];
    extend_linear(elems, pairs, &mut used, &mut order, &mut out);
    out
}

fn extend_linear(
    elems: &[ActivityId],
    pairs: &BTreeSet<(ActivityId, ActivityId)>,
    used: &mut [bool],
    order: &mut Vec<ActivityId>,
    out: &mut Vec<Vec<ActivityId>>,
) {
    if order.len() == elems.len() {
        out.push(order.clone());
        return;
    }
    for i in 0..elems.len() {
        if used[i] {
            continue;
        }
        let candidate = elems[i];
        // Every predecessor of `candidate` must already be placed.
        let ready = pairs
            .iter()
            .filter(|&&(_, b)| b == candidate)
            .all(|&(a, _)| order.contains(&a) || !elems.contains(&a));
        if !ready {
            continue;
        }
        used[i] = true;
        order.push(candidate);
        extend_linear(elems, pairs, used, order, out);
        order.pop();
        used[i] = false;
    }
}

fn dfs_orders(
    h: &History,
    spec: &SystemSpec,
    activities: &[ActivityId],
    used: &mut [bool],
    order: &mut Vec<ActivityId>,
    _placed: &BTreeSet<ActivityId>,
) -> bool {
    if order.len() == activities.len() {
        return is_serializable_in_order(h, spec, order);
    }
    for i in 0..activities.len() {
        if used[i] {
            continue;
        }
        used[i] = true;
        order.push(activities[i]);
        // Prune: the prefix's serial ops must already be acceptable
        // (our specifications are prefix-closed).
        let prefix_ok = serial_ops_by_object(h, order).iter().all(|(x, ops)| {
            spec.get(*x)
                .map(|s| s.accepts_prefix(ops))
                .unwrap_or_else(|| ops.is_empty())
        });
        if prefix_ok && dfs_orders(h, spec, activities, used, order, _placed) {
            return true;
        }
        order.pop();
        used[i] = false;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::spec::op;
    use crate::specs::{CounterSpec, IntSetSpec};
    use crate::value::Value;

    fn a() -> ActivityId {
        1.into()
    }
    fn b() -> ActivityId {
        2.into()
    }
    fn c() -> ActivityId {
        3.into()
    }
    fn x() -> ObjectId {
        1.into()
    }

    fn set_spec() -> SystemSpec {
        SystemSpec::new().with_object(x(), IntSetSpec::new())
    }

    /// perm of the §3 example: b inserts 3 then commits; a's member(3)
    /// observed it.
    fn paper_perm() -> History {
        History::from_events(vec![
            Event::invoke(a(), x(), op("member", [3])),
            Event::invoke(b(), x(), op("insert", [3])),
            Event::respond(b(), x(), Value::ok()),
            Event::respond(a(), x(), Value::from(true)),
            Event::commit(b(), x()),
            Event::commit(a(), x()),
        ])
    }

    #[test]
    fn paper_example_serializable_only_b_first() {
        let h = paper_perm();
        let spec = set_spec();
        assert!(is_serializable_in_order(&h, &spec, &[b(), a()]));
        assert!(!is_serializable_in_order(&h, &spec, &[a(), b()]));
        assert_eq!(find_serialization_order(&h, &spec), Some(vec![b(), a()]));
    }

    #[test]
    fn unserializable_history_rejected() {
        // §3 non-atomic example: member(2) returns true on an empty set.
        let h = History::from_events(vec![
            Event::invoke(a(), x(), op("member", [2])),
            Event::respond(a(), x(), Value::from(true)),
            Event::commit(a(), x()),
        ]);
        assert!(!is_serializable(&h, &set_spec()));
    }

    #[test]
    fn serial_history_is_equivalent_and_uninterleaved() {
        let h = paper_perm();
        let s = serial_history(&h, &[b(), a()]);
        assert!(h.is_equivalent(&s));
        // b's events all precede a's events.
        let first_a = s.iter().position(|e| e.activity == a()).unwrap();
        let last_b = s
            .iter()
            .enumerate()
            .filter(|(_, e)| e.activity == b())
            .map(|(i, _)| i)
            .max()
            .unwrap();
        assert!(last_b < first_a);
    }

    #[test]
    fn serial_history_appends_missing_activities() {
        let h = paper_perm();
        let s = serial_history(&h, &[b()]);
        assert_eq!(s.len(), h.len());
        assert!(h.is_equivalent(&s));
    }

    #[test]
    fn counter_forces_unique_order() {
        // §4's optimality construction: increments returning 1,2,3 are
        // serializable only in that order.
        let y: ObjectId = 2.into();
        let spec = SystemSpec::new().with_object(y, CounterSpec::new());
        let inc = || op("increment", [] as [i64; 0]);
        let h = History::from_events(vec![
            Event::invoke(a(), y, inc()),
            Event::respond(a(), y, Value::from(1)),
            Event::commit(a(), y),
            Event::invoke(b(), y, inc()),
            Event::respond(b(), y, Value::from(2)),
            Event::commit(b(), y),
            Event::invoke(c(), y, inc()),
            Event::respond(c(), y, Value::from(3)),
            Event::commit(c(), y),
        ]);
        assert_eq!(
            find_serialization_order(&h, &spec),
            Some(vec![a(), b(), c()])
        );
        assert!(!is_serializable_in_order(&h, &spec, &[b(), a(), c()]));
        assert!(!is_serializable_in_order(&h, &spec, &[a(), c(), b()]));
    }

    #[test]
    fn linear_extensions_enumeration() {
        let elems = [a(), b(), c()];
        // No constraints: all 6 permutations.
        assert_eq!(linear_extensions(&elems, &BTreeSet::new()).len(), 6);
        // a before b: 3 extensions.
        let mut pairs = BTreeSet::new();
        pairs.insert((a(), b()));
        let exts = linear_extensions(&elems, &pairs);
        assert_eq!(exts.len(), 3);
        for e in &exts {
            let pa = e.iter().position(|&v| v == a()).unwrap();
            let pb = e.iter().position(|&v| v == b()).unwrap();
            assert!(pa < pb);
        }
        // Cycle: no extensions.
        pairs.insert((b(), a()));
        assert!(linear_extensions(&elems, &pairs).is_empty());
    }

    #[test]
    fn all_consistent_orders_checked() {
        let h = paper_perm();
        let spec = set_spec();
        // With the constraint b-before-a, the single extension works.
        let mut pairs = BTreeSet::new();
        pairs.insert((b(), a()));
        assert!(is_serializable_in_all_consistent_orders(&h, &spec, &pairs));
        // Unconstrained, the order a-b fails.
        assert!(!is_serializable_in_all_consistent_orders(
            &h,
            &spec,
            &BTreeSet::new()
        ));
    }

    #[test]
    fn order_must_cover_all_operating_activities() {
        let h = paper_perm();
        let spec = set_spec();
        assert!(!is_serializable_in_order(&h, &spec, &[b()]));
    }

    #[test]
    fn unspecified_object_with_ops_rejected() {
        let h = paper_perm();
        let empty = SystemSpec::new();
        assert!(!is_serializable_in_order(&h, &empty, &[b(), a()]));
        assert_eq!(find_serialization_order(&h, &empty), None);
    }
}
