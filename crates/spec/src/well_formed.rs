//! Well-formedness of event sequences.
//!
//! Not all event sequences make sense as computations: activities are
//! intended to act like sequential processes (§2). Three increasingly
//! constrained notions are defined, matching the three models in the paper:
//!
//! - [`WellFormedness::Basic`] (§2): invocation/termination alternation, no
//!   activity both commits and aborts, no commit while an invocation is
//!   pending, no invocations after commit.
//! - [`WellFormedness::Static`] (§4.2.1): additionally, every activity
//!   initiates (with a timestamp) at an object before invoking operations
//!   there; timestamps are unique per activity and consistent within one.
//! - [`WellFormedness::Hybrid`] (§4.3.1): read-only activities initiate
//!   before invoking; update activities commit with timestamps; timestamp
//!   events are unique/consistent; and commit timestamps of updates are
//!   consistent with `precedes(h)`.

use crate::event::{ActivityId, EventKind, ObjectId, Timestamp};
use crate::history::History;
use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;

/// Which well-formedness discipline to check a history against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WellFormedness {
    /// The basic model of §2 (no timestamp events expected).
    #[default]
    Basic,
    /// The static-atomicity model of §4.2.1 (all activities initiate).
    Static,
    /// The hybrid-atomicity model of §4.3.1 (updates commit with
    /// timestamps, read-only activities initiate with timestamps).
    Hybrid,
}

impl WellFormedness {
    /// Checks `h` against this discipline.
    ///
    /// # Errors
    ///
    /// Returns the first violation found, in sequence order.
    pub fn check(self, h: &History) -> Result<(), WellFormedError> {
        check_basic(h)?;
        match self {
            WellFormedness::Basic => Ok(()),
            WellFormedness::Static => check_static(h),
            WellFormedness::Hybrid => check_hybrid(h),
        }
    }

    /// Convenience: whether `h` is well-formed under this discipline.
    pub fn is_well_formed(self, h: &History) -> bool {
        self.check(h).is_ok()
    }
}

/// A violation of well-formedness, reported with the participants involved.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WellFormedError {
    /// An activity invoked an operation while another invocation was pending.
    InvokeWhilePending {
        /// The offending activity.
        activity: ActivityId,
    },
    /// A response event arrived with no pending invocation to terminate.
    ResponseWithoutPending {
        /// The offending activity.
        activity: ActivityId,
        /// The object of the stray response.
        object: ObjectId,
    },
    /// A response event terminated an invocation at a different object.
    ResponseObjectMismatch {
        /// The offending activity.
        activity: ActivityId,
        /// Where the pending invocation was issued.
        expected: ObjectId,
        /// Where the response arrived.
        actual: ObjectId,
    },
    /// An activity both commits and aborts (at the same or different objects).
    CommitAndAbort {
        /// The offending activity.
        activity: ActivityId,
    },
    /// An activity committed while waiting for an invocation to terminate.
    CommitWhilePending {
        /// The offending activity.
        activity: ActivityId,
    },
    /// An activity invoked an operation after committing.
    InvokeAfterCommit {
        /// The offending activity.
        activity: ActivityId,
    },
    /// An activity committed twice at the same object.
    DuplicateCommitAtObject {
        /// The offending activity.
        activity: ActivityId,
        /// The object committed at twice.
        object: ObjectId,
    },
    /// An activity invoked an operation at an object before initiating there.
    MissingInitiate {
        /// The offending activity.
        activity: ActivityId,
        /// The object invoked at without initiation.
        object: ObjectId,
    },
    /// Two distinct activities used the same timestamp.
    DuplicateTimestamp {
        /// The first activity using the timestamp.
        first: ActivityId,
        /// The second activity using it.
        second: ActivityId,
        /// The shared timestamp.
        timestamp: Timestamp,
    },
    /// One activity used two different timestamps.
    InconsistentTimestamp {
        /// The offending activity.
        activity: ActivityId,
        /// The timestamp seen first.
        first: Timestamp,
        /// The conflicting timestamp.
        second: Timestamp,
    },
    /// A timestamped commit appeared in the static model (only initiation
    /// events carry timestamps there).
    UnexpectedCommitTimestamp {
        /// The offending activity.
        activity: ActivityId,
    },
    /// In the hybrid model, an activity that never initiated (an update)
    /// committed without a timestamp.
    MissingCommitTimestamp {
        /// The offending activity.
        activity: ActivityId,
    },
    /// In the hybrid model, a read-only activity (one that initiated)
    /// committed with a timestamped commit event.
    ReadOnlyCommitTimestamp {
        /// The offending activity.
        activity: ActivityId,
    },
    /// Update commit timestamps contradict `precedes(h)` (§4.3.1): `first`
    /// precedes `second` but chose the larger timestamp.
    TimestampOrderViolatesPrecedes {
        /// The earlier activity (in `precedes`).
        first: ActivityId,
        /// The later activity that chose a smaller timestamp.
        second: ActivityId,
    },
}

impl fmt::Display for WellFormedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WellFormedError::InvokeWhilePending { activity } => {
                write!(
                    f,
                    "{activity} invoked an operation while another was pending"
                )
            }
            WellFormedError::ResponseWithoutPending { activity, object } => {
                write!(f, "stray response for {activity} at {object}")
            }
            WellFormedError::ResponseObjectMismatch {
                activity,
                expected,
                actual,
            } => write!(
                f,
                "response for {activity} at {actual} but invocation was at {expected}"
            ),
            WellFormedError::CommitAndAbort { activity } => {
                write!(f, "{activity} both commits and aborts")
            }
            WellFormedError::CommitWhilePending { activity } => {
                write!(f, "{activity} committed while an invocation was pending")
            }
            WellFormedError::InvokeAfterCommit { activity } => {
                write!(f, "{activity} invoked an operation after committing")
            }
            WellFormedError::DuplicateCommitAtObject { activity, object } => {
                write!(f, "{activity} committed twice at {object}")
            }
            WellFormedError::MissingInitiate { activity, object } => {
                write!(f, "{activity} invoked at {object} before initiating there")
            }
            WellFormedError::DuplicateTimestamp {
                first,
                second,
                timestamp,
            } => write!(f, "{first} and {second} both chose timestamp {timestamp}"),
            WellFormedError::InconsistentTimestamp {
                activity,
                first,
                second,
            } => write!(f, "{activity} used timestamps {first} and {second}"),
            WellFormedError::UnexpectedCommitTimestamp { activity } => {
                write!(
                    f,
                    "{activity} committed with a timestamp in the static model"
                )
            }
            WellFormedError::MissingCommitTimestamp { activity } => {
                write!(f, "update {activity} committed without a timestamp")
            }
            WellFormedError::ReadOnlyCommitTimestamp { activity } => {
                write!(f, "read-only {activity} committed with a timestamp")
            }
            WellFormedError::TimestampOrderViolatesPrecedes { first, second } => write!(
                f,
                "{first} precedes {second} but chose the larger commit timestamp"
            ),
        }
    }
}

impl Error for WellFormedError {}

/// Checks the basic well-formedness conditions of §2.
pub fn check_basic(h: &History) -> Result<(), WellFormedError> {
    let mut pending: BTreeMap<ActivityId, ObjectId> = BTreeMap::new();
    let mut committed: BTreeSet<ActivityId> = BTreeSet::new();
    let mut aborted: BTreeSet<ActivityId> = BTreeSet::new();
    let mut commits_at: BTreeSet<(ActivityId, ObjectId)> = BTreeSet::new();

    for e in h.iter() {
        let a = e.activity;
        match &e.kind {
            EventKind::Invoke(_) => {
                if pending.contains_key(&a) {
                    return Err(WellFormedError::InvokeWhilePending { activity: a });
                }
                if committed.contains(&a) {
                    return Err(WellFormedError::InvokeAfterCommit { activity: a });
                }
                pending.insert(a, e.object);
            }
            EventKind::Respond(_) => match pending.remove(&a) {
                None => {
                    return Err(WellFormedError::ResponseWithoutPending {
                        activity: a,
                        object: e.object,
                    })
                }
                Some(expected) if expected != e.object => {
                    return Err(WellFormedError::ResponseObjectMismatch {
                        activity: a,
                        expected,
                        actual: e.object,
                    })
                }
                Some(_) => {}
            },
            EventKind::Commit | EventKind::CommitTs(_) => {
                if aborted.contains(&a) {
                    return Err(WellFormedError::CommitAndAbort { activity: a });
                }
                if pending.contains_key(&a) {
                    return Err(WellFormedError::CommitWhilePending { activity: a });
                }
                if !commits_at.insert((a, e.object)) {
                    return Err(WellFormedError::DuplicateCommitAtObject {
                        activity: a,
                        object: e.object,
                    });
                }
                committed.insert(a);
            }
            EventKind::Abort => {
                if committed.contains(&a) {
                    return Err(WellFormedError::CommitAndAbort { activity: a });
                }
                aborted.insert(a);
            }
            EventKind::Initiate(_) => {}
        }
    }
    Ok(())
}

/// Checks consistency and uniqueness of the timestamps carried by the given
/// event kinds (`use_commit_ts`, `use_initiate`).
fn check_timestamp_discipline(
    h: &History,
    use_commit_ts: bool,
    use_initiate: bool,
) -> Result<(), WellFormedError> {
    let mut by_activity: BTreeMap<ActivityId, Timestamp> = BTreeMap::new();
    let mut by_timestamp: BTreeMap<Timestamp, ActivityId> = BTreeMap::new();
    for e in h.iter() {
        let ts = match e.kind {
            EventKind::CommitTs(t) if use_commit_ts => t,
            EventKind::Initiate(t) if use_initiate => t,
            _ => continue,
        };
        if let Some(&prev) = by_activity.get(&e.activity) {
            if prev != ts {
                return Err(WellFormedError::InconsistentTimestamp {
                    activity: e.activity,
                    first: prev,
                    second: ts,
                });
            }
        } else {
            by_activity.insert(e.activity, ts);
            if let Some(&other) = by_timestamp.get(&ts) {
                if other != e.activity {
                    return Err(WellFormedError::DuplicateTimestamp {
                        first: other,
                        second: e.activity,
                        timestamp: ts,
                    });
                }
            } else {
                by_timestamp.insert(ts, e.activity);
            }
        }
    }
    Ok(())
}

/// Checks the additional static-model conditions of §4.2.1.
pub fn check_static(h: &History) -> Result<(), WellFormedError> {
    // No timestamped commits in the static model.
    for e in h.iter() {
        if matches!(e.kind, EventKind::CommitTs(_)) {
            return Err(WellFormedError::UnexpectedCommitTimestamp {
                activity: e.activity,
            });
        }
    }
    check_timestamp_discipline(h, false, true)?;
    // Every activity must initiate at an object before invoking there.
    let mut initiated: BTreeSet<(ActivityId, ObjectId)> = BTreeSet::new();
    for e in h.iter() {
        match e.kind {
            EventKind::Initiate(_) => {
                initiated.insert((e.activity, e.object));
            }
            EventKind::Invoke(_) if !initiated.contains(&(e.activity, e.object)) => {
                return Err(WellFormedError::MissingInitiate {
                    activity: e.activity,
                    object: e.object,
                });
            }
            _ => {}
        }
    }
    Ok(())
}

/// Checks the additional hybrid-model conditions of §4.3.1.
pub fn check_hybrid(h: &History) -> Result<(), WellFormedError> {
    check_timestamp_discipline(h, true, true)?;

    let read_only: BTreeSet<ActivityId> = h
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::Initiate(_) => Some(e.activity),
            _ => None,
        })
        .collect();

    // Read-only activities initiate before invoking, and never commit with a
    // timestamp; updates always commit with one.
    let mut initiated: BTreeSet<(ActivityId, ObjectId)> = BTreeSet::new();
    for e in h.iter() {
        match e.kind {
            EventKind::Initiate(_) => {
                initiated.insert((e.activity, e.object));
            }
            EventKind::Invoke(_)
                if read_only.contains(&e.activity)
                    && !initiated.contains(&(e.activity, e.object)) =>
            {
                return Err(WellFormedError::MissingInitiate {
                    activity: e.activity,
                    object: e.object,
                });
            }
            EventKind::CommitTs(_) if read_only.contains(&e.activity) => {
                return Err(WellFormedError::ReadOnlyCommitTimestamp {
                    activity: e.activity,
                });
            }
            EventKind::Commit if !read_only.contains(&e.activity) => {
                return Err(WellFormedError::MissingCommitTimestamp {
                    activity: e.activity,
                });
            }
            _ => {}
        }
    }

    // Update commit timestamps must be consistent with precedes(h): the
    // paper's §4.3.1 counterexample is rejected exactly here.
    let ts = h.timestamps();
    let updates: BTreeSet<ActivityId> = ts
        .keys()
        .filter(|a| !read_only.contains(a))
        .copied()
        .collect();
    for (a, b) in h.precedes() {
        if updates.contains(&a) && updates.contains(&b) && ts[&a] > ts[&b] {
            return Err(WellFormedError::TimestampOrderViolatesPrecedes {
                first: a,
                second: b,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::spec::op;
    use crate::value::Value;

    fn a() -> ActivityId {
        1.into()
    }
    fn b() -> ActivityId {
        2.into()
    }
    fn r() -> ActivityId {
        3.into()
    }
    fn x() -> ObjectId {
        1.into()
    }
    fn y() -> ObjectId {
        2.into()
    }

    #[test]
    fn accepts_simple_well_formed_sequence() {
        let h = History::from_events(vec![
            Event::invoke(a(), x(), op("member", [2])),
            Event::respond(a(), x(), Value::from(false)),
            Event::commit(a(), x()),
        ]);
        assert!(WellFormedness::Basic.is_well_formed(&h));
    }

    #[test]
    fn rejects_invoke_while_pending() {
        let h = History::from_events(vec![
            Event::invoke(a(), x(), op("member", [2])),
            Event::invoke(a(), y(), op("member", [3])),
        ]);
        assert_eq!(
            WellFormedness::Basic.check(&h),
            Err(WellFormedError::InvokeWhilePending { activity: a() })
        );
    }

    #[test]
    fn rejects_commit_and_abort() {
        let h = History::from_events(vec![Event::commit(a(), x()), Event::abort(a(), y())]);
        assert_eq!(
            WellFormedness::Basic.check(&h),
            Err(WellFormedError::CommitAndAbort { activity: a() })
        );
    }

    #[test]
    fn rejects_commit_while_pending() {
        let h = History::from_events(vec![
            Event::invoke(a(), x(), op("member", [2])),
            Event::commit(a(), x()),
        ]);
        assert_eq!(
            WellFormedness::Basic.check(&h),
            Err(WellFormedError::CommitWhilePending { activity: a() })
        );
    }

    #[test]
    fn rejects_invoke_after_commit() {
        let h = History::from_events(vec![
            Event::commit(a(), x()),
            Event::invoke(a(), x(), op("member", [2])),
        ]);
        assert_eq!(
            WellFormedness::Basic.check(&h),
            Err(WellFormedError::InvokeAfterCommit { activity: a() })
        );
    }

    #[test]
    fn rejects_stray_and_mismatched_responses() {
        let h = History::from_events(vec![Event::respond(a(), x(), Value::ok())]);
        assert!(matches!(
            WellFormedness::Basic.check(&h),
            Err(WellFormedError::ResponseWithoutPending { .. })
        ));
        let h = History::from_events(vec![
            Event::invoke(a(), x(), op("member", [2])),
            Event::respond(a(), y(), Value::from(false)),
        ]);
        assert!(matches!(
            WellFormedness::Basic.check(&h),
            Err(WellFormedError::ResponseObjectMismatch { .. })
        ));
    }

    #[test]
    fn static_accepts_paper_example() {
        // §4.2.1: initiate(1) then member(2) -> false, commit.
        let h = History::from_events(vec![
            Event::initiate(a(), x(), 1),
            Event::invoke(a(), x(), op("member", [2])),
            Event::respond(a(), x(), Value::from(false)),
            Event::commit(a(), x()),
        ]);
        assert!(WellFormedness::Static.is_well_formed(&h));
    }

    #[test]
    fn static_rejects_paper_counterexample() {
        // §4.2.1: a initiates with two timestamps; b reuses a's timestamp;
        // a invokes at y before initiating there. The first violation found
        // is the invocation at y before initiation.
        let h = History::from_events(vec![
            Event::initiate(a(), x(), 1),
            Event::invoke(a(), y(), op("member", [2])),
            Event::respond(a(), y(), Value::from(false)),
            Event::initiate(a(), y(), 2),
            Event::initiate(b(), y(), 1),
            Event::commit(a(), x()),
        ]);
        let err = WellFormedness::Static.check(&h).unwrap_err();
        assert!(matches!(
            err,
            WellFormedError::InconsistentTimestamp { .. }
                | WellFormedError::DuplicateTimestamp { .. }
                | WellFormedError::MissingInitiate { .. }
        ));
        // Each individual violation is also caught on its own.
        let two_ts = History::from_events(vec![
            Event::initiate(a(), x(), 1),
            Event::initiate(a(), y(), 2),
        ]);
        assert_eq!(
            WellFormedness::Static.check(&two_ts),
            Err(WellFormedError::InconsistentTimestamp {
                activity: a(),
                first: 1,
                second: 2
            })
        );
        let dup_ts = History::from_events(vec![
            Event::initiate(a(), x(), 1),
            Event::initiate(b(), y(), 1),
        ]);
        assert_eq!(
            WellFormedness::Static.check(&dup_ts),
            Err(WellFormedError::DuplicateTimestamp {
                first: a(),
                second: b(),
                timestamp: 1
            })
        );
    }

    #[test]
    fn hybrid_accepts_paper_example() {
        // §4.3.1: update a commits with timestamp 2, read-only r initiates
        // with timestamp 1.
        let h = History::from_events(vec![
            Event::invoke(a(), x(), op("insert", [3])),
            Event::respond(a(), x(), Value::ok()),
            Event::commit_ts(a(), x(), 2),
            Event::initiate(r(), x(), 1),
            Event::invoke(r(), x(), op("member", [3])),
            Event::respond(r(), x(), Value::from(false)),
            Event::commit(r(), x()),
        ]);
        assert!(WellFormedness::Hybrid.is_well_formed(&h));
    }

    #[test]
    fn hybrid_rejects_timestamps_inconsistent_with_precedes() {
        // §4.3.1 counterexample: ⟨a,b⟩ ∈ precedes(h) yet ts(b) < ts(a).
        let h = History::from_events(vec![
            Event::invoke(a(), x(), op("insert", [1])),
            Event::respond(a(), x(), Value::ok()),
            Event::commit_ts(a(), x(), 5),
            Event::invoke(b(), x(), op("insert", [2])),
            Event::respond(b(), x(), Value::ok()),
            Event::commit_ts(b(), x(), 3),
        ]);
        assert_eq!(
            WellFormedness::Hybrid.check(&h),
            Err(WellFormedError::TimestampOrderViolatesPrecedes {
                first: a(),
                second: b()
            })
        );
    }

    #[test]
    fn hybrid_rejects_shared_timestamp_between_reader_and_update() {
        // §4.3.1 counterexample: r and a use the same timestamp.
        let h = History::from_events(vec![
            Event::initiate(r(), x(), 2),
            Event::invoke(a(), x(), op("insert", [1])),
            Event::respond(a(), x(), Value::ok()),
            Event::commit_ts(a(), x(), 2),
        ]);
        assert_eq!(
            WellFormedness::Hybrid.check(&h),
            Err(WellFormedError::DuplicateTimestamp {
                first: r(),
                second: a(),
                timestamp: 2
            })
        );
    }

    #[test]
    fn hybrid_requires_update_commit_timestamps() {
        let h = History::from_events(vec![Event::commit(a(), x())]);
        assert_eq!(
            WellFormedness::Hybrid.check(&h),
            Err(WellFormedError::MissingCommitTimestamp { activity: a() })
        );
    }

    #[test]
    fn hybrid_rejects_read_only_timestamped_commit() {
        let h = History::from_events(vec![
            Event::initiate(r(), x(), 1),
            Event::commit_ts(r(), x(), 1),
        ]);
        assert_eq!(
            WellFormedness::Hybrid.check(&h),
            Err(WellFormedError::ReadOnlyCommitTimestamp { activity: r() })
        );
    }

    #[test]
    fn duplicate_commit_at_object_rejected() {
        let h = History::from_events(vec![Event::commit(a(), x()), Event::commit(a(), x())]);
        assert_eq!(
            WellFormedness::Basic.check(&h),
            Err(WellFormedError::DuplicateCommitAtObject {
                activity: a(),
                object: x()
            })
        );
        // Commit at two different objects is fine.
        let h = History::from_events(vec![Event::commit(a(), x()), Event::commit(a(), y())]);
        assert!(WellFormedness::Basic.is_well_formed(&h));
    }

    #[test]
    fn errors_display_participants() {
        let e = WellFormedError::CommitAndAbort { activity: a() };
        assert!(e.to_string().contains("a1"));
        let e = WellFormedError::DuplicateTimestamp {
            first: a(),
            second: b(),
            timestamp: 9,
        };
        assert!(e.to_string().contains('9'));
    }
}
