//! The optimality construction of §4.1, executable.
//!
//! The paper proves dynamic atomicity *optimal*: no local atomicity
//! property admits strictly more concurrency. The proof takes any object
//! specification that violates dynamic atomicity — a history `h_x` whose
//! `perm` is **not** serializable in some total order `T` consistent with
//! `precedes(h_x)` — and builds a counter object `y` whose only
//! serializable order is `T`. Composing the two produces a computation of
//! the two-object system that is not atomic, so no local property may
//! admit `h_x`.
//!
//! [`optimality_witness`] performs exactly this construction, and
//! [`refute_local_admission`] packages the argument: give it a history
//! your favorite "more permissive" property would admit, and it returns
//! the composite system + computation demonstrating the resulting
//! non-atomicity.

use crate::atomicity::is_atomic;
use crate::event::{ActivityId, Event, ObjectId};
use crate::history::History;
use crate::serial::{is_serializable_in_order, linear_extensions};
use crate::spec::{op, SystemSpec};
use crate::specs::CounterSpec;
use crate::value::Value;
use std::collections::BTreeSet;

/// A violation of dynamic atomicity found in a history: the order `T`,
/// consistent with `precedes`, in which `perm(h)` fails to serialize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DynamicViolation {
    /// The offending total order of committed activities.
    pub order: Vec<ActivityId>,
}

/// Searches `h` for a total order consistent with `precedes(h)` in which
/// `perm(h)` is **not** serializable — the witness that `h` is not
/// dynamic atomic. Returns `None` when `h` is dynamic atomic.
pub fn find_dynamic_violation(h: &History, spec: &SystemSpec) -> Option<DynamicViolation> {
    let perm = h.perm();
    let committed: BTreeSet<ActivityId> = h.committed_activities();
    let pairs: BTreeSet<(ActivityId, ActivityId)> = h
        .precedes()
        .into_iter()
        .filter(|(a, b)| committed.contains(a) && committed.contains(b))
        .collect();
    let activities = perm.activities();
    for order in linear_extensions(&activities, &pairs) {
        if !is_serializable_in_order(&perm, spec, &order) {
            return Some(DynamicViolation { order });
        }
    }
    None
}

/// The serial counter history in which the given activities each perform
/// one `increment` (returning 1, 2, …) and commit, in order — the object
/// `y` of the proof, whose specification permits **only** this
/// serialization order.
pub fn counter_history(y: ObjectId, order: &[ActivityId]) -> History {
    let mut h = History::new();
    for (i, &a) in order.iter().enumerate() {
        h.push(Event::invoke(a, y, op("increment", [] as [i64; 0])));
        h.push(Event::respond(a, y, Value::from(i as i64 + 1)));
        h.push(Event::commit(a, y));
    }
    h
}

/// A composite system and computation witnessing non-atomicity.
#[derive(Debug, Clone)]
pub struct OptimalityWitness {
    /// The two-object system: the original object plus the counter `y`.
    pub system: SystemSpec,
    /// The composite computation `h` with `h|x = h_x` and `h|y` the
    /// counter history in the violating order.
    pub computation: History,
    /// The order the counter forces.
    pub order: Vec<ActivityId>,
    /// The counter object's identity.
    pub counter: ObjectId,
}

/// Executes the §4.1 optimality construction against `h_x`.
///
/// If `h_x` (over the objects specified in `spec`) is not dynamic atomic,
/// returns the composite witness: a system extended with a counter object
/// `y` and a computation that projects to `h_x` at the original objects
/// and to a serial counter history at `y`, and which is **not atomic**.
///
/// Returns `None` if `h_x` is dynamic atomic (no local property can be
/// refuted by it).
///
/// # Example
///
/// ```
/// use atomicity_spec::optimality::optimality_witness;
/// use atomicity_spec::atomicity::is_atomic;
/// use atomicity_spec::paper;
///
/// let witness = optimality_witness(
///     &paper::atomic_not_dynamic(),
///     &paper::set_system(),
/// ).expect("the §4.1 example is not dynamic atomic");
/// assert!(!is_atomic(&witness.computation, &witness.system));
/// ```
pub fn optimality_witness(h_x: &History, spec: &SystemSpec) -> Option<OptimalityWitness> {
    let violation = find_dynamic_violation(h_x, spec)?;
    // A fresh object id for the counter.
    let y = ObjectId::new(
        h_x.objects()
            .iter()
            .map(|o| o.raw())
            .chain(spec.object_ids().map(|o| o.raw()))
            .max()
            .unwrap_or(0)
            + 1,
    );
    let h_y = counter_history(y, &violation.order);
    // Place the counter blocks first (each activity completes its counter
    // operations before performing any events of h_x, so the composite is
    // well-formed and projects correctly)... except commits: an activity
    // may not invoke after committing anywhere, so the counter *commit*
    // events must come after the activity's operations in h_x, while the
    // counter operation blocks come first, in the forced order.
    let mut computation = History::new();
    let mut commit_events = Vec::new();
    for e in h_y.iter() {
        if e.is_commit() {
            commit_events.push(e.clone());
        } else {
            computation.push(e.clone());
        }
    }
    // h_x's events follow; its own commits stay in place.
    computation.extend(h_x.iter().cloned());
    // The counter commits for each activity must come after its last
    // invocation anywhere but are otherwise unconstrained: append them at
    // the end (activities that aborted in h_x must not commit at y — but
    // they are not in `order`, which contains committed activities only).
    computation.extend(commit_events);

    let mut system = spec.clone();
    system.insert(y, std::sync::Arc::new(CounterSpec::new()));
    Some(OptimalityWitness {
        system,
        computation,
        order: violation.order,
        counter: y,
    })
}

/// The full proof step: a "more permissive local property" would admit
/// `h_x`; this returns the composite computation showing that admitting
/// it breaks global atomicity. `None` means `h_x` is dynamic atomic, so
/// no refutation exists — dynamic atomicity itself never admits such a
/// history.
pub fn refute_local_admission(h_x: &History, spec: &SystemSpec) -> Option<OptimalityWitness> {
    let witness = optimality_witness(h_x, spec)?;
    debug_assert!(
        !is_atomic(&witness.computation, &witness.system),
        "construction must yield a non-atomic computation"
    );
    Some(witness)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomicity::is_dynamic_atomic;
    use crate::paper;
    use crate::well_formed::WellFormedness;

    #[test]
    fn violation_found_for_paper_example() {
        let h = paper::atomic_not_dynamic();
        let spec = paper::set_system();
        let v = find_dynamic_violation(&h, &spec).expect("must violate");
        // The paper names b-a-c and b-c-a as failing orders; the witness
        // must be one of them (b first — a must come first semantically).
        assert_eq!(v.order[0], paper::B);
    }

    #[test]
    fn no_violation_for_dynamic_histories() {
        assert!(find_dynamic_violation(&paper::dynamic_example(), &paper::set_system()).is_none());
        assert!(
            find_dynamic_violation(&paper::bank_concurrent_withdraws(), &paper::bank_system())
                .is_none()
        );
    }

    #[test]
    fn witness_composite_is_well_formed_and_not_atomic() {
        let h = paper::atomic_not_dynamic();
        let spec = paper::set_system();
        assert!(is_atomic(&h, &spec), "the ingredient is atomic on its own");
        let w = optimality_witness(&h, &spec).unwrap();
        assert!(WellFormedness::Basic.is_well_formed(&w.computation));
        // Projections recover the ingredients.
        assert_eq!(w.computation.project_object(paper::X), h);
        let hy = w.computation.project_object(w.counter);
        assert_eq!(hy.activities(), w.order);
        // The composite is NOT atomic: the counter pins the order the set
        // object cannot serialize in.
        assert!(!is_atomic(&w.computation, &w.system));
        // And a fortiori not dynamic atomic.
        assert!(!is_dynamic_atomic(&w.computation, &w.system));
    }

    #[test]
    fn witness_is_none_for_dynamic_atomic_input() {
        assert!(optimality_witness(&paper::dynamic_example(), &paper::set_system()).is_none());
    }

    #[test]
    fn refutation_wraps_the_witness() {
        let w = refute_local_admission(&paper::atomic_not_dynamic(), &paper::set_system())
            .expect("refutable");
        assert!(!is_atomic(&w.computation, &w.system));
    }

    #[test]
    fn counter_history_forces_exactly_its_order() {
        let y = ObjectId::new(9);
        let order = vec![paper::A, paper::B, paper::C];
        let h = counter_history(y, &order);
        let spec = SystemSpec::new().with_object(y, CounterSpec::new());
        assert!(is_serializable_in_order(&h, &spec, &order));
        let mut swapped = order.clone();
        swapped.swap(0, 2);
        assert!(!is_serializable_in_order(&h, &spec, &swapped));
    }

    #[test]
    fn counter_id_avoids_collisions() {
        let h = paper::atomic_not_dynamic();
        let spec = paper::set_system();
        let w = optimality_witness(&h, &spec).unwrap();
        assert!(!h.objects().contains(&w.counter));
    }
}
