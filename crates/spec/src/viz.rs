//! Rendering histories for humans: per-activity timelines and Graphviz
//! views of the `precedes` relation.
//!
//! The paper's arguments are all about *which orders remain possible*;
//! these renderings make that visible: [`timeline`] lays the computation
//! out with one column per activity (concurrency is horizontal distance),
//! and [`precedes_dot`] draws the partial order that dynamic atomicity
//! serializes against.

use crate::event::EventKind;
use crate::history::History;
use std::fmt::Write as _;

/// Renders `h` as a fixed-width timeline: one row per event, one column
/// per activity (in order of first appearance).
///
/// # Example
///
/// ```
/// use atomicity_spec::viz::timeline;
/// use atomicity_spec::paper;
/// let text = timeline(&paper::precedes_pair_example());
/// assert!(text.contains("insert(1)"));
/// ```
pub fn timeline(h: &History) -> String {
    let activities = h.activities();
    let multi_object = h.objects().len() > 1;
    let width = 18usize.max(
        h.iter()
            .map(|e| cell_text(&e.kind, multi_object.then_some(e.object)).len() + 2)
            .max()
            .unwrap_or(0),
    );
    let mut out = String::new();
    // Header.
    let _ = write!(out, "{:>6} ", "");
    for a in &activities {
        let _ = write!(out, "{:^width$}", a.to_string());
    }
    out.push('\n');
    let _ = write!(out, "{:>6} ", "");
    for _ in &activities {
        let _ = write!(out, "{:^width$}", "─".repeat(width.saturating_sub(4)));
    }
    out.push('\n');
    for (i, e) in h.iter().enumerate() {
        let col = activities
            .iter()
            .position(|&a| a == e.activity)
            .unwrap_or(0);
        let _ = write!(out, "{:>5}  ", i + 1);
        for c in 0..activities.len() {
            if c == col {
                let text = cell_text(&e.kind, multi_object.then_some(e.object));
                let _ = write!(out, "{text:^width$}");
            } else {
                let _ = write!(out, "{:^width$}", "·");
            }
        }
        out.push('\n');
    }
    out
}

fn cell_text(kind: &EventKind, object: Option<crate::event::ObjectId>) -> String {
    let suffix = object.map(|o| format!(" @{o}")).unwrap_or_default();
    match kind {
        EventKind::Invoke(op) => format!("{op}?{suffix}"),
        EventKind::Respond(v) => format!("={v}{suffix}"),
        EventKind::Commit => format!("COMMIT{suffix}"),
        EventKind::CommitTs(t) => format!("COMMIT({t}){suffix}"),
        EventKind::Abort => format!("ABORT{suffix}"),
        EventKind::Initiate(t) => format!("init({t}){suffix}"),
    }
}

/// Renders the `precedes(h)` relation as a Graphviz digraph, with
/// committed activities solid, aborted dashed, and active dotted.
///
/// # Example
///
/// ```
/// use atomicity_spec::viz::precedes_dot;
/// use atomicity_spec::paper;
/// let dot = precedes_dot(&paper::precedes_pair_example());
/// assert!(dot.contains("a1 -> a2"));
/// ```
pub fn precedes_dot(h: &History) -> String {
    let committed = h.committed_activities();
    let aborted = h.aborted_activities();
    let mut out = String::from("digraph precedes {\n  rankdir=LR;\n");
    for a in h.activities() {
        let style = if committed.contains(&a) {
            "solid"
        } else if aborted.contains(&a) {
            "dashed"
        } else {
            "dotted"
        };
        let _ = writeln!(out, "  {a} [style={style}];");
    }
    for (p, q) in h.precedes() {
        let _ = writeln!(out, "  {p} -> {q};");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;

    #[test]
    fn timeline_has_one_row_per_event_plus_header() {
        let h = paper::perm_example();
        let text = timeline(&h);
        assert_eq!(text.lines().count(), h.len() + 2);
        // All three activities appear in the header.
        let header = text.lines().next().unwrap();
        for a in ["a1", "a2", "a3"] {
            assert!(header.contains(a), "missing {a} in {header}");
        }
        assert!(text.contains("member(3)?"));
        assert!(text.contains("=true"));
        assert!(text.contains("ABORT"));
    }

    #[test]
    fn timeline_marks_objects_when_multiple() {
        let w = crate::optimality::optimality_witness(
            &paper::atomic_not_dynamic(),
            &paper::set_system(),
        )
        .unwrap();
        let text = timeline(&w.computation);
        assert!(text.contains("@x1"), "object tags expected:\n{text}");
    }

    #[test]
    fn dot_styles_by_fate() {
        let h = paper::perm_example(); // a,b commit; c aborts
        let dot = precedes_dot(&h);
        assert!(dot.contains("a1 [style=solid]"));
        assert!(dot.contains("a3 [style=dashed]"));
        assert!(dot.starts_with("digraph precedes {"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn dot_contains_every_precedes_edge() {
        let h = paper::atomic_not_dynamic();
        let dot = precedes_dot(&h);
        for (p, q) in h.precedes() {
            assert!(dot.contains(&format!("{p} -> {q};")));
        }
    }

    #[test]
    fn empty_history_renders() {
        let h = History::new();
        assert!(timeline(&h).lines().count() >= 2);
        assert!(precedes_dot(&h).contains("digraph"));
    }
}
