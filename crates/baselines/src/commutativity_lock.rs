//! Commutativity-table locking (Schwarz & Spector 82).

use crate::locks::ModeLock;
use atomicity_core::trace::ObjectMetrics;
use atomicity_core::{
    Admission, AdmissionOutcome, AdmissionRequest, AtomicObject, CommutesRel, HistoryLog,
    Participant, Txn, TxnError, TxnManager,
};
use atomicity_spec::{
    ActivityId, Event, ObjectId, OpResult, Operation, SequentialSpec, Timestamp, Value,
};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::{Arc, Weak};

/// A static commutativity predicate over operations: `true` iff the two
/// operations commute **in every state** — the state-independent relation
/// the conventional locking protocols are built on.
///
/// Function pointers of this type implement
/// [`CommutesRel`](atomicity_core::CommutesRel), as do the generated
/// [`ConflictTable`](atomicity_core::ConflictTable)s from `atomicity-lint`;
/// [`CommutativityLockedObject::with_relation`] accepts either.
pub type Commutes = fn(&Operation, &Operation) -> bool;

/// The §5.1 commutativity table for the bank account: only
/// deposit/deposit and balance/balance pairs commute; `withdraw` conflicts
/// with everything (its outcome is state-dependent), and `balance`
/// conflicts with both mutators.
pub fn bank_commutativity(p: &Operation, q: &Operation) -> bool {
    matches!(
        (p.name(), q.name()),
        ("deposit", "deposit") | ("balance", "balance")
    )
}

/// The FIFO-queue table: *nothing* commutes — `enqueue(1)` does not
/// commute with `enqueue(2)` (§5.1), dequeues are order-sensitive, and
/// observers conflict with mutators. Only identical-argument observers
/// commute.
pub fn queue_commutativity(p: &Operation, q: &Operation) -> bool {
    matches!(
        (p.name(), q.name()),
        ("front", "front") | ("len", "len") | ("front", "len") | ("len", "front")
    )
}

/// The integer-set table, argument-dependent: operations on *different*
/// elements always commute; on the same element, insert/insert and
/// delete/delete commute (idempotent), member/member commutes, but a
/// mutator conflicts with an observer of the same element. `size`
/// conflicts with every mutator.
pub fn set_commutativity(p: &Operation, q: &Operation) -> bool {
    let (pn, qn) = (p.name(), q.name());
    if pn == "size" || qn == "size" {
        return pn == "member" || qn == "member" || (pn == "size" && qn == "size");
    }
    match (p.int_arg(0), q.int_arg(0)) {
        (Some(i), Some(j)) if i != j => true,
        _ => matches!(
            (pn, qn),
            ("insert", "insert") | ("delete", "delete") | ("member", "member")
        ),
    }
}

/// An object protected by operation-level locks with a **static
/// commutativity table**.
///
/// An invocation waits until its operation commutes (per the table) with
/// every operation held by other active transactions; locks are held to
/// commit (strict two-phase). This is the protocol of
/// [Schwarz & Spector 82] / [Korth 81]: type-specific, but blind to the
/// current state — so two `withdraw`s never run concurrently even when
/// the balance covers both, which is exactly the §5.1 gap to dynamic
/// atomicity.
///
/// # Example
///
/// ```
/// use atomicity_core::{TxnManager, Protocol, AtomicObject};
/// use atomicity_baselines::{CommutativityLockedObject, bank_commutativity};
/// use atomicity_spec::specs::BankAccountSpec;
/// use atomicity_spec::{op, ObjectId};
///
/// let mgr = TxnManager::new(Protocol::Dynamic);
/// let acct = CommutativityLockedObject::new(
///     ObjectId::new(1), BankAccountSpec::new(), &mgr, bank_commutativity);
/// let t = mgr.begin();
/// acct.invoke(&t, op("deposit", [5]))?;
/// mgr.commit(t)?;
/// # Ok::<(), atomicity_core::TxnError>(())
/// ```
pub struct CommutativityLockedObject<S: SequentialSpec> {
    id: ObjectId,
    spec: S,
    commutes: Arc<dyn CommutesRel>,
    log: HistoryLog,
    lock: ModeLock<Operation>,
    state: Mutex<State<S>>,
    metrics: ObjectMetrics,
    self_ref: Weak<CommutativityLockedObject<S>>,
}

struct State<S: SequentialSpec> {
    committed: Vec<S::State>,
    intentions: BTreeMap<ActivityId, Vec<OpResult>>,
}

impl<S: SequentialSpec> CommutativityLockedObject<S> {
    /// Creates the object with the given hand-written commutativity table.
    pub fn new(id: ObjectId, spec: S, mgr: &TxnManager, commutes: Commutes) -> Arc<Self> {
        Self::with_relation(id, spec, mgr, Arc::new(commutes))
    }

    /// Creates the object with any [`CommutesRel`] — in particular a
    /// machine-generated [`ConflictTable`](atomicity_core::ConflictTable)
    /// from the `atomicity-lint` synthesis pass.
    pub fn with_relation(
        id: ObjectId,
        spec: S,
        mgr: &TxnManager,
        commutes: Arc<dyn CommutesRel>,
    ) -> Arc<Self> {
        let initial = vec![spec.initial()];
        Arc::new_cyclic(|self_ref| CommutativityLockedObject {
            id,
            spec,
            commutes,
            log: mgr.log(),
            lock: ModeLock::new(),
            state: Mutex::new(State {
                committed: initial,
                intentions: BTreeMap::new(),
            }),
            metrics: mgr.metrics().object(id),
            self_ref: self_ref.clone(),
        })
    }

    /// Number of transactions currently holding operation locks here.
    pub fn holder_count(&self) -> usize {
        self.lock.holder_count()
    }

    fn self_participant(&self) -> Arc<dyn Participant> {
        self.self_ref
            .upgrade()
            .expect("CommutativityLockedObject used after its Arc was dropped")
    }
}

impl<S: SequentialSpec> AtomicObject for CommutativityLockedObject<S> {
    fn try_invoke(&self, txn: &Txn, operation: Operation) -> Result<Value, TxnError> {
        if !txn.is_active() {
            return Err(TxnError::NotActive { txn: txn.id() });
        }
        txn.register(self.self_participant());
        self.admit_one(&AdmissionRequest::from_txn(txn, operation))
            .into_result(self.id)
    }

    fn invoke(&self, txn: &Txn, operation: Operation) -> Result<Value, TxnError> {
        if !txn.is_active() {
            return Err(TxnError::NotActive { txn: txn.id() });
        }
        txn.register(self.self_participant());
        let me = txn.id();
        // Validity pre-check so ill-typed operations leave no events.
        {
            let st = self.state.lock();
            let empty = Vec::new();
            let own = st.intentions.get(&me).unwrap_or(&empty);
            let frontier = crate::replay(&self.spec, &st.committed, own);
            let valid = frontier
                .iter()
                .any(|s| !self.spec.step(s, &operation).is_empty());
            if !valid {
                return Err(TxnError::InvalidOperation {
                    object: self.id,
                    operation: operation.to_string(),
                });
            }
        }
        self.log
            .record(Event::invoke(me, self.id, operation.clone()));
        let commutes = |a: &Operation, b: &Operation| self.commutes.commutes(a, b);
        let invoke_sw = self.metrics.stopwatch();
        // Fast path first so block-wait time is only measured under
        // contention.
        if !self.lock.try_acquire(txn, operation.clone(), commutes) {
            self.metrics.record_block_round(me);
            let block_sw = self.metrics.stopwatch();
            if let Err(e) = self.lock.acquire(txn, self.id, operation.clone(), commutes) {
                if matches!(e, TxnError::Deadlock { .. }) {
                    self.metrics.record_deadlock_kill(me);
                }
                return Err(e);
            }
            self.metrics.record_block_wait(&block_sw);
        }
        let mut st = self.state.lock();
        let empty = Vec::new();
        let own = st.intentions.get(&me).unwrap_or(&empty);
        let frontier = crate::replay(&self.spec, &st.committed, own);
        let mut candidates: Vec<Value> = Vec::new();
        for s in &frontier {
            for (v, _) in self.spec.step(s, &operation) {
                if !candidates.contains(&v) {
                    candidates.push(v);
                }
            }
        }
        debug_assert!(!candidates.is_empty(), "validity pre-check passed");
        candidates.sort();
        let v = candidates.remove(0);
        st.intentions
            .entry(me)
            .or_default()
            .push((operation, v.clone()));
        self.metrics.record_admission(me, &invoke_sw);
        self.log.record(Event::respond(me, self.id, v.clone()));
        Ok(v)
    }

    fn metrics(&self) -> ObjectMetrics {
        self.metrics.clone()
    }
}

impl<S: SequentialSpec> CommutativityLockedObject<S> {
    fn execute_locked(&self, me: ActivityId, operation: Operation) -> Result<Value, TxnError> {
        let mut st = self.state.lock();
        let empty = Vec::new();
        let own = st.intentions.get(&me).unwrap_or(&empty);
        let frontier = crate::replay(&self.spec, &st.committed, own);
        let mut candidates: Vec<Value> = Vec::new();
        for s in &frontier {
            for (v, _) in self.spec.step(s, &operation) {
                if !candidates.contains(&v) {
                    candidates.push(v);
                }
            }
        }
        if candidates.is_empty() {
            return Err(TxnError::InvalidOperation {
                object: self.id,
                operation: operation.to_string(),
            });
        }
        candidates.sort();
        let v = candidates.remove(0);
        st.intentions
            .entry(me)
            .or_default()
            .push((operation, v.clone()));
        Ok(v)
    }
}

impl<S: SequentialSpec> Admission for CommutativityLockedObject<S> {
    fn register_txn(&self, txn: &Txn) {
        txn.register(self.self_participant());
    }

    fn admit_one(&self, request: &AdmissionRequest) -> AdmissionOutcome {
        let me = request.txn;
        let operation = &request.operation;
        let commutes = |a: &Operation, b: &Operation| self.commutes.commutes(a, b);
        let invoke_sw = self.metrics.stopwatch();
        if let Err(holders) = self.lock.try_acquire_id(me, operation.clone(), commutes) {
            self.metrics.record_block_round(me);
            return AdmissionOutcome::Blocked { holders };
        }
        // Mode taken; on an invalid operation it stays held until
        // commit/abort, as in the classic path.
        match self.execute_locked(me, operation.clone()) {
            Ok(v) => {
                self.metrics.record_admission(me, &invoke_sw);
                self.log.record_all([
                    Event::invoke(me, self.id, operation.clone()),
                    Event::respond(me, self.id, v.clone()),
                ]);
                AdmissionOutcome::Admitted(v)
            }
            Err(e) => AdmissionOutcome::Rejected(e),
        }
    }
}

impl<S: SequentialSpec> Participant for CommutativityLockedObject<S> {
    fn object_id(&self) -> ObjectId {
        self.id
    }

    fn commit(&self, txn: ActivityId, ts: Option<Timestamp>) {
        let mut st = self.state.lock();
        if let Some(list) = st.intentions.remove(&txn) {
            let next = crate::replay(&self.spec, &st.committed, &list);
            if !next.is_empty() {
                st.committed = next;
            }
        }
        let event = match ts {
            Some(t) => Event::commit_ts(txn, self.id, t),
            None => Event::commit(txn, self.id),
        };
        self.metrics.record_commit(txn);
        self.log.record(event);
        drop(st);
        self.lock.release_all(txn);
    }

    fn abort(&self, txn: ActivityId) {
        self.state.lock().intentions.remove(&txn);
        self.metrics.record_abort(txn);
        self.log.record(Event::abort(txn, self.id));
        self.lock.release_all(txn);
    }
}

impl<S: SequentialSpec> std::fmt::Debug for CommutativityLockedObject<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CommutativityLockedObject")
            .field("id", &self.id)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomicity_core::Protocol;
    use atomicity_spec::atomicity::is_dynamic_atomic;
    use atomicity_spec::specs::{BankAccountSpec, IntSetSpec};
    use atomicity_spec::{op, SystemSpec};
    use std::time::Duration;

    fn x() -> ObjectId {
        ObjectId::new(1)
    }

    #[test]
    fn tables_match_the_paper() {
        // §5.1: two deposits commute...
        assert!(bank_commutativity(&op("deposit", [3]), &op("deposit", [5])));
        // ...two withdraws do not...
        assert!(!bank_commutativity(
            &op("withdraw", [4]),
            &op("withdraw", [3])
        ));
        // ...nor deposit with withdraw.
        assert!(!bank_commutativity(
            &op("deposit", [1]),
            &op("withdraw", [3])
        ));
        // §5.1: enqueue(1) does not commute with enqueue(2).
        assert!(!queue_commutativity(
            &op("enqueue", [1]),
            &op("enqueue", [2])
        ));
        // Set: different elements commute, same element mutator/observer
        // conflicts.
        assert!(set_commutativity(&op("insert", [1]), &op("member", [2])));
        assert!(!set_commutativity(&op("insert", [1]), &op("member", [1])));
        assert!(set_commutativity(&op("insert", [1]), &op("insert", [1])));
        assert!(!set_commutativity(
            &op("insert", [1]),
            &op("size", [] as [i64; 0])
        ));
    }

    #[test]
    fn concurrent_deposits_admitted() {
        let mgr = TxnManager::new(Protocol::Dynamic);
        let acct =
            CommutativityLockedObject::new(x(), BankAccountSpec::new(), &mgr, bank_commutativity);
        let a = mgr.begin();
        let b = mgr.begin();
        acct.invoke(&a, op("deposit", [5])).unwrap();
        acct.invoke(&b, op("deposit", [7])).unwrap(); // concurrent
        assert_eq!(acct.holder_count(), 2);
        mgr.commit(a).unwrap();
        mgr.commit(b).unwrap();
        let spec = SystemSpec::new().with_object(x(), BankAccountSpec::new());
        assert!(is_dynamic_atomic(&mgr.history(), &spec));
    }

    #[test]
    fn concurrent_withdrawals_blocked_despite_headroom() {
        // Balance 10 covers both withdrawals, but the static table cannot
        // know that: the second withdraw blocks — the paper's suboptimality
        // demonstration.
        let mgr = TxnManager::new(Protocol::Dynamic);
        let acct =
            CommutativityLockedObject::new(x(), BankAccountSpec::new(), &mgr, bank_commutativity);
        let setup = mgr.begin();
        acct.invoke(&setup, op("deposit", [10])).unwrap();
        mgr.commit(setup).unwrap();

        let b = mgr.begin();
        acct.invoke(&b, op("withdraw", [4])).unwrap();
        let acct2 = Arc::clone(&acct);
        let mgr2 = mgr.clone();
        let h = std::thread::spawn(move || {
            let c = mgr2.begin();
            let v = acct2.invoke(&c, op("withdraw", [3])).unwrap();
            mgr2.commit(c).unwrap();
            v
        });
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(acct.holder_count(), 1, "second withdraw must be blocked");
        mgr.commit(b).unwrap();
        assert_eq!(h.join().unwrap(), Value::ok());
    }

    #[test]
    fn try_invoke_respects_the_table() {
        let mgr = TxnManager::new(Protocol::Dynamic);
        let acct =
            CommutativityLockedObject::new(x(), BankAccountSpec::new(), &mgr, bank_commutativity);
        let a = mgr.begin();
        acct.invoke(&a, op("deposit", [5])).unwrap();
        let b = mgr.begin();
        // Deposits commute: admitted without blocking.
        assert!(acct.try_invoke(&b, op("deposit", [7])).is_ok());
        // Withdraw conflicts with the held deposits: refused.
        let err = acct.try_invoke(&b, op("withdraw", [1])).unwrap_err();
        assert!(matches!(err, TxnError::WouldBlock { .. }));
        mgr.commit(a).unwrap();
        mgr.commit(b).unwrap();
    }

    #[test]
    fn set_operations_on_disjoint_elements_share() {
        let mgr = TxnManager::new(Protocol::Dynamic);
        let set = CommutativityLockedObject::new(x(), IntSetSpec::new(), &mgr, set_commutativity);
        let a = mgr.begin();
        let b = mgr.begin();
        set.invoke(&a, op("insert", [1])).unwrap();
        set.invoke(&b, op("insert", [2])).unwrap();
        set.invoke(&b, op("member", [3])).unwrap();
        assert_eq!(set.holder_count(), 2);
        mgr.commit(a).unwrap();
        mgr.commit(b).unwrap();
        let spec = SystemSpec::new().with_object(x(), IntSetSpec::new());
        assert!(is_dynamic_atomic(&mgr.history(), &spec));
    }

    #[test]
    fn generated_conflict_table_drives_the_lock() {
        use atomicity_core::{ArgRelation, ConflictRule, ConflictTable};
        // A miniature machine-generated table: deposits share, everything
        // else conflicts (missing rule => conflict, conservatively).
        let table = ConflictTable {
            adt: "bank".to_string(),
            spec: "BankAccountSpec".to_string(),
            depth: 2,
            states_explored: 0,
            truncated: 0,
            universe: vec!["deposit(3)".to_string(), "deposit(5)".to_string()],
            rules: vec![ConflictRule {
                p_name: "deposit".to_string(),
                q_name: "deposit".to_string(),
                relation: ArgRelation::DistinctKey,
                commutes: true,
                instance_pairs: 1,
            }],
        };
        let mgr = TxnManager::new(Protocol::Dynamic);
        let acct = CommutativityLockedObject::with_relation(
            x(),
            BankAccountSpec::new(),
            &mgr,
            Arc::new(table),
        );
        let a = mgr.begin();
        let b = mgr.begin();
        acct.invoke(&a, op("deposit", [3])).unwrap();
        acct.invoke(&b, op("deposit", [5])).unwrap();
        assert_eq!(acct.holder_count(), 2);
        // No rule covers withdraw: the generated table conservatively
        // blocks it while the deposits hold the lock.
        assert!(acct.try_invoke(&mgr.begin(), op("withdraw", [1])).is_err());
        mgr.commit(a).unwrap();
        mgr.commit(b).unwrap();
        let spec = SystemSpec::new().with_object(x(), BankAccountSpec::new());
        assert!(is_dynamic_atomic(&mgr.history(), &spec));
    }
}
