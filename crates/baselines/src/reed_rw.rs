//! Reed's multi-version timestamp protocol for read/write registers
//! ([Reed 78]) — the special case that
//! [`atomicity_core::StaticObject`] generalizes to arbitrary operations.

use atomicity_core::{AtomicObject, HistoryLog, Participant, Txn, TxnError, TxnManager};
use atomicity_spec::{ActivityId, Event, ObjectId, Operation, Timestamp, Value};
use parking_lot::{Condvar, Mutex};
use std::collections::BTreeSet;
use std::sync::{Arc, Weak};
use std::time::Duration;

const WAIT_SLICE: Duration = Duration::from_millis(5);

/// A multi-version integer register in the style of Reed's scheme.
///
/// Each committed `write` creates a version tagged with the writer's
/// timestamp. A `read` with timestamp `t` selects the version with the
/// largest timestamp `≤ t`, waiting if that version is uncommitted, and
/// records `t` as the version's read horizon. A `write` with timestamp `t`
/// **aborts** if some transaction with a timestamp greater than `t` has
/// already read the version `t` would supersede — the classical
/// write-after-later-read abort (§4.2.3).
///
/// # Example
///
/// ```
/// use atomicity_core::{TxnManager, Protocol, AtomicObject};
/// use atomicity_baselines::ReedRegister;
/// use atomicity_spec::{op, ObjectId, Value};
///
/// let mgr = TxnManager::new(Protocol::Static);
/// let reg = ReedRegister::new(ObjectId::new(1), 0, &mgr);
/// let t = mgr.begin();
/// reg.invoke(&t, op("write", [7]))?;
/// assert_eq!(reg.invoke(&t, op("read", [] as [i64; 0]))?, Value::from(7));
/// mgr.commit(t)?;
/// # Ok::<(), atomicity_core::TxnError>(())
/// ```
pub struct ReedRegister {
    id: ObjectId,
    log: HistoryLog,
    mu: Mutex<Inner>,
    cv: Condvar,
    self_ref: Weak<ReedRegister>,
}

#[derive(Debug)]
struct Inner {
    /// Versions sorted by write timestamp (ascending).
    versions: Vec<Version>,
    initiated: BTreeSet<ActivityId>,
}

#[derive(Debug, Clone)]
struct Version {
    wts: Timestamp,
    value: i64,
    owner: Option<ActivityId>,
    committed: bool,
    /// Largest timestamp of any transaction that read this version.
    read_horizon: Timestamp,
}

impl ReedRegister {
    /// Creates the register with an initial (pre-committed) version.
    pub fn new(id: ObjectId, initial: i64, mgr: &TxnManager) -> Arc<Self> {
        Arc::new_cyclic(|self_ref| ReedRegister {
            id,
            log: mgr.log(),
            mu: Mutex::new(Inner {
                versions: vec![Version {
                    wts: 0,
                    value: initial,
                    owner: None,
                    committed: true,
                    read_horizon: 0,
                }],
                initiated: BTreeSet::new(),
            }),
            cv: Condvar::new(),
            self_ref: self_ref.clone(),
        })
    }

    /// Number of retained versions (including the initial one).
    pub fn version_count(&self) -> usize {
        self.mu.lock().versions.len()
    }

    fn self_participant(&self) -> Arc<dyn Participant> {
        self.self_ref
            .upgrade()
            .expect("ReedRegister used after its Arc was dropped")
    }

    fn record_first_events(
        &self,
        inner: &mut Inner,
        me: ActivityId,
        t: Timestamp,
        operation: &Operation,
        invoked: &mut bool,
    ) {
        let mut events = Vec::with_capacity(2);
        if inner.initiated.insert(me) {
            events.push(Event::initiate(me, self.id, t));
        }
        if !*invoked {
            events.push(Event::invoke(me, self.id, operation.clone()));
            *invoked = true;
        }
        self.log.record_all(events);
    }

    fn read(&self, txn: &Txn, t: Timestamp, operation: &Operation) -> Result<Value, TxnError> {
        let me = txn.id();
        let mut inner = self.mu.lock();
        let mut invoked = false;
        self.record_first_events(&mut inner, me, t, operation, &mut invoked);
        loop {
            let idx = match inner.versions.iter().rposition(|v| v.wts <= t) {
                Some(i) => i,
                None => {
                    return Err(TxnError::TimestampTooOld {
                        txn: me,
                        object: self.id,
                    })
                }
            };
            let version = &inner.versions[idx];
            if version.committed || version.owner == Some(me) {
                let value = version.value;
                inner.versions[idx].read_horizon = inner.versions[idx].read_horizon.max(t);
                self.log
                    .record(Event::respond(me, self.id, Value::from(value)));
                return Ok(Value::from(value));
            }
            // The selected version is uncommitted: wait for its writer.
            let owner = version.owner.expect("uncommitted version has an owner");
            let holders: BTreeSet<ActivityId> = [owner].into_iter().collect();
            match txn.request_wait(&holders) {
                atomicity_core::WaitDecision::Die => {
                    txn.clear_wait();
                    return Err(TxnError::Deadlock {
                        txn: me,
                        object: self.id,
                    });
                }
                atomicity_core::WaitDecision::Wait => {
                    self.cv.wait_for(&mut inner, WAIT_SLICE);
                    txn.clear_wait();
                }
            }
        }
    }

    fn write(
        &self,
        txn: &Txn,
        t: Timestamp,
        value: i64,
        operation: &Operation,
    ) -> Result<Value, TxnError> {
        let me = txn.id();
        let mut inner = self.mu.lock();
        let mut invoked = false;
        self.record_first_events(&mut inner, me, t, operation, &mut invoked);
        // Re-write by the same transaction: update its version in place.
        if let Some(v) = inner
            .versions
            .iter_mut()
            .find(|v| v.owner == Some(me) && v.wts == t)
        {
            v.value = value;
            self.log.record(Event::respond(me, self.id, Value::ok()));
            return Ok(Value::ok());
        }
        // The version this write would supersede.
        if let Some(prev) = inner.versions.iter().rfind(|v| v.wts <= t) {
            if prev.read_horizon > t {
                // A later-timestamp transaction already read the previous
                // version; installing this write would invalidate it.
                return Err(TxnError::TimestampConflict {
                    txn: me,
                    object: self.id,
                });
            }
        }
        let pos = inner.versions.partition_point(|v| v.wts <= t);
        inner.versions.insert(
            pos,
            Version {
                wts: t,
                value,
                owner: Some(me),
                committed: false,
                read_horizon: 0,
            },
        );
        self.log.record(Event::respond(me, self.id, Value::ok()));
        Ok(Value::ok())
    }
}

impl AtomicObject for ReedRegister {
    fn invoke(&self, txn: &Txn, operation: Operation) -> Result<Value, TxnError> {
        if !txn.is_active() {
            return Err(TxnError::NotActive { txn: txn.id() });
        }
        let t = txn.start_ts().ok_or_else(|| TxnError::ProtocolMismatch {
            object: self.id,
            detail: "Reed's scheme requires start timestamps".into(),
        })?;
        txn.register(self.self_participant());
        match (operation.name(), operation.int_arg(0)) {
            ("read", None) if operation.args().is_empty() => self.read(txn, t, &operation),
            ("write", Some(v)) if operation.args().len() == 1 => self.write(txn, t, v, &operation),
            _ => Err(TxnError::InvalidOperation {
                object: self.id,
                operation: operation.to_string(),
            }),
        }
    }
}

impl Participant for ReedRegister {
    fn object_id(&self) -> ObjectId {
        self.id
    }

    fn commit(&self, txn: ActivityId, _ts: Option<Timestamp>) {
        let mut inner = self.mu.lock();
        for v in inner.versions.iter_mut() {
            if v.owner == Some(txn) {
                v.committed = true;
            }
        }
        self.log.record(Event::commit(txn, self.id));
        self.cv.notify_all();
    }

    fn abort(&self, txn: ActivityId) {
        let mut inner = self.mu.lock();
        inner
            .versions
            .retain(|v| v.owner != Some(txn) || v.committed);
        self.log.record(Event::abort(txn, self.id));
        self.cv.notify_all();
    }
}

impl std::fmt::Debug for ReedRegister {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReedRegister")
            .field("id", &self.id)
            .field("versions", &self.version_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomicity_core::Protocol;
    use atomicity_spec::atomicity::is_static_atomic;
    use atomicity_spec::specs::RegisterSpec;
    use atomicity_spec::{op, SystemSpec};

    fn x() -> ObjectId {
        ObjectId::new(1)
    }

    fn read_op() -> Operation {
        op("read", [] as [i64; 0])
    }

    #[test]
    fn reads_select_version_by_timestamp() {
        let mgr = TxnManager::new(Protocol::Static);
        let reg = ReedRegister::new(x(), 0, &mgr);
        let t1 = mgr.begin(); // ts 1
        let t2 = mgr.begin(); // ts 2
        let t3 = mgr.begin(); // ts 3
        reg.invoke(&t2, op("write", [22])).unwrap();
        mgr.commit(t2).unwrap();
        // t1 (earlier) sees the initial version; t3 (later) sees 22.
        assert_eq!(reg.invoke(&t1, read_op()).unwrap(), Value::from(0));
        assert_eq!(reg.invoke(&t3, read_op()).unwrap(), Value::from(22));
        mgr.commit(t1).unwrap();
        mgr.commit(t3).unwrap();
        let spec = SystemSpec::new().with_object(x(), RegisterSpec::new());
        assert!(is_static_atomic(&mgr.history(), &spec));
    }

    #[test]
    fn write_after_later_read_aborts() {
        let mgr = TxnManager::new(Protocol::Static);
        let reg = ReedRegister::new(x(), 0, &mgr);
        let t1 = mgr.begin(); // ts 1
        let t2 = mgr.begin(); // ts 2
        assert_eq!(reg.invoke(&t2, read_op()).unwrap(), Value::from(0));
        mgr.commit(t2).unwrap();
        let err = reg.invoke(&t1, op("write", [5])).unwrap_err();
        assert!(matches!(err, TxnError::TimestampConflict { .. }));
        mgr.abort(t1);
        let spec = SystemSpec::new().with_object(x(), RegisterSpec::new());
        assert!(is_static_atomic(&mgr.history(), &spec));
    }

    #[test]
    fn reader_waits_for_uncommitted_selected_version() {
        let mgr = TxnManager::new(Protocol::Static);
        let reg = ReedRegister::new(x(), 0, &mgr);
        let w = mgr.begin(); // ts 1
        reg.invoke(&w, op("write", [9])).unwrap();
        let reg2 = Arc::clone(&reg);
        let mgr2 = mgr.clone();
        let h = std::thread::spawn(move || {
            let r = mgr2.begin(); // ts 2
            let v = reg2.invoke(&r, read_op()).unwrap();
            mgr2.commit(r).unwrap();
            v
        });
        std::thread::sleep(Duration::from_millis(30));
        mgr.commit(w).unwrap();
        assert_eq!(h.join().unwrap(), Value::from(9));
        let spec = SystemSpec::new().with_object(x(), RegisterSpec::new());
        assert!(is_static_atomic(&mgr.history(), &spec));
    }

    #[test]
    fn aborted_writer_version_disappears() {
        let mgr = TxnManager::new(Protocol::Static);
        let reg = ReedRegister::new(x(), 0, &mgr);
        let w = mgr.begin();
        reg.invoke(&w, op("write", [9])).unwrap();
        assert_eq!(reg.version_count(), 2);
        mgr.abort(w);
        assert_eq!(reg.version_count(), 1);
        let r = mgr.begin();
        assert_eq!(reg.invoke(&r, read_op()).unwrap(), Value::from(0));
        mgr.commit(r).unwrap();
    }

    #[test]
    fn rewrite_by_same_transaction_updates_version() {
        let mgr = TxnManager::new(Protocol::Static);
        let reg = ReedRegister::new(x(), 0, &mgr);
        let t = mgr.begin();
        reg.invoke(&t, op("write", [1])).unwrap();
        reg.invoke(&t, op("write", [2])).unwrap();
        assert_eq!(reg.version_count(), 2);
        assert_eq!(reg.invoke(&t, read_op()).unwrap(), Value::from(2));
        mgr.commit(t).unwrap();
    }

    #[test]
    fn invalid_and_untimestamped_rejected() {
        let mgr = TxnManager::new(Protocol::Static);
        let reg = ReedRegister::new(x(), 0, &mgr);
        let t = mgr.begin();
        assert!(matches!(
            reg.invoke(&t, op("frob", [1])).unwrap_err(),
            TxnError::InvalidOperation { .. }
        ));
        mgr.abort(t);
        let mgr2 = TxnManager::new(Protocol::Dynamic);
        let reg2 = ReedRegister::new(x(), 0, &mgr2);
        let t2 = mgr2.begin();
        assert!(matches!(
            reg2.invoke(&t2, read_op()).unwrap_err(),
            TxnError::ProtocolMismatch { .. }
        ));
        mgr2.abort(t2);
    }
}
