//! Deriving commutativity tables from sequential specifications.
//!
//! The conventional protocols (§5.1) need a state-independent
//! commutativity relation. Writing those tables by hand is error-prone —
//! and the paper's §6 remark ("the locking protocols discussed earlier
//! will be more than adequate as implementations of dynamic atomicity")
//! presumes you *have* one. This module derives a table empirically: two
//! operations are declared to commute iff, over a sampled set of reachable
//! states, executing them in either order yields the same result pair and
//! the same reachable state sets.
//!
//! The derivation is **conservative only with respect to the sampled
//! states**: it is a prototyping aid, not a proof. The tests compare the
//! derived tables to the hand-written ones from
//! [`crate::bank_commutativity`] etc. on their respective domains.

use atomicity_spec::{OpResult, Operation, SequentialSpec, Value};
use std::collections::BTreeSet;

/// The result of enumerating reachable states breadth-first: the states in
/// discovery order, plus how many *distinct* discovered states were
/// discarded because the `max_states` cap was reached. `truncated == 0`
/// means the enumeration is exhaustive for the requested depth, so verdicts
/// drawn from `states` are complete rather than sampled.
#[derive(Debug, Clone)]
pub struct StateSample<S> {
    /// The explored states, initial state first, in breadth-first order.
    pub states: Vec<S>,
    /// Distinct discovered states cut by `max_states` (0 = exhaustive).
    pub truncated: usize,
}

/// Enumerates states reachable from the initial state by applying up to
/// `depth` operations drawn from `universe` (breadth-first, deduplicated
/// through an ordered set, capped at `max_states`).
///
/// The returned [`StateSample::truncated`] count tells callers whether the
/// enumeration was cut short by the cap — a non-zero value means derived
/// verdicts are sampling-based, not exhaustive.
pub fn sample_states<S: SequentialSpec>(
    spec: &S,
    universe: &[Operation],
    depth: usize,
    max_states: usize,
) -> StateSample<S::State>
where
    S::State: Ord,
{
    let initial = spec.initial();
    let mut seen: BTreeSet<S::State> = BTreeSet::new();
    seen.insert(initial.clone());
    let mut states: Vec<S::State> = vec![initial.clone()];
    let mut frontier: Vec<S::State> = vec![initial];
    let mut truncated = 0usize;
    let expand = |frontier: &[S::State], seen: &mut BTreeSet<S::State>| -> Vec<S::State> {
        let mut next = Vec::new();
        for s in frontier {
            for op in universe {
                for (_, s2) in spec.step(s, op) {
                    if seen.insert(s2.clone()) {
                        next.push(s2);
                    }
                }
            }
        }
        next
    };
    for level in 0..depth {
        let mut next = expand(&frontier, &mut seen);
        if next.is_empty() {
            break;
        }
        let room = max_states.saturating_sub(states.len());
        if next.len() >= room {
            // The cap stops the walk here. Count the states cut at this
            // level, then probe the surviving frontier one level deeper
            // (count only) so `truncated == 0` really means exhaustive.
            truncated += next.len() - room;
            next.truncate(room);
            states.extend(next.iter().cloned());
            if level + 1 < depth {
                truncated += expand(&next, &mut seen).len();
            }
            break;
        }
        states.extend(next.iter().cloned());
        frontier = next;
    }
    StateSample { states, truncated }
}

/// All result-pair outcomes of running `p` then `q` from `state`, as a
/// canonically ordered list of `(result-of-p-first, result-of-q-second)`
/// pairs. Exposed so the `atomicity-lint` conflict-table audit can embed
/// the two orders' outcome lists in its counterexample certificates.
pub fn ordered_outcomes<S: SequentialSpec>(
    spec: &S,
    state: &S::State,
    p: &Operation,
    q: &Operation,
) -> Vec<(Value, Value)> {
    let mut outcomes = Vec::new();
    for (vp, sp) in spec.step(state, p) {
        for (vq, _) in spec.step(&sp, q) {
            let pair = (vp.clone(), vq);
            if !outcomes.contains(&pair) {
                outcomes.push(pair);
            }
        }
    }
    outcomes.sort();
    outcomes
}

/// Whether `p` and `q` commute **in every sampled state**: for each state,
/// every (result-of-p, result-of-q) pair achievable in one order is
/// achievable in the other, and the states reachable under matching
/// results coincide.
pub fn ops_commute<S: SequentialSpec>(
    spec: &S,
    states: &[S::State],
    p: &Operation,
    q: &Operation,
) -> bool {
    states.iter().all(|s| commute_in_state(spec, s, p, q))
}

/// Whether `p` and `q` commute in the single `state`: both orders achieve
/// the same (result-of-p, result-of-q) pairs, and for each matching result
/// pair the reachable final-state sets coincide. This is the per-state
/// predicate the conflict-table audit counts and certifies over.
pub fn commute_in_state<S: SequentialSpec>(
    spec: &S,
    state: &S::State,
    p: &Operation,
    q: &Operation,
) -> bool {
    let pq = ordered_outcomes(spec, state, p, q);
    let qp: Vec<(Value, Value)> = ordered_outcomes(spec, state, q, p)
        .into_iter()
        .map(|(vq, vp)| (vp, vq))
        .collect();
    let mut qp_sorted = qp;
    qp_sorted.sort();
    if pq != qp_sorted {
        return false;
    }
    // Result pairs match; final states must too (under each pair).
    for (vp, vq) in &pq {
        let after_pq = replay_pair(spec, state, p, vp, q, vq);
        let after_qp = replay_pair(spec, state, q, vq, p, vp);
        if !same_state_set(&after_pq, &after_qp) {
            return false;
        }
    }
    true
}

fn replay_pair<S: SequentialSpec>(
    spec: &S,
    state: &S::State,
    first: &Operation,
    first_value: &Value,
    second: &Operation,
    second_value: &Value,
) -> Vec<S::State> {
    let ops: Vec<OpResult> = vec![
        (first.clone(), first_value.clone()),
        (second.clone(), second_value.clone()),
    ];
    spec.replay(state, &ops)
}

fn same_state_set<T: PartialEq>(a: &[T], b: &[T]) -> bool {
    a.len() == b.len() && a.iter().all(|x| b.contains(x)) && b.iter().all(|x| a.contains(x))
}

/// A memoized derived commutativity table over a fixed operation universe.
///
/// # Example
///
/// ```
/// use atomicity_baselines::derive::DerivedTable;
/// use atomicity_spec::specs::BankAccountSpec;
/// use atomicity_spec::op;
///
/// let universe = vec![op("deposit", [5]), op("withdraw", [5])];
/// let table = DerivedTable::derive(&BankAccountSpec::new(), &universe, 3, 64);
/// assert!(table.commutes(&op("deposit", [5]), &op("deposit", [5])));
/// assert!(!table.commutes(&op("withdraw", [5]), &op("withdraw", [5])));
/// ```
#[derive(Debug, Clone)]
pub struct DerivedTable {
    universe: Vec<Operation>,
    /// `matrix[i][j]` = ops `i` and `j` commute.
    matrix: Vec<Vec<bool>>,
    /// States discarded by the `max_states` cap during derivation
    /// (0 = the enumeration was exhaustive to the requested depth).
    truncated: usize,
}

impl DerivedTable {
    /// Derives the table for every pair in `universe`, enumerating states
    /// to `depth` (capped at `max_states`).
    pub fn derive<S: SequentialSpec>(
        spec: &S,
        universe: &[Operation],
        depth: usize,
        max_states: usize,
    ) -> Self
    where
        S::State: Ord,
    {
        let sample = sample_states(spec, universe, depth, max_states);
        let n = universe.len();
        let mut matrix = vec![vec![false; n]; n];
        for i in 0..n {
            for j in i..n {
                let c = ops_commute(spec, &sample.states, &universe[i], &universe[j]);
                matrix[i][j] = c;
                matrix[j][i] = c;
            }
        }
        DerivedTable {
            universe: universe.to_vec(),
            matrix,
            truncated: sample.truncated,
        }
    }

    /// How many distinct reachable states the derivation discarded because
    /// of its `max_states` cap; non-zero means the table is sampling-based
    /// rather than exhaustive for the requested depth.
    pub fn truncated(&self) -> usize {
        self.truncated
    }

    /// Whether `p` and `q` commute per the derived table. Operations
    /// outside the derivation universe conservatively conflict.
    pub fn commutes(&self, p: &Operation, q: &Operation) -> bool {
        match (self.index_of(p), self.index_of(q)) {
            (Some(i), Some(j)) => self.matrix[i][j],
            _ => false,
        }
    }

    /// The fraction of operation pairs that commute (a coarse concurrency
    /// potential metric for the type).
    pub fn commuting_fraction(&self) -> f64 {
        let n = self.universe.len();
        if n == 0 {
            return 0.0;
        }
        let total = (n * n) as f64;
        let yes = self.matrix.iter().flatten().filter(|&&c| c).count() as f64;
        yes / total
    }

    fn index_of(&self, op: &Operation) -> Option<usize> {
        self.universe.iter().position(|u| u == op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomicity_spec::op;
    use atomicity_spec::specs::{BankAccountSpec, FifoQueueSpec, IntSetSpec, SemiqueueSpec};

    #[test]
    fn bank_table_matches_hand_written_shape() {
        let spec = BankAccountSpec::new();
        let universe = vec![
            op("deposit", [5]),
            op("deposit", [3]),
            op("withdraw", [5]),
            op("withdraw", [3]),
            op("balance", [] as [i64; 0]),
        ];
        let table = DerivedTable::derive(&spec, &universe, 4, 128);
        // Deposits commute with deposits.
        assert!(table.commutes(&op("deposit", [5]), &op("deposit", [3])));
        // Withdraws do not commute with withdraws or deposits (the §5.1
        // counterexample states are reachable).
        assert!(!table.commutes(&op("withdraw", [5]), &op("withdraw", [3])));
        assert!(!table.commutes(&op("deposit", [5]), &op("withdraw", [3])));
        // Balance conflicts with mutators, commutes with itself.
        assert!(!table.commutes(&op("balance", [] as [i64; 0]), &op("deposit", [5])));
        assert!(table.commutes(
            &op("balance", [] as [i64; 0]),
            &op("balance", [] as [i64; 0])
        ));
    }

    #[test]
    fn set_table_distinguishes_elements() {
        let spec = IntSetSpec::new();
        let universe = vec![
            op("insert", [1]),
            op("insert", [2]),
            op("member", [1]),
            op("delete", [1]),
        ];
        let table = DerivedTable::derive(&spec, &universe, 3, 128);
        assert!(table.commutes(&op("insert", [1]), &op("insert", [2])));
        assert!(table.commutes(&op("insert", [2]), &op("member", [1])));
        assert!(!table.commutes(&op("insert", [1]), &op("member", [1])));
        assert!(!table.commutes(&op("insert", [1]), &op("delete", [1])));
        // Same-element inserts are idempotent and commute.
        assert!(table.commutes(&op("insert", [1]), &op("insert", [1])));
    }

    #[test]
    fn queue_enqueues_do_not_commute_but_semiqueue_enqs_do() {
        let fifo = FifoQueueSpec::new();
        let universe = vec![op("enqueue", [1]), op("enqueue", [2])];
        let table = DerivedTable::derive(&fifo, &universe, 2, 64);
        // §5.1: enqueue(1) does not commute with enqueue(2) — the final
        // queue orders differ.
        assert!(!table.commutes(&op("enqueue", [1]), &op("enqueue", [2])));

        let semi = SemiqueueSpec::new();
        let universe = vec![op("enq", [1]), op("enq", [2])];
        let table = DerivedTable::derive(&semi, &universe, 2, 64);
        // The semiqueue's multiset state makes them commute — the
        // non-determinism of `deq` is what buys this.
        assert!(table.commutes(&op("enq", [1]), &op("enq", [2])));
    }

    #[test]
    fn unknown_operations_conservatively_conflict() {
        let table = DerivedTable::derive(&IntSetSpec::new(), &[op("insert", [1])], 2, 16);
        assert!(!table.commutes(&op("insert", [1]), &op("insert", [9])));
        assert!(table.commuting_fraction() > 0.0);
    }

    #[test]
    fn sampling_respects_caps_and_reports_truncation() {
        let sample = sample_states(
            &IntSetSpec::new(),
            &[op("insert", [1]), op("insert", [2])],
            5,
            3,
        );
        assert!(sample.states.len() <= 3);
        // {}, {1}, {2}, {1,2} are reachable: the cap of 3 cut at least one.
        assert!(sample.truncated > 0, "cap of 3 must report cut states");
        let none = sample_states(&IntSetSpec::new(), &[], 5, 10);
        assert_eq!(
            none.states.len(),
            1,
            "only the initial state without a universe"
        );
        assert_eq!(none.truncated, 0);
    }

    #[test]
    fn uncapped_enumeration_is_exhaustive_and_reports_zero_truncation() {
        let sample = sample_states(
            &IntSetSpec::new(),
            &[op("insert", [1]), op("insert", [2]), op("delete", [1])],
            4,
            1024,
        );
        // Subsets of {1,2}: exactly 4 reachable states, none cut.
        assert_eq!(sample.states.len(), 4);
        assert_eq!(sample.truncated, 0);
        // No duplicates (the ordered-set frontier deduplicates).
        let mut uniq = sample.states.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), sample.states.len());
    }

    #[test]
    fn derived_table_exposes_truncation() {
        let capped = DerivedTable::derive(
            &IntSetSpec::new(),
            &[op("insert", [1]), op("insert", [2])],
            5,
            2,
        );
        assert!(capped.truncated() > 0);
        let full = DerivedTable::derive(
            &IntSetSpec::new(),
            &[op("insert", [1]), op("insert", [2])],
            5,
            64,
        );
        assert_eq!(full.truncated(), 0);
    }
}
