//! Baseline protocols the paper compares against (§4.2, §5.1).
//!
//! - [`TwoPhaseLockedObject`]: strict two-phase locking with read/write
//!   locks — operations are classified only as readers or writers, the
//!   coarsest conventional protocol.
//! - [`CommutativityLockedObject`]: operation-level locking with a
//!   *static commutativity table* (Schwarz & Spector 82, Korth 81,
//!   Bernstein 81) — two operations may run concurrently only if the
//!   table says they commute, independent of the current state.
//! - [`SchedulerModel`]: the scheduler/storage architecture of Figure 5-1,
//!   with the property the paper criticizes: invocations are applied to
//!   the storage module in schedule order, so the storage state — not the
//!   transactions' serial semantics — determines later results.
//! - [`ReedRegister`]: Reed's classic multi-version timestamp protocol for
//!   read/write registers (the special case the static engine
//!   generalizes).
//!
//! All baselines record the histories they produce into the shared
//! [`atomicity_core::HistoryLog`], so the same checkers and experiment
//! harnesses apply to them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod commutativity_lock;
pub mod derive;
mod locks;
mod reed_rw;
mod rw_2pl;
mod scheduler_model;

pub use commutativity_lock::{
    bank_commutativity, queue_commutativity, set_commutativity, CommutativityLockedObject, Commutes,
};
pub use derive::DerivedTable;
pub use locks::{LockMode, ModeLock};
pub use reed_rw::ReedRegister;
pub use rw_2pl::TwoPhaseLockedObject;
pub use scheduler_model::SchedulerModel;

use atomicity_spec::{OpResult, SequentialSpec};

/// Applies `ops` to every state in `frontier`, keeping the states in which
/// each operation returned its recorded result (shared by the baselines'
/// deferred-update machinery).
pub(crate) fn replay<S: SequentialSpec>(
    spec: &S,
    frontier: &[S::State],
    ops: &[OpResult],
) -> Vec<S::State> {
    let mut states: Vec<S::State> = frontier.to_vec();
    for (op, expected) in ops {
        let mut next: Vec<S::State> = Vec::new();
        for s in &states {
            for (value, s2) in spec.step(s, op) {
                if &value == expected && !next.contains(&s2) {
                    next.push(s2);
                }
            }
        }
        if next.is_empty() {
            return Vec::new();
        }
        states = next;
    }
    states
}
