//! The scheduler model of Figure 5-1, with the limitation the paper
//! demonstrates.
//!
//! Transactions submit invocations to a scheduler, which orders them and
//! submits them to a **storage module** that applies each operation to its
//! single current state immediately and returns the result. The semantics
//! of operations are thereby determined by the scheduler/storage
//! interface: once the schedule interleaves two transactions' operations,
//! the storage state reflects that interleaving, and later results are
//! forced by it.
//!
//! [`SchedulerModel::can_produce`] decides whether a given history could
//! have been produced by this architecture with the schedule equal to the
//! observed invocation order — the check under which the paper's §5.1
//! queue history (dequeues `1,2,1,2` after interleaved enqueues) is
//! impossible, even though it is dynamic atomic.

use crate::replay;
use atomicity_spec::{EventKind, History, ObjectId, Operation, SequentialSpec, Value};
use parking_lot::Mutex;

/// The storage-module side of Figure 5-1: applies invocations immediately
/// in schedule order.
///
/// # Example
///
/// ```
/// use atomicity_baselines::SchedulerModel;
/// use atomicity_spec::specs::FifoQueueSpec;
/// use atomicity_spec::{op, ObjectId, Value};
///
/// let storage = SchedulerModel::new(ObjectId::new(1), FifoQueueSpec::new());
/// storage.submit(&op("enqueue", [1]));
/// storage.submit(&op("enqueue", [2]));
/// assert_eq!(storage.submit(&op("dequeue", [] as [i64; 0])), Some(Value::from(1)));
/// ```
pub struct SchedulerModel<S: SequentialSpec> {
    id: ObjectId,
    spec: S,
    /// The storage module's current state set (a set only to accommodate
    /// non-deterministic specifications; the classical model is the
    /// singleton case).
    state: Mutex<Vec<S::State>>,
}

impl<S: SequentialSpec> SchedulerModel<S> {
    /// Creates the storage module in the specification's initial state.
    pub fn new(id: ObjectId, spec: S) -> Self {
        let initial = vec![spec.initial()];
        SchedulerModel {
            id,
            spec,
            state: Mutex::new(initial),
        }
    }

    /// The object this storage module holds.
    pub fn object_id(&self) -> ObjectId {
        self.id
    }

    /// Applies one scheduled invocation to the current state, returning
    /// the (deterministically chosen) result — or `None` if the operation
    /// is not permitted.
    pub fn submit(&self, operation: &Operation) -> Option<Value> {
        let mut state = self.state.lock();
        let mut outcomes: Vec<(Value, S::State)> = Vec::new();
        for s in state.iter() {
            for (v, s2) in self.spec.step(s, operation) {
                if !outcomes.iter().any(|(ov, os)| ov == &v && os == &s2) {
                    outcomes.push((v, s2));
                }
            }
        }
        if outcomes.is_empty() {
            return None;
        }
        outcomes.sort_by(|(a, _), (b, _)| a.cmp(b));
        let chosen = outcomes[0].0.clone();
        let next: Vec<S::State> = outcomes
            .into_iter()
            .filter(|(v, _)| *v == chosen)
            .map(|(_, s)| s)
            .collect();
        *state = next;
        Some(chosen)
    }

    /// Whether this architecture can produce `h` (restricted to this
    /// object) with the schedule equal to `h`'s invocation order: every
    /// response in `h` must equal the result the storage module computes
    /// when operations are applied immediately in invocation order.
    ///
    /// This is the formal content of the paper's Figure 5-1 critique: the
    /// storage state after the schedule — not the transactions' serial
    /// semantics — determines each result.
    pub fn can_produce(&self, h: &History) -> bool {
        let hx = h.project_object(self.id);
        let mut frontier = vec![self.spec.initial()];
        let mut pending: std::collections::BTreeMap<atomicity_spec::ActivityId, Operation> =
            std::collections::BTreeMap::new();
        let mut applied: Vec<(Operation, Value)> = Vec::new();
        for e in hx.iter() {
            match &e.kind {
                EventKind::Invoke(operation) => {
                    pending.insert(e.activity, operation.clone());
                }
                EventKind::Respond(value) => {
                    let Some(operation) = pending.remove(&e.activity) else {
                        return false;
                    };
                    // The storage module applies the invocation now; the
                    // recorded result must be one of its possible results.
                    applied.push((operation, value.clone()));
                    frontier = replay(&self.spec, &frontier, &applied[applied.len() - 1..]);
                    if frontier.is_empty() {
                        return false;
                    }
                }
                _ => {}
            }
        }
        true
    }
}

impl<S: SequentialSpec> std::fmt::Debug for SchedulerModel<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchedulerModel")
            .field("id", &self.id)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomicity_spec::paper;
    use atomicity_spec::specs::{BankAccountSpec, FifoQueueSpec};
    use atomicity_spec::{atomicity::is_dynamic_atomic, op};

    #[test]
    fn storage_applies_in_schedule_order() {
        let storage = SchedulerModel::new(ObjectId::new(1), FifoQueueSpec::new());
        // The paper's interleaved schedule: a and b alternate enqueues.
        for v in [1, 1, 2, 2] {
            assert_eq!(storage.submit(&op("enqueue", [v])), Some(Value::ok()));
        }
        let deq = op("dequeue", [] as [i64; 0]);
        // The storage state is 1,1,2,2 — c receives 1,1,2,2, NOT 1,2,1,2.
        assert_eq!(storage.submit(&deq), Some(Value::from(1)));
        assert_eq!(storage.submit(&deq), Some(Value::from(1)));
        assert_eq!(storage.submit(&deq), Some(Value::from(2)));
        assert_eq!(storage.submit(&deq), Some(Value::from(2)));
    }

    #[test]
    fn paper_queue_history_is_impossible_for_the_scheduler_model() {
        // The §5.1 counterexample, verbatim: dynamic atomicity admits it,
        // the scheduler model cannot produce it.
        let h = paper::queue_interleaved_enqueues();
        let spec = paper::queue_system();
        assert!(is_dynamic_atomic(&h, &spec));
        let storage = SchedulerModel::new(paper::X, FifoQueueSpec::new());
        assert!(!storage.can_produce(&h));
    }

    #[test]
    fn serial_histories_are_producible() {
        // A history whose interleaving matches storage order is fine.
        use atomicity_spec::{Event, History};
        let (a, x) = (paper::A, paper::X);
        let h = History::from_events(vec![
            Event::invoke(a, x, op("enqueue", [1])),
            Event::respond(a, x, Value::ok()),
            Event::invoke(a, x, op("dequeue", [] as [i64; 0])),
            Event::respond(a, x, Value::from(1)),
            Event::commit(a, x),
        ]);
        let storage = SchedulerModel::new(x, FifoQueueSpec::new());
        assert!(storage.can_produce(&h));
    }

    #[test]
    fn bank_concurrent_withdraws_are_producible_by_storage_order() {
        // The bank example IS producible by the scheduler model (the
        // storage applies both withdraws in arrival order and both
        // succeed); the scheduler's *conflict rules*, not the storage,
        // are what forbid it — demonstrated by the locking baselines.
        let h = paper::bank_concurrent_withdraws();
        let storage = SchedulerModel::new(paper::Y, BankAccountSpec::new());
        assert!(storage.can_produce(&h));
    }

    #[test]
    fn invalid_operations_rejected() {
        let storage = SchedulerModel::new(ObjectId::new(1), FifoQueueSpec::new());
        assert_eq!(storage.submit(&op("frob", [] as [i64; 0])), None);
    }
}
