//! Strict two-phase locking with read/write locks.

use crate::locks::{LockMode, ModeLock};
use atomicity_core::stats::StatsSnapshot;
use atomicity_core::trace::ObjectMetrics;
use atomicity_core::{
    Admission, AdmissionOutcome, AdmissionRequest, AtomicObject, HistoryLog, Participant, Txn,
    TxnError, TxnManager,
};
use atomicity_spec::{
    ActivityId, Event, ObjectId, OpResult, Operation, SequentialSpec, Timestamp, Value,
};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::{Arc, Weak};

/// An object protected by strict two-phase read/write locking.
///
/// Every operation is classified only as a reader
/// ([`SequentialSpec::is_read_only`]) or a writer; readers share, writers
/// exclude. This is the coarsest conventional protocol — the floor the
/// paper's data-dependent protocols are measured against. Updates are
/// deferred (intentions applied at commit), matching the recovery model
/// the locking literature assumes.
///
/// Histories produced by this object are always dynamic atomic (2PL is a
/// sub-protocol of dynamic atomicity) — it simply admits far fewer
/// interleavings than [`atomicity_core::DynamicObject`].
///
/// # Example
///
/// ```
/// use atomicity_core::{TxnManager, Protocol, AtomicObject};
/// use atomicity_baselines::TwoPhaseLockedObject;
/// use atomicity_spec::specs::BankAccountSpec;
/// use atomicity_spec::{op, ObjectId};
///
/// let mgr = TxnManager::new(Protocol::Dynamic);
/// let acct = TwoPhaseLockedObject::new(ObjectId::new(1), BankAccountSpec::new(), &mgr);
/// let t = mgr.begin();
/// acct.invoke(&t, op("deposit", [5]))?;
/// mgr.commit(t)?;
/// # Ok::<(), atomicity_core::TxnError>(())
/// ```
pub struct TwoPhaseLockedObject<S: SequentialSpec> {
    id: ObjectId,
    spec: S,
    log: HistoryLog,
    lock: ModeLock<LockMode>,
    state: Mutex<State<S>>,
    metrics: ObjectMetrics,
    self_ref: Weak<TwoPhaseLockedObject<S>>,
}

struct State<S: SequentialSpec> {
    committed: Vec<S::State>,
    intentions: BTreeMap<ActivityId, Vec<OpResult>>,
}

impl<S: SequentialSpec> TwoPhaseLockedObject<S> {
    /// Creates the object and wires it to the manager's history log.
    pub fn new(id: ObjectId, spec: S, mgr: &TxnManager) -> Arc<Self> {
        let initial = vec![spec.initial()];
        Arc::new_cyclic(|self_ref| TwoPhaseLockedObject {
            id,
            spec,
            log: mgr.log(),
            lock: ModeLock::new(),
            state: Mutex::new(State {
                committed: initial,
                intentions: BTreeMap::new(),
            }),
            metrics: mgr.metrics().object(id),
            self_ref: self_ref.clone(),
        })
    }

    /// Number of transactions currently holding locks here.
    pub fn holder_count(&self) -> usize {
        self.lock.holder_count()
    }

    /// A snapshot of this object's contention counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.metrics.stats()
    }

    fn self_participant(&self) -> Arc<dyn Participant> {
        self.self_ref
            .upgrade()
            .expect("TwoPhaseLockedObject used after its Arc was dropped")
    }
}

impl<S: SequentialSpec> AtomicObject for TwoPhaseLockedObject<S> {
    fn try_invoke(&self, txn: &Txn, operation: Operation) -> Result<Value, TxnError> {
        if !txn.is_active() {
            return Err(TxnError::NotActive { txn: txn.id() });
        }
        txn.register(self.self_participant());
        self.admit_one(&AdmissionRequest::from_txn(txn, operation))
            .into_result(self.id)
    }

    fn invoke(&self, txn: &Txn, operation: Operation) -> Result<Value, TxnError> {
        if !txn.is_active() {
            return Err(TxnError::NotActive { txn: txn.id() });
        }
        txn.register(self.self_participant());
        let me = txn.id();
        let mode = if self.spec.is_read_only(&operation) {
            LockMode::Read
        } else {
            LockMode::Write
        };
        // Validity pre-check so ill-typed operations leave no events.
        {
            let st = self.state.lock();
            let empty = Vec::new();
            let own = st.intentions.get(&me).unwrap_or(&empty);
            let frontier = crate::replay(&self.spec, &st.committed, own);
            let valid = frontier
                .iter()
                .any(|s| !self.spec.step(s, &operation).is_empty());
            if !valid {
                return Err(TxnError::InvalidOperation {
                    object: self.id,
                    operation: operation.to_string(),
                });
            }
        }
        self.log
            .record(Event::invoke(me, self.id, operation.clone()));
        let invoke_sw = self.metrics.stopwatch();
        // Fast path first so the blocking path (and its wait timing) is
        // only entered when the lock is actually contended.
        if !self.lock.try_acquire(txn, mode, |a, b| a.compatible(*b)) {
            self.metrics.record_block_round(me);
            let block_sw = self.metrics.stopwatch();
            if let Err(e) = self
                .lock
                .acquire(txn, self.id, mode, |a, b| a.compatible(*b))
            {
                if matches!(e, TxnError::Deadlock { .. }) {
                    self.metrics.record_deadlock_kill(me);
                }
                return Err(e);
            }
            self.metrics.record_block_wait(&block_sw);
        }
        let mut st = self.state.lock();
        let empty = Vec::new();
        let own = st.intentions.get(&me).unwrap_or(&empty);
        let frontier = crate::replay(&self.spec, &st.committed, own);
        let mut candidates: Vec<Value> = Vec::new();
        for s in &frontier {
            for (v, _) in self.spec.step(s, &operation) {
                if !candidates.contains(&v) {
                    candidates.push(v);
                }
            }
        }
        debug_assert!(!candidates.is_empty(), "validity pre-check passed");
        candidates.sort();
        let v = candidates.remove(0);
        st.intentions
            .entry(me)
            .or_default()
            .push((operation, v.clone()));
        self.metrics.record_admission(me, &invoke_sw);
        self.log.record(Event::respond(me, self.id, v.clone()));
        Ok(v)
    }

    fn metrics(&self) -> ObjectMetrics {
        self.metrics.clone()
    }
}

impl<S: SequentialSpec> TwoPhaseLockedObject<S> {
    fn execute_locked(&self, me: ActivityId, operation: Operation) -> Result<Value, TxnError> {
        let mut st = self.state.lock();
        let empty = Vec::new();
        let own = st.intentions.get(&me).unwrap_or(&empty);
        let frontier = crate::replay(&self.spec, &st.committed, own);
        let mut candidates: Vec<Value> = Vec::new();
        for s in &frontier {
            for (v, _) in self.spec.step(s, &operation) {
                if !candidates.contains(&v) {
                    candidates.push(v);
                }
            }
        }
        if candidates.is_empty() {
            return Err(TxnError::InvalidOperation {
                object: self.id,
                operation: operation.to_string(),
            });
        }
        candidates.sort();
        let v = candidates.remove(0);
        st.intentions
            .entry(me)
            .or_default()
            .push((operation, v.clone()));
        Ok(v)
    }
}

impl<S: SequentialSpec> Admission for TwoPhaseLockedObject<S> {
    fn register_txn(&self, txn: &Txn) {
        txn.register(self.self_participant());
    }

    fn admit_one(&self, request: &AdmissionRequest) -> AdmissionOutcome {
        let me = request.txn;
        let operation = &request.operation;
        let mode = if self.spec.is_read_only(operation) {
            LockMode::Read
        } else {
            LockMode::Write
        };
        let invoke_sw = self.metrics.stopwatch();
        if let Err(holders) = self.lock.try_acquire_id(me, mode, |a, b| a.compatible(*b)) {
            self.metrics.record_block_round(me);
            return AdmissionOutcome::Blocked { holders };
        }
        // Lock taken; execute and record invoke+respond atomically. On an
        // invalid operation the mode stays held until commit/abort, as in
        // the classic path.
        match self.execute_locked(me, operation.clone()) {
            Ok(v) => {
                self.metrics.record_admission(me, &invoke_sw);
                self.log.record_all([
                    Event::invoke(me, self.id, operation.clone()),
                    Event::respond(me, self.id, v.clone()),
                ]);
                AdmissionOutcome::Admitted(v)
            }
            Err(e) => AdmissionOutcome::Rejected(e),
        }
    }
}

impl<S: SequentialSpec> Participant for TwoPhaseLockedObject<S> {
    fn object_id(&self) -> ObjectId {
        self.id
    }

    fn commit(&self, txn: ActivityId, ts: Option<Timestamp>) {
        let mut st = self.state.lock();
        if let Some(list) = st.intentions.remove(&txn) {
            let next = crate::replay(&self.spec, &st.committed, &list);
            if !next.is_empty() {
                st.committed = next;
            }
        }
        let event = match ts {
            Some(t) => Event::commit_ts(txn, self.id, t),
            None => Event::commit(txn, self.id),
        };
        self.metrics.record_commit(txn);
        self.log.record(event);
        drop(st);
        self.lock.release_all(txn);
    }

    fn abort(&self, txn: ActivityId) {
        self.state.lock().intentions.remove(&txn);
        self.metrics.record_abort(txn);
        self.log.record(Event::abort(txn, self.id));
        self.lock.release_all(txn);
    }
}

impl<S: SequentialSpec> std::fmt::Debug for TwoPhaseLockedObject<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TwoPhaseLockedObject")
            .field("id", &self.id)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomicity_core::Protocol;
    use atomicity_spec::atomicity::is_dynamic_atomic;
    use atomicity_spec::specs::BankAccountSpec;
    use atomicity_spec::{op, SystemSpec};
    use std::time::Duration;

    fn x() -> ObjectId {
        ObjectId::new(1)
    }

    #[test]
    fn serial_transactions_work() {
        let mgr = TxnManager::new(Protocol::Dynamic);
        let acct = TwoPhaseLockedObject::new(x(), BankAccountSpec::new(), &mgr);
        let t = mgr.begin();
        acct.invoke(&t, op("deposit", [10])).unwrap();
        assert_eq!(
            acct.invoke(&t, op("balance", [] as [i64; 0])).unwrap(),
            Value::from(10)
        );
        mgr.commit(t).unwrap();
        let spec = SystemSpec::new().with_object(x(), BankAccountSpec::new());
        assert!(is_dynamic_atomic(&mgr.history(), &spec));
    }

    #[test]
    fn concurrent_withdrawals_block_under_2pl() {
        // The exact workload the dynamic engine admits concurrently (§5.1)
        // serializes under 2PL: the second withdraw waits for the first.
        let mgr = TxnManager::new(Protocol::Dynamic);
        let acct = TwoPhaseLockedObject::new(x(), BankAccountSpec::new(), &mgr);
        let setup = mgr.begin();
        acct.invoke(&setup, op("deposit", [10])).unwrap();
        mgr.commit(setup).unwrap();

        let b = mgr.begin();
        acct.invoke(&b, op("withdraw", [4])).unwrap();
        let acct2 = Arc::clone(&acct);
        let mgr2 = mgr.clone();
        let h = std::thread::spawn(move || {
            let c = mgr2.begin();
            let v = acct2.invoke(&c, op("withdraw", [3])).unwrap();
            mgr2.commit(c).unwrap();
            v
        });
        std::thread::sleep(Duration::from_millis(30));
        // c must still be blocked on the write lock.
        assert_eq!(acct.holder_count(), 1);
        mgr.commit(b).unwrap();
        assert_eq!(h.join().unwrap(), Value::ok());
        let spec = SystemSpec::new().with_object(x(), BankAccountSpec::new());
        assert!(is_dynamic_atomic(&mgr.history(), &spec));
    }

    #[test]
    fn concurrent_readers_share() {
        let mgr = TxnManager::new(Protocol::Dynamic);
        let acct = TwoPhaseLockedObject::new(x(), BankAccountSpec::new(), &mgr);
        let a = mgr.begin();
        let b = mgr.begin();
        acct.invoke(&a, op("balance", [] as [i64; 0])).unwrap();
        acct.invoke(&b, op("balance", [] as [i64; 0])).unwrap();
        assert_eq!(acct.holder_count(), 2);
        mgr.commit(a).unwrap();
        mgr.commit(b).unwrap();
    }

    #[test]
    fn deadlock_reported_not_hung() {
        let mgr = TxnManager::new(Protocol::Dynamic);
        let x1 = TwoPhaseLockedObject::new(ObjectId::new(1), BankAccountSpec::new(), &mgr);
        let x2 = TwoPhaseLockedObject::new(ObjectId::new(2), BankAccountSpec::new(), &mgr);
        let t1 = mgr.begin();
        let t2 = mgr.begin();
        x1.invoke(&t1, op("deposit", [1])).unwrap();
        x2.invoke(&t2, op("deposit", [1])).unwrap();
        let x1b = Arc::clone(&x1);
        let mgr2 = mgr.clone();
        let h = std::thread::spawn(move || {
            let r = x1b.invoke(&t2, op("deposit", [1]));
            let died = r.is_err();
            if died {
                mgr2.abort(t2);
            } else {
                mgr2.commit(t2).unwrap();
            }
            died
        });
        std::thread::sleep(Duration::from_millis(20));
        let r1 = x2.invoke(&t1, op("deposit", [1]));
        let t1_died = r1.is_err();
        if t1_died {
            mgr.abort(t1);
        } else {
            mgr.commit(t1).unwrap();
        }
        let t2_died = h.join().unwrap();
        assert!(t1_died || t2_died);
    }

    #[test]
    fn try_invoke_reports_would_block() {
        let mgr = TxnManager::new(Protocol::Dynamic);
        let acct = TwoPhaseLockedObject::new(x(), BankAccountSpec::new(), &mgr);
        let a = mgr.begin();
        acct.invoke(&a, op("deposit", [1])).unwrap(); // write lock held
        let b = mgr.begin();
        let err = acct
            .try_invoke(&b, op("balance", [] as [i64; 0]))
            .unwrap_err();
        assert!(matches!(err, TxnError::WouldBlock { .. }));
        // Nothing was recorded for the refused attempt.
        let events_before = mgr.history().len();
        let _ = acct.try_invoke(&b, op("deposit", [2]));
        assert_eq!(mgr.history().len(), events_before);
        mgr.commit(a).unwrap();
        // Lock released: the retry succeeds.
        assert!(acct.try_invoke(&b, op("deposit", [2])).is_ok());
        mgr.commit(b).unwrap();
    }

    #[test]
    fn aborted_writes_invisible() {
        let mgr = TxnManager::new(Protocol::Dynamic);
        let acct = TwoPhaseLockedObject::new(x(), BankAccountSpec::new(), &mgr);
        let t = mgr.begin();
        acct.invoke(&t, op("deposit", [99])).unwrap();
        mgr.abort(t);
        let t2 = mgr.begin();
        assert_eq!(
            acct.invoke(&t2, op("balance", [] as [i64; 0])).unwrap(),
            Value::from(0)
        );
        mgr.commit(t2).unwrap();
    }
}
