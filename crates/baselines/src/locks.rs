//! A generic mode-based lock with pluggable compatibility.

use atomicity_core::{Txn, TxnError, WaitDecision};
use atomicity_spec::{ActivityId, ObjectId};
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

const WAIT_SLICE: Duration = Duration::from_millis(5);

/// Classical read/write lock modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockMode {
    /// Shared mode — compatible with other shared holders.
    Read,
    /// Exclusive mode — compatible with nothing.
    Write,
}

impl LockMode {
    /// Standard r/w compatibility: only read/read is compatible.
    pub fn compatible(self, other: LockMode) -> bool {
        matches!((self, other), (LockMode::Read, LockMode::Read))
    }
}

/// A lock table holding, per transaction, the modes it has acquired.
///
/// `M` is the mode type; compatibility is supplied per call so callers can
/// close over argument-dependent tables (e.g. per-element set locks).
/// Strict two-phase discipline is the caller's job: acquire during the
/// transaction, release everything at commit/abort via
/// [`ModeLock::release_all`].
#[derive(Debug)]
pub struct ModeLock<M> {
    held: Mutex<BTreeMap<ActivityId, Vec<M>>>,
    cv: Condvar,
}

impl<M: Clone + Send> ModeLock<M> {
    /// Creates an empty lock table.
    pub fn new() -> Self {
        ModeLock {
            held: Mutex::new(BTreeMap::new()),
            cv: Condvar::new(),
        }
    }

    /// Acquires `mode` for `txn`, blocking while any *other* transaction
    /// holds an incompatible mode. Deadlocks are arbitrated through the
    /// transaction's manager ([`Txn::request_wait`]).
    ///
    /// # Errors
    ///
    /// [`TxnError::Deadlock`] if the wait would close a cycle (the caller
    /// must abort the transaction).
    pub fn acquire(
        &self,
        txn: &Txn,
        object: ObjectId,
        mode: M,
        compatible: impl Fn(&M, &M) -> bool,
    ) -> Result<(), TxnError> {
        let me = txn.id();
        let mut held = self.held.lock();
        loop {
            let blockers: BTreeSet<ActivityId> = held
                .iter()
                .filter(|(id, modes)| **id != me && modes.iter().any(|m| !compatible(&mode, m)))
                .map(|(id, _)| *id)
                .collect();
            if blockers.is_empty() {
                held.entry(me).or_default().push(mode);
                return Ok(());
            }
            match txn.request_wait(&blockers) {
                WaitDecision::Die => {
                    txn.clear_wait();
                    return Err(TxnError::Deadlock { txn: me, object });
                }
                WaitDecision::Wait => {
                    self.cv.wait_for(&mut held, WAIT_SLICE);
                    txn.clear_wait();
                }
            }
        }
    }

    /// Non-blocking acquisition attempt: takes the mode and returns
    /// `true` iff no *other* transaction holds an incompatible mode.
    pub fn try_acquire(&self, txn: &Txn, mode: M, compatible: impl Fn(&M, &M) -> bool) -> bool {
        self.try_acquire_id(txn.id(), mode, compatible).is_ok()
    }

    /// Non-blocking acquisition attempt by transaction id (for detached
    /// admission requests whose [`Txn`] handle lives on another thread).
    ///
    /// # Errors
    ///
    /// The set of other transactions holding incompatible modes; the mode
    /// is not taken.
    pub fn try_acquire_id(
        &self,
        me: ActivityId,
        mode: M,
        compatible: impl Fn(&M, &M) -> bool,
    ) -> Result<(), BTreeSet<ActivityId>> {
        let mut held = self.held.lock();
        let blockers: BTreeSet<ActivityId> = held
            .iter()
            .filter(|(id, modes)| **id != me && modes.iter().any(|m| !compatible(&mode, m)))
            .map(|(id, _)| *id)
            .collect();
        if blockers.is_empty() {
            held.entry(me).or_default().push(mode);
            Ok(())
        } else {
            Err(blockers)
        }
    }

    /// Releases every mode held by `txn` and wakes waiters.
    pub fn release_all(&self, txn: ActivityId) {
        self.held.lock().remove(&txn);
        self.cv.notify_all();
    }

    /// Number of transactions currently holding locks.
    pub fn holder_count(&self) -> usize {
        self.held.lock().len()
    }
}

impl<M: Clone + Send> Default for ModeLock<M> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomicity_core::{Protocol, TxnManager};
    use std::sync::Arc;

    fn x() -> ObjectId {
        ObjectId::new(1)
    }

    #[test]
    fn rw_compatibility_matrix() {
        assert!(LockMode::Read.compatible(LockMode::Read));
        assert!(!LockMode::Read.compatible(LockMode::Write));
        assert!(!LockMode::Write.compatible(LockMode::Read));
        assert!(!LockMode::Write.compatible(LockMode::Write));
    }

    #[test]
    fn shared_readers_coexist() {
        let mgr = TxnManager::new(Protocol::Dynamic);
        let lock = ModeLock::new();
        let t1 = mgr.begin();
        let t2 = mgr.begin();
        lock.acquire(&t1, x(), LockMode::Read, |a, b| a.compatible(*b))
            .unwrap();
        lock.acquire(&t2, x(), LockMode::Read, |a, b| a.compatible(*b))
            .unwrap();
        assert_eq!(lock.holder_count(), 2);
        lock.release_all(t1.id());
        lock.release_all(t2.id());
        mgr.abort(t1);
        mgr.abort(t2);
    }

    #[test]
    fn writer_blocks_until_release() {
        let mgr = TxnManager::new(Protocol::Dynamic);
        let lock = Arc::new(ModeLock::new());
        let t1 = mgr.begin();
        lock.acquire(&t1, x(), LockMode::Read, |a, b| a.compatible(*b))
            .unwrap();
        let lock2 = Arc::clone(&lock);
        let mgr2 = mgr.clone();
        let h = std::thread::spawn(move || {
            let t2 = mgr2.begin();
            lock2
                .acquire(&t2, x(), LockMode::Write, |a, b| a.compatible(*b))
                .unwrap();
            lock2.release_all(t2.id());
            mgr2.commit(t2).unwrap();
        });
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(lock.holder_count(), 1, "writer must still be waiting");
        let id1 = t1.id();
        lock.release_all(id1);
        mgr.commit(t1).unwrap();
        h.join().unwrap();
    }

    #[test]
    fn reacquisition_by_holder_is_immediate() {
        let mgr = TxnManager::new(Protocol::Dynamic);
        let lock = ModeLock::new();
        let t = mgr.begin();
        let compat = |a: &LockMode, b: &LockMode| a.compatible(*b);
        lock.acquire(&t, x(), LockMode::Read, compat).unwrap();
        // Upgrading against only one's own holds must not block.
        lock.acquire(&t, x(), LockMode::Write, compat).unwrap();
        lock.release_all(t.id());
        mgr.commit(t).unwrap();
    }
}
