//! Interval-coalescing sets of activity identifiers.
//!
//! The monitor must remember *every* committed (and aborted) activity for
//! the lifetime of a run — membership drives the `precedes` bookkeeping
//! and the final certificate's `committed` count — but engines allocate
//! activity identifiers from a dense counter, so the sets it stores are
//! unions of a handful of contiguous runs. An [`IdSet`] stores them as
//! half-open interval endpoints instead of individual members: `O(runs)`
//! memory rather than `O(activities)`, which is what keeps the long-horizon
//! e16 run's retained footprint flat while it observes millions of commits.

use std::collections::BTreeMap;

/// A set of `u32` identifiers stored as coalesced inclusive intervals.
///
/// ```
/// use atomicity_certify::IdSet;
/// let mut s = IdSet::new();
/// for id in [3, 1, 2, 7] {
///     s.insert(id);
/// }
/// assert!(s.contains(2) && s.contains(7) && !s.contains(5));
/// assert_eq!(s.len(), 4);
/// assert_eq!(s.intervals(), 2); // {1..=3, 7..=7}
/// ```
#[derive(Debug, Clone, Default)]
pub struct IdSet {
    /// Interval start → inclusive interval end; intervals are disjoint and
    /// non-adjacent (adjacent inserts coalesce).
    runs: BTreeMap<u32, u32>,
    len: usize,
}

impl IdSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        IdSet::default()
    }

    /// Whether `id` is a member.
    pub fn contains(&self, id: u32) -> bool {
        self.runs
            .range(..=id)
            .next_back()
            .is_some_and(|(_, &end)| id <= end)
    }

    /// Inserts `id`, coalescing with adjacent intervals. Returns whether
    /// the set changed (i.e. `id` was not already a member).
    pub fn insert(&mut self, id: u32) -> bool {
        if self.contains(id) {
            return false;
        }
        self.len += 1;
        // Extend the interval ending at id - 1, if any.
        let left = self
            .runs
            .range(..=id)
            .next_back()
            .map(|(&s, &e)| (s, e))
            .filter(|&(_, e)| id > 0 && e == id - 1);
        // Absorb the interval starting at id + 1, if any.
        let right = self
            .runs
            .get(&(id.saturating_add(1)))
            .copied()
            .filter(|_| id < u32::MAX);
        match (left, right) {
            (Some((ls, _)), Some(re)) => {
                self.runs.remove(&(id + 1));
                self.runs.insert(ls, re);
            }
            (Some((ls, _)), None) => {
                self.runs.insert(ls, id);
            }
            (None, Some(re)) => {
                self.runs.remove(&(id + 1));
                self.runs.insert(id, re);
            }
            (None, None) => {
                self.runs.insert(id, id);
            }
        }
        true
    }

    /// The number of members.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The number of stored intervals — the set's actual memory footprint.
    pub fn intervals(&self) -> usize {
        self.runs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesces_dense_ranges_into_one_interval() {
        let mut s = IdSet::new();
        for id in 0..10_000u32 {
            assert!(s.insert(id));
        }
        assert_eq!(s.len(), 10_000);
        assert_eq!(s.intervals(), 1);
        assert!(s.contains(0) && s.contains(9_999) && !s.contains(10_000));
    }

    #[test]
    fn coalesces_out_of_order_and_gap_inserts() {
        let mut s = IdSet::new();
        for id in [5, 3, 9, 4, 8, 10, 1] {
            assert!(s.insert(id));
        }
        assert!(!s.insert(4), "duplicate insert reports no change");
        assert_eq!(s.len(), 7);
        // {1}, {3..=5}, {8..=10}
        assert_eq!(s.intervals(), 3);
        assert!(!s.contains(2) && !s.contains(6) && !s.contains(7));
        s.insert(2);
        s.insert(6);
        s.insert(7);
        assert_eq!(s.intervals(), 1);
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn boundary_values() {
        let mut s = IdSet::new();
        s.insert(u32::MAX);
        s.insert(0);
        assert!(s.contains(u32::MAX) && s.contains(0));
        s.insert(u32::MAX - 1);
        assert_eq!(s.intervals(), 2);
        assert_eq!(s.len(), 3);
    }
}
